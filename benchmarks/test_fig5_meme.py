"""Figure 5: point-query accuracy on the Meme dataset.

Paper setup: lengths of memetracker phrases, n ≈ 2.1·10^8.  ℓ2-S/R achieves
the best recovery quality; CS errors are about 30 % larger; both outperform
the other algorithms significantly (some CM / CML-CU curves fall outside the
plotted range).

Scaled-down reproduction: the simulated Meme workload (shifted negative-
binomial phrase lengths, mode ≈ 7 words) with n = 50 000.
"""

import pytest

from benchmarks.common import PAPER_DEPTH, error_by_algorithm, report, run_width_sweep
from repro.data.meme import simulated_meme
from repro.sketches.registry import make_sketch

DIMENSION = 50_000


@pytest.mark.figure("5")
def test_figure5_meme(benchmark):
    dataset = simulated_meme(dimension=DIMENSION, seed=55)
    table = run_width_sweep(dataset, title="Figure 5: Meme (simulated substitute)")
    report(table, "fig5_meme")

    average = error_by_algorithm(table, "average_error")

    # ℓ2-S/R best; CS within a small constant factor; the rest far behind
    assert average["l2_sr"] == min(average.values())
    assert average["count_sketch"] < 2.5 * average["l2_sr"]
    assert average["count_median"] > 2.0 * average["l2_sr"]
    assert average["count_min_cu"] > 2.0 * average["l2_sr"]

    def _operation():
        sketch = make_sketch("l2_sr", DIMENSION, 1_024, PAPER_DEPTH, seed=9)
        sketch.fit(dataset.vector)
        return sketch.recover()

    benchmark(_operation)
