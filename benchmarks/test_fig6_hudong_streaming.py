"""Figure 6: streaming accuracy and update/query time on the Hudong dataset.

Paper setup: the Hudong "related to" edge stream (n ≈ 2.2·10^6 articles,
1.9·10^7 edges) is fed to the sketches one update at a time; the figure
reports (a) average error, (b) maximum error, (c) per-update time and
(d) per-query time.  Findings: CS recovery errors are 2+ times larger than
ℓ2-S/R, the other algorithms are worse still; all six algorithms have similar
update/query cost — the bias-maintenance overhead (Bias-Heap) is small
(ℓ1-S/R within ~1.5× of CM, ℓ2-S/R within 2× of CS).

Scaled-down reproduction: a preferential-attachment edge stream with
n = 20 000 articles and 150 000 edges, replayed update by update into the
streaming variants of every algorithm.
"""

import pytest

from benchmarks.common import report
from repro.data.hudong import simulated_hudong
from repro.eval.harness import streaming_comparison
from repro.sketches.registry import make_sketch
from repro.streaming.generators import stream_from_items

DIMENSION = 20_000
EDGES = 150_000
WIDTH = 2_048
DEPTH = 9


@pytest.fixture(scope="module")
def hudong_stream():
    data = simulated_hudong(dimension=DIMENSION, edges=EDGES, seed=66)
    return stream_from_items(data.sources, data.dimension)


@pytest.mark.figure("6a-6d")
def test_figure6_hudong_streaming(benchmark, hudong_stream):
    table = streaming_comparison(
        hudong_stream,
        width=WIDTH,
        depth=DEPTH,
        query_count=2_000,
        seed=17,
        dataset_name="hudong",
        title="Figure 6: Hudong edge stream (simulated substitute)",
    )
    report(
        table,
        "fig6_hudong_streaming",
        metrics=("average_error", "maximum_error", "update_seconds",
                 "query_seconds"),
    )

    errors = {row.algorithm: row.average_error for row in table}
    update_times = {row.algorithm: row.update_seconds for row in table}
    query_times = {row.algorithm: row.query_seconds for row in table}

    # accuracy shape: ℓ2-S/R at least matches CS, and clearly beats Count-Median
    assert errors["l2_sr"] <= 1.2 * errors["count_sketch"]
    assert errors["l2_sr"] < errors["count_median"]
    # timing shape: the bias-maintenance overhead stays within a small factor
    assert update_times["l2_sr"] < 10.0 * update_times["count_sketch"]
    assert query_times["l2_sr"] < 10.0 * query_times["count_sketch"]

    # benchmark the per-update cost of the streaming ℓ2 sketch (Algorithm 6)
    sketch = make_sketch("l2_sr_streaming", DIMENSION, WIDTH, DEPTH, seed=19)
    updates = [(update.index, update.delta) for update in hudong_stream][:5_000]

    def _replay():
        for index, delta in updates:
            sketch.update(index, delta)

    benchmark(_replay)
