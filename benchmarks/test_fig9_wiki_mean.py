"""Figure 9: mean heuristics versus bias-aware sketches on the Wiki dataset.

Paper setup: the Wiki pageview vector again, comparing ℓ1-S/R, ℓ2-S/R,
ℓ1-mean and ℓ2-mean.  Finding: ℓ2-S/R, ℓ1-mean and ℓ2-mean perform similarly
(the Wiki vector has no extreme outliers, so the plain mean is a fine bias
estimate) and all three outperform ℓ1-S/R.

Scaled-down reproduction: the simulated Wiki workload with n = 40 000.
"""

import pytest

from benchmarks.common import error_by_algorithm, report, run_width_sweep
from repro.data.wiki import simulated_wiki
from repro.sketches.registry import make_sketch, mean_heuristic_suite

DIMENSION = 40_000


@pytest.mark.figure("9")
def test_figure9_wiki_mean_heuristics(benchmark):
    dataset = simulated_wiki(dimension=DIMENSION, seed=99)
    table = run_width_sweep(
        dataset,
        algorithms=mean_heuristic_suite(),
        title="Figure 9: Wiki (simulated substitute), mean heuristics",
    )
    report(table, "fig9_wiki_mean")

    errors = error_by_algorithm(table)
    # ℓ2-S/R and ℓ2-mean are close (no extreme outliers in this workload)
    assert errors["l2_mean"] < 2.0 * errors["l2_sr"]
    assert errors["l2_sr"] < 2.0 * errors["l2_mean"]
    # both ℓ2 variants beat ℓ1-S/R on this asymmetric count data
    assert errors["l2_sr"] < errors["l1_sr"]
    assert errors["l2_mean"] < errors["l1_sr"]

    def _operation():
        sketch = make_sketch("l1_mean", DIMENSION, 1_024, 9, seed=41)
        sketch.fit(dataset.vector)
        return sketch.recover()

    benchmark(_operation)
