"""Distributed-model bench: communication and accuracy versus number of sites.

Section 5.5 of the paper notes that the distributed behaviour of the linear
sketches is fully predicted by the centralised results: the communication is
(number of sites) × (sketch size) and the merged sketch is identical to the
centralised one.  This bench verifies both on the simulated protocol and
times the site-sketch + coordinator-merge pipeline.
"""

import numpy as np
import pytest

from repro.core import L2BiasAwareSketch
from repro.distributed import Coordinator, Site, partition_vector

DIMENSION = 50_000
WIDTH = 1_024
DEPTH = 9
SITE_COUNTS = (2, 4, 8)


@pytest.fixture(scope="module")
def global_vector():
    rng = np.random.default_rng(55)
    return np.round(rng.normal(300.0, 20.0, size=DIMENSION))


def _factory():
    return L2BiasAwareSketch(DIMENSION, WIDTH, DEPTH, seed=61)


def _run_protocol(global_vector, sites):
    locals_ = partition_vector(global_vector, sites, seed=3, by="coordinates")
    site_objects = [
        Site(f"site-{i}", _factory).observe_vector(local)
        for i, local in enumerate(locals_)
    ]
    coordinator = Coordinator().collect_all(site_objects)
    return coordinator


def test_distributed_aggregation(benchmark, global_vector):
    centralised = _factory().fit(global_vector)
    reference = centralised.recover()
    per_site_words = centralised.size_in_words()

    print()
    print("  sites  communication(words)  communication(bytes)  "
          "max |distributed - centralised|")
    for sites in SITE_COUNTS:
        coordinator = _run_protocol(global_vector, sites)
        deviation = float(np.max(np.abs(coordinator.recover() - reference)))
        print(f"  {sites:5d}  {coordinator.total_communication_words:20d}  "
              f"{coordinator.total_communication_bytes:20d}  "
              f"{deviation:12.3e}")
        # the merged sketch is exactly the centralised one (linearity)
        assert deviation < 1e-6
        # the communication is sites × sketch size, far below shipping vectors
        assert coordinator.total_communication_words == sites * per_site_words
        assert coordinator.total_communication_words < sites * DIMENSION
        # the byte accounting reflects real payloads: 8 bytes per state word
        # plus a bounded header, and no sketch mis-declares its size
        assert coordinator.total_communication_bytes > 8 * sites * per_site_words
        assert coordinator.log.inconsistent_messages() == []

    benchmark(_run_protocol, global_vector, 4)
