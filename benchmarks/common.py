"""Helpers shared by the benchmark modules.

The benchmarks are scaled-down reproductions: the paper's vectors have up to
5·10^8 coordinates and sketch widths up to ~10^5; here the dimensions are a
few tens of thousands and the widths a few thousand, chosen so every figure
regenerates in seconds while preserving the comparisons the paper reports
(who wins and by roughly what factor).
"""

from __future__ import annotations

import pathlib
import sys
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.eval.harness import width_sweep
from repro.eval.results import ResultTable

#: directory the reproduced series are written to (referenced by EXPERIMENTS.md)
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: sketch widths used by the scaled-down width sweeps (the paper varies s up
#: to tens of thousands against n up to 5·10^8; the ratio s/n here is similar)
DEFAULT_WIDTHS = (512, 1_024, 2_048)

#: depth convention of Section 5.1: d = 9 data rows for the bias-aware
#: sketches, d + 1 = 10 rows for the baselines
PAPER_DEPTH = 9


def sketch_memory_footprint(sketch) -> Tuple[int, int]:
    """Measure a sketch's ``(counter_bytes, total_bytes)`` memory footprint.

    ``counter_bytes`` is the declared state (``size_in_words() × 8``) — what
    the paper charges a sketch for.  ``total_bytes`` walks the live object
    graph and sums every reachable numpy array plus python object overhead,
    so it also counts structure the implementation keeps around (hash
    coefficients, hot-key caches, cached column sums).  The gap between the
    two is exactly what the on-demand addressing refactor collapsed from
    O(dimension × depth) to O(depth × width + cache block).
    """
    counter_bytes = int(sketch.size_in_words()) * 8
    seen = set()
    total = 0
    stack = [sketch]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            # count each buffer once, attributed to the array that owns it;
            # walking .base reaches buffers held only through views
            if obj.base is None:
                total += obj.nbytes
            else:
                stack.append(obj.base)
            continue
        total += sys.getsizeof(obj, 0)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif hasattr(obj, "__dict__"):
            stack.append(vars(obj))
        if hasattr(obj, "__slots__"):
            for slot in obj.__slots__:
                if hasattr(obj, slot):
                    stack.append(getattr(obj, slot))
    return counter_bytes, total


def print_table(table: ResultTable, metrics: Sequence[str] = ("average_error",
                                                              "maximum_error")) -> None:
    """Print a result table (pytest shows it with -s or on benchmark runs)."""
    print()
    print(table.to_text(metrics=metrics))


def save_table(table: ResultTable, name: str,
               metrics: Sequence[str] = ("average_error", "maximum_error")) -> None:
    """Persist the reproduced series under ``benchmarks/results/<name>.txt``.

    The benchmark run is usually invoked without ``-s``, so stdout is
    captured; the saved files are the durable record the experiment log
    (EXPERIMENTS.md) points to.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table.to_text(metrics=metrics) + "\n" + table.to_csv())


def report(table: ResultTable, name: str,
           metrics: Sequence[str] = ("average_error", "maximum_error")) -> None:
    """Print and persist a reproduced series."""
    print_table(table, metrics=metrics)
    save_table(table, name, metrics=metrics)


def error_by_algorithm(table: ResultTable, metric: str = "average_error",
                       width: Optional[int] = None) -> Dict[str, float]:
    """Extract {algorithm: metric} at a given width (default: the largest)."""
    widths = sorted({row.width for row in table})
    target = width if width is not None else widths[-1]
    selected = table.filter(width=target)
    return {row.algorithm: getattr(row, metric) for row in selected}


def run_width_sweep(dataset, algorithms=None, widths: Iterable[int] = DEFAULT_WIDTHS,
                    depth: int = PAPER_DEPTH, seed: int = 2017,
                    title: str = "") -> ResultTable:
    """The standard sweep behind Figures 1-5, 8 and 9."""
    return width_sweep(
        dataset,
        widths=list(widths),
        algorithms=algorithms,
        depth=depth,
        seed=seed,
        title=title,
    )
