"""Ablation: width of the middle-bucket window in ℓ2-S/R.

Algorithm 4 averages the middle ``2k`` of the ``s`` sorted buckets.  This
bench varies the window (the ``head_size`` parameter) and measures both the
bias-estimate error and the final recovery error, showing the trade-off the
analysis of Lemma 6 makes: a wider window averages more coordinates (lower
variance) but admits more contaminated buckets when outliers are present.
"""

import numpy as np
import pytest

from repro.core import L2BiasAwareSketch
from repro.core.errors import optimal_bias

DIMENSION = 50_000
WIDTH = 1_024
DEPTH = 9
HEAD_SIZES = (16, 64, 256, 448)


@pytest.fixture(scope="module")
def outlier_vector():
    rng = np.random.default_rng(321)
    vector = rng.normal(200.0, 10.0, size=DIMENSION)
    hot = rng.choice(DIMENSION, size=100, replace=False)
    vector[hot] += 20_000.0
    return vector


def _sweep(vector):
    optimal = optimal_bias(vector, 100, 2).beta
    rows = []
    for head_size in HEAD_SIZES:
        sketch = L2BiasAwareSketch(
            vector.size, WIDTH, DEPTH, head_size=head_size, seed=5
        ).fit(vector)
        bias_error = abs(sketch.estimate_bias() - optimal)
        recovery_error = float(np.mean(np.abs(sketch.recover() - vector)))
        rows.append((head_size, bias_error, recovery_error))
    return rows


def test_ablation_middle_window_width(benchmark, outlier_vector):
    rows = _sweep(outlier_vector)
    print()
    print("  head_size  |bias error|  average recovery error")
    for head_size, bias_error, recovery_error in rows:
        print(f"  {head_size:9d}  {bias_error:12.4f}  {recovery_error:12.4f}")

    by_head_size = {head_size: (bias_error, recovery_error)
                    for head_size, bias_error, recovery_error in rows}

    # moderate windows (the s = c_s·k regime of the paper, c_s ≥ 4) keep the
    # bias estimate within a few σ of optimal and the recovery error far below
    # what ignoring the bias would give
    for head_size in (16, 64, 256):
        bias_error, recovery_error = by_head_size[head_size]
        assert bias_error < 30.0, head_size
        assert recovery_error < 100.0, head_size

    # the widest window (nearly all buckets) admits the contaminated buckets
    # and is never better than the best moderate window — the trade-off
    # Lemma 6's choice of a 2k-bucket window is about
    widest_bias_error = by_head_size[448][0]
    best_moderate = min(by_head_size[h][0] for h in (16, 64, 256))
    assert widest_bias_error >= best_moderate

    benchmark(_sweep, outlier_vector)
