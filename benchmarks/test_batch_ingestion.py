"""Batched vs scalar ingestion throughput on the Figure 6 streaming workload.

The paper's streaming model applies one ``(index, delta)`` update at a time;
the batched ingestion path replays the same stream in order through
``update_batch`` chunks, reaching an equivalent state (bit-identical counters
on this unit-delta stream — for *every* algorithm, conservative-update kinds
included) at numpy speed.  This benchmark replays the scaled-down Hudong
edge stream of the Figure 6 experiment both ways and records the speedup.

Acceptance bars at full size: 10× for the fully vectorised linear sketches,
and — since segmented conservative-update batching
(:mod:`repro.sketches._cu_batch`) retired the per-run python loop — 10× for
CM-CU and CML-CU as well.

Set ``REPRO_BENCH_SMOKE=1`` to run a reduced-size configuration with a
relaxed speedup bar — that is what the CI benchmark-smoke job runs to catch
throughput regressions cheaply.  Set ``REPRO_BENCH_ALGOS`` to a
comma-separated subset of algorithm names to restrict the replay — the CI
``cu-smoke`` job sets ``REPRO_BENCH_ALGOS=count_min_cu,count_min_log_cu``
(without ``REPRO_BENCH_SMOKE``) to enforce the CU bar on the full-size
trace without paying for the linear replays.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.common import RESULTS_DIR, sketch_memory_footprint
from repro.data.hudong import simulated_hudong
from repro.sketches.registry import get_spec, make_sketch
from repro.streaming.generators import stream_from_items

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

DIMENSION = 2_000 if SMOKE else 20_000
EDGES = 20_000 if SMOKE else 150_000
WIDTH = 256 if SMOKE else 2_048
DEPTH = 9
BATCH_SIZE = 8_192

#: algorithms replayed both ways; every one must hit its speedup bar
ALGORITHMS = (
    "count_min",
    "count_sketch",
    "count_median",
    "l1_sr_streaming",
    "l2_sr_streaming",
    "count_min_cu",
    "count_min_log_cu",
)

_only = os.environ.get("REPRO_BENCH_ALGOS", "")
if _only:
    _requested = tuple(name.strip() for name in _only.split(",") if name.strip())
    _unknown = set(_requested) - set(ALGORITHMS)
    if _unknown:
        raise ValueError(
            f"REPRO_BENCH_ALGOS names unknown algorithms {sorted(_unknown)}; "
            f"benchmarked algorithms: {list(ALGORITHMS)}"
        )
    ALGORITHMS = _requested

#: required speedup for the fully vectorised linear sketches
LINEAR_SPEEDUP_BAR = 3.0 if SMOKE else 10.0

#: required speedup for the conservative-update kinds through the segmented
#: engine; the smoke geometry (width 256) runs under much heavier collision
#: pressure (shorter conflict-free segments), hence the lower smoke bar
CU_SPEEDUP_BAR = 2.0 if SMOKE else 10.0

#: batched replays per algorithm; the batch leg finishes in tens of
#: milliseconds, where scheduler noise is material — keep the best of a few
BATCH_REPEATS = 3


@pytest.fixture(scope="module")
def fig6_stream():
    data = simulated_hudong(dimension=DIMENSION, edges=EDGES, seed=66)
    return stream_from_items(data.sources, data.dimension)


@pytest.mark.figure("6-batch")
def test_batch_replay_speedup_and_equivalence(fig6_stream):
    indices, deltas = fig6_stream.indices(), fig6_stream.deltas()
    rows = []
    for algorithm in ALGORITHMS:
        scalar = make_sketch(algorithm, DIMENSION, WIDTH, DEPTH, seed=17)

        start = time.perf_counter()
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            scalar.update(index, delta)
        scalar_seconds = time.perf_counter() - start

        batch_seconds = float("inf")
        for _ in range(BATCH_REPEATS):
            batched = make_sketch(algorithm, DIMENSION, WIDTH, DEPTH, seed=17)
            start = time.perf_counter()
            for begin in range(0, indices.size, BATCH_SIZE):
                stop = begin + BATCH_SIZE
                batched.update_batch(indices[begin:stop], deltas[begin:stop])
            batch_seconds = min(batch_seconds, time.perf_counter() - start)

        identical = bool(np.array_equal(scalar.table, batched.table))
        speedup = scalar_seconds / batch_seconds
        # memory footprint: counter state vs total live object bytes — the
        # gap records the O(n)→O(width·depth) win of on-demand addressing
        counter_bytes, total_bytes = sketch_memory_footprint(batched)
        rows.append((algorithm, scalar_seconds, batch_seconds, speedup,
                     identical, counter_bytes, total_bytes))

        # equivalence: unit deltas make every sum exact, so even the batched
        # scatter-adds must reproduce the scalar counters bit for bit
        assert identical, f"{algorithm}: batched state diverged from scalar"
        bar = LINEAR_SPEEDUP_BAR if get_spec(algorithm).linear else CU_SPEEDUP_BAR
        assert speedup >= bar, (
            f"{algorithm}: batched replay only {speedup:.1f}x faster "
            f"(bar: {bar:.0f}x)"
        )

    lines = [
        f"batch ingestion on the Figure 6 stream "
        f"(n={DIMENSION}, updates={indices.size}, s={WIDTH}, d={DEPTH}, "
        f"batch_size={BATCH_SIZE}{', smoke' if SMOKE else ''})",
        "",
        "memory: counter_kb is the declared sketch state (size_in_words × 8);",
        "object_kb walks the live object graph (hash coefficients, hot-key",
        "cache, cached column sums) — O(width·depth + cache) regardless of n.",
        "",
        f"{'algorithm':<18} {'scalar_s':>10} {'batch_s':>10} "
        f"{'speedup':>9} {'bit_identical':>14} {'counter_kb':>11} "
        f"{'object_kb':>10}",
    ]
    for (algorithm, scalar_seconds, batch_seconds, speedup, identical,
         counter_bytes, total_bytes) in rows:
        lines.append(
            f"{algorithm:<18} {scalar_seconds:>10.3f} {batch_seconds:>10.3f} "
            f"{speedup:>8.1f}x {str(identical):>14} "
            f"{counter_bytes / 1024:>11.1f} {total_bytes / 1024:>10.1f}"
        )
    print()
    print("\n".join(lines))
    # a REPRO_BENCH_ALGOS-restricted run (the CI cu-smoke job) must not
    # clobber the recorded full-suite table
    if not SMOKE and not _only:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "batch_ingestion.txt").write_text("\n".join(lines) + "\n")
