"""Ablation: BOMP (related work, Yan et al.) versus ℓ2-S/R.

The paper's related-work section argues that BOMP (Gaussian sketch + OMP over
a dictionary augmented with the all-ones atom) only targets *biased k-sparse*
vectors, is expensive to decode, and cannot answer individual point queries
without recovering the whole vector.  This bench quantifies that argument on
the regime BOMP is designed for:

* accuracy: on an exactly biased k-sparse vector both approaches recover the
  vector essentially exactly;
* query cost: a single point query costs ℓ2-S/R a handful of bucket reads,
  while BOMP has to run the full OMP decode — orders of magnitude slower —
  because it has no per-coordinate recovery;
* decode cost: even the full-vector recovery is cheaper for the hashed sketch.
"""

import time

import numpy as np
import pytest

from repro.compressive.bomp import BOMPRecovery
from repro.core import L2BiasAwareSketch

DIMENSION = 2_000
OUTLIERS = 8
BIAS = 75.0


@pytest.fixture(scope="module")
def biased_sparse_vector():
    rng = np.random.default_rng(2024)
    vector = np.full(DIMENSION, BIAS)
    hot = rng.choice(DIMENSION, size=OUTLIERS, replace=False)
    vector[hot] += rng.uniform(2_000.0, 5_000.0, size=OUTLIERS)
    return vector


@pytest.fixture(scope="module")
def fitted_pipelines(biased_sparse_vector):
    ours = L2BiasAwareSketch(
        DIMENSION, 32 * OUTLIERS, 9, seed=3
    ).fit(biased_sparse_vector)
    bomp = BOMPRecovery(
        DIMENSION, measurements=40 * OUTLIERS, sparsity=OUTLIERS, seed=3
    ).fit(biased_sparse_vector)
    return ours, bomp


def test_ablation_bomp_accuracy_and_query_cost(benchmark, fitted_pipelines,
                                               biased_sparse_vector):
    ours, bomp = fitted_pipelines
    vector = biased_sparse_vector

    our_error = float(np.max(np.abs(ours.recover() - vector)))
    bomp_result = bomp.recover()
    bomp_error = float(np.max(np.abs(bomp_result.recovered - vector)))

    # a single point query: bucket reads vs a full OMP decode
    started = time.perf_counter()
    for _ in range(20):
        ours.query(123)
    our_query_seconds = (time.perf_counter() - started) / 20

    started = time.perf_counter()
    bomp.recover()  # BOMP has no per-coordinate path — this IS its point query
    bomp_query_seconds = time.perf_counter() - started

    print()
    print(f"  l2-S/R : max error {our_error:8.4f}   point query "
          f"{our_query_seconds * 1e6:10.1f} us")
    print(f"  BOMP   : max error {bomp_error:8.4f}   point query "
          f"{bomp_query_seconds * 1e6:10.1f} us (full OMP decode)")

    # both recover the biased k-sparse vector essentially exactly
    assert our_error < 1.0
    assert bomp_error < 1.0
    # the hashed point query is orders of magnitude cheaper
    assert our_query_seconds * 50 < bomp_query_seconds

    benchmark(lambda: bomp.recover())


def test_ablation_l2sr_full_recovery_reference(benchmark, fitted_pipelines):
    """Timing reference: ℓ2-S/R's full-vector recovery on the same workload."""
    ours, _ = fitted_pipelines
    benchmark(lambda: ours.recover())
