"""Figure 8: comparison with the mean heuristics on the Gaussian-2 dataset.

Paper setup: Gaussian-2 is N(100, 15²) with n = 5·10^6.  Figures 8a-8b use
the unshifted dataset — all four algorithms (ℓ1-S/R, ℓ2-S/R, ℓ1-mean,
ℓ2-mean) estimate the bias well and perform similarly.  Figures 8c-8d shift
500 entries by 100 000 — the mean is no longer a good bias estimate and the
errors of ℓ1-mean / ℓ2-mean increase significantly while ℓ1/ℓ2-S/R are
unaffected.

Scaled-down reproduction: n = 40 000, 40 shifted entries (the same shifted
fraction as the paper, and well below the sketch widths so the shifted
entries fit in the head the bias-aware estimators ignore).
"""

import pytest

from benchmarks.common import error_by_algorithm, report, run_width_sweep
from repro.data.synthetic import gaussian2_dataset
from repro.sketches.registry import make_sketch, mean_heuristic_suite

DIMENSION = 40_000
SHIFTED_ENTRIES = 40
SHIFT = 100_000.0


@pytest.mark.figure("8a-8b")
def test_figure8_clean_gaussian2(benchmark):
    dataset = gaussian2_dataset(dimension=DIMENSION, shifted_entries=0, seed=88)
    table = run_width_sweep(
        dataset,
        algorithms=mean_heuristic_suite(),
        title="Figure 8a-8b: Gaussian-2 (unshifted)",
    )
    report(table, "fig8ab_gaussian2_clean")

    errors = error_by_algorithm(table)
    # without outliers all four algorithms estimate the bias well and their
    # errors sit within a small factor of each other
    assert max(errors.values()) < 3.0 * min(errors.values())

    def _operation():
        sketch = make_sketch("l2_mean", DIMENSION, 1_024, 9, seed=31)
        sketch.fit(dataset.vector)
        return sketch.recover()

    benchmark(_operation)


@pytest.mark.figure("8c-8d")
def test_figure8_shifted_gaussian2(benchmark):
    dataset = gaussian2_dataset(
        dimension=DIMENSION, shifted_entries=SHIFTED_ENTRIES, shift=SHIFT, seed=89
    )
    table = run_width_sweep(
        dataset,
        algorithms=mean_heuristic_suite(),
        title=(
            "Figure 8c-8d: Gaussian-2 with "
            f"{SHIFTED_ENTRIES} entries shifted by {SHIFT:g}"
        ),
    )
    report(table, "fig8cd_gaussian2_shifted")

    errors = error_by_algorithm(table)
    # the shifted entries drag the mean away from the bias: the heuristics'
    # errors blow up while the bias-aware sketches are barely affected
    assert errors["l1_mean"] > 3.0 * errors["l1_sr"]
    assert errors["l2_mean"] > 3.0 * errors["l2_sr"]

    def _operation():
        sketch = make_sketch("l2_sr", DIMENSION, 1_024, 9, seed=37)
        sketch.fit(dataset.vector)
        return sketch.recover()

    benchmark(_operation)
