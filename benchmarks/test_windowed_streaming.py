"""Windowed vs unwindowed replay of the Figure 6 streaming workload.

The sliding-window engine replays the scaled-down Hudong edge stream through
a 16-pane ring and is compared against the plain (whole-stream) batched
replay of the same stream:

* **ingest overhead** — the windowed replay pays for pane-boundary
  segmentation, pane rotation and fresh-pane construction on top of the
  same ``update_batch`` scatter-adds; the ratio is recorded per algorithm;
* **merge (view rebuild) cost** — answering a query after an update
  re-merges the live panes; the rebuild time is recorded separately since
  it is paid per query-after-update, not per update;
* **correctness** — the merged view must be bit-identical to a fresh
  sketch fed only the in-window suffix of the stream, heavy hitters
  restricted to the window must recover the true in-window top keys, and
  the full window state must round-trip through ``save()``/``open()``
  byte-identically (the acceptance bar for the window wire format).

Set ``REPRO_BENCH_SMOKE=1`` for a reduced-size configuration (used by CI).
"""

import os
import time

import numpy as np
import pytest

from benchmarks.common import RESULTS_DIR
from repro.api import SketchConfig, SketchSession
from repro.data.hudong import simulated_hudong
from repro.streaming import WindowSpec, stream_from_items

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

DIMENSION = 2_000 if SMOKE else 20_000
EDGES = 40_000 if SMOKE else 150_000
WIDTH = 256 if SMOKE else 2_048
DEPTH = 9
BATCH_SIZE = 8_192
PANES = 16
#: the 16 panes cover the most recent half of the stream
PANE_SIZE = EDGES // (2 * PANES)

#: linear reference sketches (the window engine rejects the CU variants)
ALGORITHMS = ("count_min", "count_sketch", "l2_sr")


@pytest.fixture(scope="module")
def fig6_updates():
    data = simulated_hudong(dimension=DIMENSION, edges=EDGES, seed=66)
    stream = stream_from_items(data.sources, data.dimension)
    return stream.indices(), stream.deltas()


def replay(session, indices, deltas):
    start = time.perf_counter()
    for begin in range(0, indices.size, BATCH_SIZE):
        stop = begin + BATCH_SIZE
        session.ingest(indices[begin:stop], deltas[begin:stop])
    return time.perf_counter() - start


def windowed_config(algorithm):
    return SketchConfig(
        algorithm, dimension=DIMENSION, width=WIDTH, depth=DEPTH, seed=17,
        window=WindowSpec(mode="sliding", panes=PANES, pane_size=PANE_SIZE),
    )


@pytest.mark.figure("6-windowed")
def test_windowed_streaming_overhead_and_equivalence(fig6_updates, tmp_path):
    indices, deltas = fig6_updates
    rows = []
    for algorithm in ALGORITHMS:
        plain = SketchSession.from_config(
            windowed_config(algorithm).replace(window=None)
        )
        plain_seconds = replay(plain, indices, deltas)

        session = SketchSession.from_config(windowed_config(algorithm))
        windowed_seconds = replay(session, indices, deltas)
        window = session.window

        # merge cost: rebuilding the view after an update touched the window
        rebuilds = 20
        start = time.perf_counter()
        for _ in range(rebuilds):
            window._merged = None        # invalidate like an update would
            window.view()
        rebuild_seconds = (time.perf_counter() - start) / rebuilds

        # the window must summarise exactly the in-window suffix
        kept = window.items_in_window
        fresh = SketchSession.from_config(
            windowed_config(algorithm).replace(window=None)
        )
        fresh.ingest(indices[indices.size - kept:],
                     deltas[indices.size - kept:])
        view_arrays = session.sketch.state_dict()["arrays"]
        fresh_arrays = fresh.sketch.state_dict()["arrays"]
        identical = all(
            np.array_equal(view_arrays[key], fresh_arrays[key])
            for key in fresh_arrays
        )
        assert identical, (
            f"{algorithm}: window view diverged from a fresh sketch of the "
            "in-window suffix"
        )

        # heavy hitters are restricted to the window *exactly*: the windowed
        # answer equals the answer of the fresh suffix-only sketch
        truth = np.zeros(DIMENSION)
        np.add.at(truth, indices[indices.size - kept:],
                  deltas[indices.size - kept:])
        top = np.argsort(truth)[-10:]
        threshold = 0.5 * float(truth[top[0]])
        hits = session.query(kind="heavy_hitters", threshold=threshold,
                             top_k=50)
        reference_hits = fresh.query(kind="heavy_hitters",
                                     threshold=threshold, top_k=50)
        assert [(hit.index, hit.estimate) for hit in hits] == [
            (hit.index, hit.estimate) for hit in reference_hits
        ], f"{algorithm}: windowed heavy hitters differ from the suffix sketch"
        # ...and they recover the true in-window top keys (the trace's
        # in-window degrees are small and tightly clustered, so the bar is
        # recall of the true top-10 within the windowed top-50)
        recall = len({hit.index for hit in hits} & set(int(t) for t in top)) / 10
        assert recall >= 0.5, (
            f"{algorithm}: windowed heavy hitters recovered only "
            f"{recall:.0%} of the true in-window top-10"
        )

        # the full window state round-trips byte-identically
        path = tmp_path / f"{algorithm}.window"
        session.save(path)
        reopened = SketchSession.open(path)
        assert reopened.to_bytes() == session.to_bytes()
        assert reopened.items_in_window == kept

        rows.append((algorithm, plain_seconds, windowed_seconds,
                     windowed_seconds / plain_seconds, rebuild_seconds,
                     window.pane_closes, window.evictions, kept, recall))

    lines = [
        f"windowed vs unwindowed replay of the Figure 6 stream "
        f"(n={DIMENSION}, updates={indices.size}, s={WIDTH}, d={DEPTH}, "
        f"batch_size={BATCH_SIZE}, window=sliding {PANES}x{PANE_SIZE}"
        f"{', smoke' if SMOKE else ''})",
        "",
        "both replays run the same batched scatter-adds; 'overhead' is the",
        "windowed/plain ingest ratio (pane segmentation + rotation + fresh",
        "pane construction), 'rebuild_s' the per-query cost of re-merging",
        f"the {PANES} live panes after an update invalidated the view.",
        "'recall' scores windowed heavy hitters against the true in-window",
        "top-10; the merged view is asserted bit-identical to a fresh",
        "sketch of the in-window suffix, and save/open round-trips are",
        "asserted byte-identical.",
        "",
        f"{'algorithm':<14} {'plain_s':>9} {'windowed_s':>11} {'overhead':>9} "
        f"{'rebuild_s':>10} {'closes':>7} {'evicted':>8} {'in_window':>10} "
        f"{'recall':>7}",
    ]
    for (algorithm, plain_s, windowed_s, overhead, rebuild_s, closes,
         evicted, kept, recall) in rows:
        lines.append(
            f"{algorithm:<14} {plain_s:>9.3f} {windowed_s:>11.3f} "
            f"{overhead:>8.2f}x {rebuild_s:>10.5f} {closes:>7d} {evicted:>8d} "
            f"{kept:>10d} {recall:>6.0%}"
        )
    print()
    print("\n".join(lines))
    if not SMOKE:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "windowed_streaming.txt").write_text(
            "\n".join(lines) + "\n"
        )
