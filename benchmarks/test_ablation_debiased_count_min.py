"""Ablation: the Deng & Rafiei debiased Count-Min against the paper's suite.

The paper dismisses the earlier debiasing attempt of [14] as "too rough to be
useful" beyond roughly Count-Sketch-level accuracy.  This bench adds the
reimplemented estimator to the Figure-1 Gaussian workload, with and without
planted outliers, to check both halves of that remark:

* on clean biased data the correction works (it behaves like the mean
  heuristic),
* with a handful of extreme outliers the background average is contaminated
  and the estimator falls far behind ℓ2-S/R.
"""


from benchmarks.common import PAPER_DEPTH, report
from repro.data.synthetic import shifted_gaussian_dataset
from repro.eval.harness import width_sweep

ALGORITHMS = ["l2_sr", "l2_mean", "debiased_count_min", "count_sketch",
              "count_min_cu"]
DIMENSION = 40_000


def _sweep(shifted_entries, seed):
    dataset = shifted_gaussian_dataset(
        dimension=DIMENSION,
        bias=100.0,
        sigma=15.0,
        shifted_entries=shifted_entries,
        shift=100_000.0,
        seed=seed,
    )
    return width_sweep(
        dataset,
        widths=[1_024, 2_048],
        algorithms=ALGORITHMS,
        depth=PAPER_DEPTH,
        seed=seed,
        title=(
            "Debiased Count-Min (Deng & Rafiei) vs bias-aware sketches, "
            f"{shifted_entries} shifted entries"
        ),
    )


def test_ablation_debiased_count_min(benchmark):
    clean = _sweep(shifted_entries=0, seed=71)
    report(clean, "ablation_debiased_cm_clean")
    dirty = _sweep(shifted_entries=40, seed=72)
    report(dirty, "ablation_debiased_cm_shifted")

    clean_errors = {row.algorithm: row.average_error
                    for row in clean.filter(width=2_048)}
    dirty_errors = {row.algorithm: row.average_error
                    for row in dirty.filter(width=2_048)}

    # clean biased data: the correction removes most of the CM-CU error and is
    # competitive with Count-Sketch (the "comparable to Count-Sketch" remark)
    assert clean_errors["debiased_count_min"] < clean_errors["count_min_cu"]
    assert clean_errors["debiased_count_min"] < 3.0 * clean_errors["count_sketch"]

    # with outliers the background estimate is contaminated and the method
    # falls clearly behind the bias-aware sketch
    assert dirty_errors["debiased_count_min"] > 3.0 * dirty_errors["l2_sr"]

    benchmark(_sweep, 0, 73)
