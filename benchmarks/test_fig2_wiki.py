"""Figure 2: point-query accuracy on the Wiki dataset.

Paper setup: English-Wikipedia pageviews per second, n ≈ 3.5·10^6,
~1.3·10^10 views.  ℓ2-S/R achieves the best recovery at every sketch size —
at s = 20 000 its average error is below 1/10 of every other algorithm; CS
and ℓ1-S/R have similar average error but CS's maximum error is 2+ times
larger; the Count-Min family is far behind.

Scaled-down reproduction: the simulated Wiki workload (strongly biased
per-second counts around ~3 700 views/s) with n = 40 000.
"""

import pytest

from benchmarks.common import PAPER_DEPTH, error_by_algorithm, report, run_width_sweep
from repro.data.wiki import simulated_wiki
from repro.sketches.registry import make_sketch

DIMENSION = 40_000


@pytest.mark.figure("2")
def test_figure2_wiki(benchmark):
    dataset = simulated_wiki(dimension=DIMENSION, seed=22)
    table = run_width_sweep(dataset, title="Figure 2: Wiki (simulated substitute)")
    report(table, "fig2_wiki")

    average = error_by_algorithm(table, "average_error")
    maximum = error_by_algorithm(table, "maximum_error")

    # ℓ2-S/R achieves the best average error by a wide margin
    assert average["l2_sr"] == min(average.values())
    assert average["l2_sr"] < average["count_median"] / 10.0
    assert average["l2_sr"] < average["count_min_cu"] / 10.0
    # the Count-Median baseline is the worst performer, as in the paper
    assert max(average.values()) == average["count_median"]
    # ℓ2-S/R also wins on maximum error
    assert maximum["l2_sr"] == min(maximum.values())

    def _operation():
        sketch = make_sketch("l2_sr", DIMENSION, 1_024, PAPER_DEPTH, seed=3)
        sketch.fit(dataset.vector)
        return sketch.query(123)

    benchmark(_operation)
