"""Construction cost vs universe size: the on-demand addressing payoff.

Before this refactor ``HashedCounterTable`` materialised a dense
``(depth, dimension)`` bucket table (plus a sign table for Count-Sketch
layouts) at construction, so building a sketch cost O(n·d) time and memory —
capping the library at toy universes.  With on-demand hashing a sketch is
O(depth × width) to build regardless of ``dimension``, which opens the
``dimension = 10^8`` (and ``dimension=None`` hashed-key) scenario class.

This benchmark sweeps the universe size, recording for each dimension:

* **after** — measured construction wall time and tracemalloc peak of the
  on-demand path;
* **before** — the legacy dense-structure cost: measured by materialising
  the dense tables through the back-compat ``buckets`` / ``sign_values``
  accessors where that is feasible (≤ 10^6), and the exact arithmetic size
  of the arrays the old constructor allocated everywhere;
* batched ingestion and query throughput on the constructed sketch, to show
  the hot path did not regress while construction collapsed.

Set ``REPRO_BENCH_SMOKE=1`` for the reduced configuration CI runs.
"""

import os
import time
import tracemalloc

import numpy as np
import pytest

from benchmarks.common import RESULTS_DIR, sketch_memory_footprint
from repro.api import SketchConfig, SketchSession

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

DIMENSIONS = (10**5, 10**6) if SMOKE else (10**5, 10**6, 10**7, 10**8)
#: dense legacy materialisation is only attempted up to this size
LEGACY_LIMIT = 10**6
WIDTH = 2_048
DEPTH = 9
UPDATES = 50_000 if SMOKE else 200_000
ALGORITHM = "count_sketch"  # signed layout: the legacy path paid for
#                             both a bucket and a sign table

#: construction of the on-demand path must not scale with n: the peak
#: allocation at the largest dimension may exceed the smallest by at most
#: this factor (hot-key caches are lazily filled, so construction itself
#: allocates only the (depth, width) counters)
CONSTRUCTION_MEMORY_RATIO_BAR = 3.0


def _measure_construction(dimension):
    config = SketchConfig(
        ALGORITHM, dimension=dimension, width=WIDTH, depth=DEPTH, seed=7
    )
    tracemalloc.start()
    start = time.perf_counter()
    session = SketchSession.from_config(config)
    build_seconds = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return session, build_seconds, peak_bytes


def _measure_legacy_dense(session):
    """Materialise the structure the old constructor precomputed."""
    table = session.sketch._table
    start = time.perf_counter()
    dense_buckets = table.buckets
    dense_signs = table.sign_values
    seconds = time.perf_counter() - start
    nbytes = dense_buckets.nbytes + (0 if dense_signs is None else
                                     dense_signs.nbytes)
    return seconds, nbytes


@pytest.mark.figure("universe-scaling")
def test_construction_is_universe_independent():
    rng = np.random.default_rng(13)
    rows = []
    peaks = {}
    for dimension in DIMENSIONS:
        session, build_seconds, peak_bytes = _measure_construction(dimension)
        peaks[dimension] = peak_bytes

        # legacy cost: measured where feasible, exact arithmetic everywhere
        legacy_bytes = DEPTH * dimension * 8 * 2  # int64 buckets + f64 signs
        legacy_seconds = None
        if dimension <= LEGACY_LIMIT:
            legacy_seconds, measured = _measure_legacy_dense(session)
            legacy_bytes = measured

        indices = rng.integers(0, dimension, size=UPDATES)
        start = time.perf_counter()
        session.ingest(indices, deltas=1.0)
        ingest_seconds = time.perf_counter() - start

        probe = rng.integers(0, dimension, size=10_000)
        start = time.perf_counter()
        estimates = session.query(kind="point", index=probe)
        query_seconds = time.perf_counter() - start
        assert estimates.shape == probe.shape

        counter_bytes, object_bytes = sketch_memory_footprint(session.sketch)
        rows.append((dimension, build_seconds, peak_bytes, legacy_seconds,
                     legacy_bytes, UPDATES / ingest_seconds,
                     probe.size / query_seconds, counter_bytes, object_bytes))

    # the acceptance bar: construction memory must not scale with n
    smallest, largest = DIMENSIONS[0], DIMENSIONS[-1]
    ratio = peaks[largest] / max(peaks[smallest], 1)
    assert ratio <= CONSTRUCTION_MEMORY_RATIO_BAR, (
        f"construction peak grew {ratio:.1f}x from n={smallest} to "
        f"n={largest}; on-demand addressing must be universe-independent"
    )

    lines = [
        f"sketch construction vs universe size ({ALGORITHM}, s={WIDTH}, "
        f"d={DEPTH}, updates={UPDATES}{', smoke' if SMOKE else ''})",
        "",
        "'before' is the legacy precomputed-bucket path: measured dense",
        "materialisation up to n=1e6, exact array arithmetic beyond; "
        "'after'",
        "is the on-demand construction actually shipped.",
        "",
        f"{'n':>12} {'after_s':>9} {'after_peak_kb':>14} {'before_s':>9} "
        f"{'before_kb':>12} {'ingest_ups':>12} {'query_qps':>12} "
        f"{'counter_kb':>11} {'object_kb':>10}",
    ]
    for (dimension, build_s, peak, legacy_s, legacy_b, ups, qps,
         counter_b, object_b) in rows:
        legacy_s_text = "-" if legacy_s is None else f"{legacy_s:.3f}"
        lines.append(
            f"{dimension:>12} {build_s:>9.4f} {peak / 1024:>14.1f} "
            f"{legacy_s_text:>9} {legacy_b / 1024:>12.0f} {ups:>12.0f} "
            f"{qps:>12.0f} {counter_b / 1024:>11.1f} {object_b / 1024:>10.1f}"
        )
    print()
    print("\n".join(lines))
    if not SMOKE:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "universe_scaling.txt").write_text(
            "\n".join(lines) + "\n"
        )
