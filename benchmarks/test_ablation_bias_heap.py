"""Ablation: Bias-Heap (Algorithm 5) versus re-sorting on every query.

The streaming ℓ2 sketch needs the middle-bucket average after every update.
Two implementations are compared:

* **re-sort** — recompute the estimate from scratch (sort ``s`` buckets,
  O(s log s) per query), which is what a naive implementation would do;
* **Bias-Heap** — maintain the partition incrementally (O(log s) per update,
  O(1) per query), which is what Algorithm 5 provides.

The bench replays the same update sequence through both and times an
interleaved update+query workload, verifying they produce the same estimate.
"""

import numpy as np
import pytest

from repro.core.bias import MiddleBucketsMeanEstimator
from repro.core.bias_heap import BiasHeap
from repro.matrices.cm import CMMatrix

DIMENSION = 20_000
BUCKETS = 2_048
HEAD_SIZE = BUCKETS // 4
UPDATES = 5_000


@pytest.fixture(scope="module")
def update_sequence():
    rng = np.random.default_rng(777)
    matrix = CMMatrix(BUCKETS, DIMENSION, seed=7)
    indices = rng.integers(0, DIMENSION, size=UPDATES)
    deltas = rng.normal(50.0, 10.0, size=UPDATES)
    buckets = matrix.bucket_of[indices]
    # start from a tie-free state (distinct continuous bucket sums): when many
    # buckets are tied at exactly the same per-bucket average, the middle
    # window is not unique and the two implementations may legitimately pick
    # different — equally valid — tied buckets
    initial_w = rng.normal(1_000.0, 1.0, size=BUCKETS)
    return matrix.column_sums(), initial_w, buckets, deltas


def _run_with_heap(pi, initial_w, buckets, deltas, query_every=10):
    heap = BiasHeap(pi, head_size=HEAD_SIZE, initial_w=initial_w)
    estimates = []
    for step, (bucket, delta) in enumerate(zip(buckets, deltas)):
        heap.update(int(bucket), float(delta))
        if step % query_every == 0:
            estimates.append(heap.bias())
    return estimates


def _run_with_resort(pi, initial_w, buckets, deltas, query_every=10):
    estimator = MiddleBucketsMeanEstimator(HEAD_SIZE)
    w = initial_w.copy()
    estimates = []
    for step, (bucket, delta) in enumerate(zip(buckets, deltas)):
        w[bucket] += delta
        if step % query_every == 0:
            estimates.append(estimator.estimate_from_buckets(w, pi))
    return estimates


def test_ablation_bias_heap_matches_resort(update_sequence):
    pi, initial_w, buckets, deltas = update_sequence
    heap_estimates = _run_with_heap(pi, initial_w, buckets, deltas)
    resort_estimates = _run_with_resort(pi, initial_w, buckets, deltas)
    np.testing.assert_allclose(heap_estimates, resort_estimates,
                               rtol=1e-9, atol=1e-6)


def test_ablation_bias_heap_update_query(benchmark, update_sequence):
    pi, initial_w, buckets, deltas = update_sequence
    benchmark(_run_with_heap, pi, initial_w, buckets, deltas)


def test_ablation_resort_update_query(benchmark, update_sequence):
    pi, initial_w, buckets, deltas = update_sequence
    benchmark(_run_with_resort, pi, initial_w, buckets, deltas)
