"""Figure 7: effect of the sketch depth d at fixed width (Higgs dataset).

Paper setup: the Higgs vector, fixed s = 50 000, depth d varied (d for
ℓ1/ℓ2-S/R, d + 1 for the baselines).  Findings: accuracy improves with d for
every algorithm; CML-CU is the most sensitive to d; ℓ2-S/R stays the most
accurate throughout.

Scaled-down reproduction: the simulated Higgs workload, fixed s = 2 048,
d ∈ {1, 3, 5, 7, 9}.
"""

import pytest

from benchmarks.common import report
from repro.data.higgs import simulated_higgs
from repro.eval.harness import depth_sweep
from repro.sketches.registry import make_sketch

DIMENSION = 50_000
WIDTH = 2_048
DEPTHS = (1, 3, 5, 7, 9)


@pytest.mark.figure("7a-7b")
def test_figure7_depth_sweep(benchmark):
    dataset = simulated_higgs(dimension=DIMENSION, seed=77)
    table = depth_sweep(
        dataset,
        depths=DEPTHS,
        width=WIDTH,
        seed=23,
        title="Figure 7: depth sweep on Higgs (simulated substitute), s=2048",
    )
    report(table, "fig7_depth_sweep")

    # increasing d improves (or at least does not hurt) accuracy: compare the
    # shallowest and deepest configurations per algorithm (baselines run with
    # d + 1 rows, so group by algorithm rather than by the raw depth column)
    deepest_errors = {}
    for algorithm in table.algorithms():
        by_depth = sorted(
            (row.depth, row.average_error)
            for row in table.filter(algorithm=algorithm)
        )
        shallowest = by_depth[0][1]
        deepest = by_depth[-1][1]
        deepest_errors[algorithm] = deepest
        assert deepest <= shallowest * 1.1, algorithm

    # ℓ2-S/R remains the most accurate at the largest depth
    assert deepest_errors["l2_sr"] == min(deepest_errors.values())

    # benchmark a single deep-configuration sketch+recover
    def _operation():
        sketch = make_sketch("l2_sr", DIMENSION, WIDTH, max(DEPTHS), seed=29)
        sketch.fit(dataset.vector)
        return sketch.recover()

    benchmark(_operation)
