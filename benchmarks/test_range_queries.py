"""Application bench: range queries flat vs dyadic over a biased count vector.

Not a paper figure — an application-level benchmark for the range-query
machinery built on top of the sketches (the "range query" application the
paper's introduction motivates).  It compares, on the WorldCup-style workload:

* summing point estimates over the range (O(range) queries and error growth),
* the dyadic structure (O(log n) queries and error growth),

both over the ℓ2 bias-aware sketch.
"""

import pytest

from repro.data.worldcup import simulated_worldcup
from repro.queries.dyadic import DyadicRangeSketch
from repro.queries.range_query import range_sum
from repro.sketches.registry import make_sketch

DIMENSION = 16_384
RANGES = [(1_000, 1_300), (2_000, 6_000), (0, 16_000)]


@pytest.fixture(scope="module")
def workload():
    dataset = simulated_worldcup(dimension=DIMENSION, seed=101)
    return dataset.vector


@pytest.fixture(scope="module")
def structures(workload):
    flat = make_sketch("l2_sr", DIMENSION, 1_024, 7, seed=5).fit(workload)
    dyadic = DyadicRangeSketch(DIMENSION, 1_024, 7, algorithm="l2_sr",
                               seed=5).fit(workload)
    return flat, dyadic


def test_range_query_accuracy(structures, workload):
    flat, dyadic = structures
    print()
    print("  range                truth      flat estimate   dyadic estimate")
    for low, high in RANGES:
        truth = float(workload[low:high].sum())
        flat_estimate = range_sum(flat, low, high)
        dyadic_estimate = dyadic.range_sum(low, high)
        print(f"  [{low:>6}, {high:>6})  {truth:12.0f}  {flat_estimate:15.0f}  "
              f"{dyadic_estimate:16.0f}")
        # the dyadic estimate errs by a bounded number of point-query errors
        assert dyadic_estimate == pytest.approx(truth, rel=0.25)
    # on the longest range the dyadic structure is at least as accurate
    low, high = RANGES[-1]
    truth = float(workload[low:high].sum())
    assert abs(dyadic.range_sum(low, high) - truth) <= abs(
        range_sum(flat, low, high) - truth
    ) * 1.5


def test_dyadic_range_query_speed(benchmark, structures):
    _, dyadic = structures
    benchmark(lambda: [dyadic.range_sum(low, high) for low, high in RANGES])


def test_flat_range_query_speed(benchmark, structures):
    flat, _ = structures
    # only the two shorter ranges: the full-vector flat scan is exactly what
    # the dyadic structure exists to avoid
    benchmark(lambda: [range_sum(flat, low, high) for low, high in RANGES[:2]])
