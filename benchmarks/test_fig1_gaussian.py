"""Figure 1: point-query accuracy on the Gaussian dataset.

Paper setup: x_i ~ N(b, 15²) i.i.d. with n = 5·10^8 and b ∈ {100, 500};
average and maximum error plotted against the sketch width s for ℓ1-S/R,
ℓ2-S/R, CS, CM (Count-Median), CM-CU and CML-CU (Figures 1a-1d).

Scaled-down reproduction: n = 40 000, same σ and b, widths 512-2048.
Expected shape (paper): ℓ1-S/R ≈ ℓ2-S/R, both far below every baseline
(≈ 1/5 of CS, 1/20 of CML-CU, 1/50 of CM-CU, 1/200 of CM), and the errors of
the bias-aware sketches do not grow when b increases from 100 to 500 while
every baseline's error does.
"""

import pytest

from benchmarks.common import (
    PAPER_DEPTH,
    error_by_algorithm,
    report,
    run_width_sweep,
)
from repro.data.synthetic import gaussian_dataset
from repro.sketches.registry import make_sketch

DIMENSION = 40_000


def _gaussian(bias: float):
    return gaussian_dataset(dimension=DIMENSION, bias=bias, sigma=15.0, seed=11)


def _sketch_and_recover(vector, width=1_024):
    sketch = make_sketch("l2_sr", vector.size, width, PAPER_DEPTH, seed=1)
    sketch.fit(vector)
    return sketch.recover()


@pytest.mark.figure("1a-1b")
def test_figure1_gaussian_bias_100(benchmark):
    dataset = _gaussian(bias=100.0)
    table = run_width_sweep(dataset, title="Figure 1a-1b: Gaussian, b=100, sigma=15")
    report(table, "fig1_gaussian_b100")

    errors = error_by_algorithm(table)
    assert errors["l2_sr"] < errors["count_sketch"] / 2.5
    assert errors["l1_sr"] < errors["count_sketch"] / 2.5
    assert errors["l2_sr"] < errors["count_median"] / 20.0
    assert errors["l2_sr"] < errors["count_min_cu"] / 5.0
    assert errors["l2_sr"] < errors["count_min_log_cu"] / 5.0

    benchmark(_sketch_and_recover, dataset.vector)


@pytest.mark.figure("1c-1d")
def test_figure1_gaussian_bias_500(benchmark):
    low = _gaussian(bias=100.0)
    high = _gaussian(bias=500.0)
    table = run_width_sweep(high, title="Figure 1c-1d: Gaussian, b=500, sigma=15")
    report(table, "fig1_gaussian_b500")

    low_table = run_width_sweep(low, algorithms=["l2_sr", "count_sketch"])
    high_errors = error_by_algorithm(table)
    low_errors = error_by_algorithm(low_table)

    # bias-aware errors are insensitive to b; baseline errors grow with b
    assert high_errors["l2_sr"] == pytest.approx(low_errors["l2_sr"], rel=0.5)
    assert high_errors["count_sketch"] > 2.0 * low_errors["count_sketch"]

    benchmark(_sketch_and_recover, high.vector)
