"""Sketch-store throughput: put/get latency and the compaction win.

A checkpointing pipeline over the Figure 6 stream: the scaled-down Hudong
edge trace is replayed through a sliding-window session, and a snapshot is
``put`` into a :class:`repro.store.SketchStore` catalog at every pane's
worth of progress — the retention pattern ``compact`` is designed for,
since every historical snapshot carries the full pane ring.

Measured per backend discipline (WAL + busy timeout + materialized
listing):

* **put latency** — staging a snapshot (serialize + ``BEGIN IMMEDIATE``
  insert + listing refresh), for the windowed checkpoint stream and for a
  plain whole-stream sketch of the same geometry;
* **get latency** — restoring a snapshot in a fresh store handle, latest
  and version-pinned (the reader side of the WAL concurrency story);
* **compaction win** — bytes before/after ``compact`` over the retained
  history, with every version asserted to restore bit-equal answers.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced-size configuration (used by CI).
"""

import os
import time

import numpy as np
import pytest

from benchmarks.common import RESULTS_DIR
from repro.api import SketchConfig, SketchSession
from repro.data.hudong import simulated_hudong
from repro.store import SketchStore
from repro.streaming import WindowSpec, stream_from_items

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

DIMENSION = 2_000 if SMOKE else 20_000
EDGES = 24_000 if SMOKE else 120_000
WIDTH = 256 if SMOKE else 2_048
DEPTH = 9
PANES = 8
SNAPSHOTS = 8
#: the ring covers the most recent half of the stream
PANE_SIZE = EDGES // (2 * PANES)
BATCH_SIZE = 4_096


@pytest.fixture(scope="module")
def fig6_updates():
    data = simulated_hudong(dimension=DIMENSION, edges=EDGES, seed=66)
    stream = stream_from_items(data.sources, data.dimension)
    return stream.indices(), stream.deltas()


def windowed_config():
    return SketchConfig(
        "count_min", dimension=DIMENSION, width=WIDTH, depth=DEPTH, seed=17,
        window=WindowSpec(mode="sliding", panes=PANES, pane_size=PANE_SIZE),
    )


def timed(operation):
    start = time.perf_counter()
    result = operation()
    return time.perf_counter() - start, result


@pytest.mark.figure("6-store")
def test_store_put_get_latency_and_compaction_win(fig6_updates, tmp_path):
    indices, deltas = fig6_updates
    path = tmp_path / "catalog.db"

    # -- put: checkpoint the windowed replay every stream-eighth ---------- #
    put_seconds = []
    checkpoint = indices.size // SNAPSHOTS
    with SketchStore(path) as store:
        session = SketchSession.from_config(windowed_config())
        for step in range(SNAPSHOTS):
            begin, end = step * checkpoint, (step + 1) * checkpoint
            for start in range(begin, end, BATCH_SIZE):
                stop = min(start + BATCH_SIZE, end)
                session.ingest(indices[start:stop], deltas[start:stop])
            seconds, _ = timed(lambda: store.put("fig6-window", session))
            put_seconds.append(seconds)

        plain = SketchSession.from_config(windowed_config().replace(window=None))
        plain.ingest(indices, deltas)
        plain_put_seconds, _ = timed(lambda: store.put("fig6-plain", plain))

        expected = {
            version: store.get_payload("fig6-window", version)
            for version in range(1, SNAPSHOTS + 1)
        }

    # -- get: restores from fresh handles (the cross-process reader path) - #
    def restore_latest():
        with SketchStore(path) as reader:
            return reader.get_payload("fig6-window")

    def restore_pinned(version):
        with SketchStore(path) as reader:
            return reader.get_payload("fig6-window", version)

    get_latest_seconds, latest_payload = timed(restore_latest)
    assert latest_payload == expected[SNAPSHOTS]
    pinned_seconds = []
    for version in range(1, SNAPSHOTS + 1):
        seconds, payload = timed(lambda: restore_pinned(version))
        assert payload == expected[version]
        pinned_seconds.append(seconds)

    # -- compact: fold the retained pane rings, answers must not move ----- #
    answers_before = {
        version: SketchSession.from_bytes(payload).recover()
        for version, payload in expected.items()
    }
    file_bytes_before = os.path.getsize(path)
    with SketchStore(path) as store:
        compact_seconds, report = timed(
            lambda: store.compact("fig6-window", keep_latest=False)
        )
        assert report.snapshots_compacted > 0
        assert report.bytes_after < report.bytes_before
        for version, recovered in answers_before.items():
            restored = store.get("fig6-window", version)
            np.testing.assert_array_equal(restored.recover(), recovered)
        history = store.history("fig6-window")
        assert all(snapshot.pane_count <= 2 for snapshot in history)
    # the WAL checkpoints into the main file on close, so the VACUUM's
    # reclaim is only visible once the handle is gone
    file_bytes_after = os.path.getsize(path)
    assert file_bytes_after < file_bytes_before

    payload_bytes = len(expected[SNAPSHOTS])
    lines = [
        f"sketch store put/get latency and compaction win on the Figure 6 "
        f"stream (n={DIMENSION}, updates={indices.size}, s={WIDTH}, "
        f"d={DEPTH}, window=sliding {PANES}x{PANE_SIZE}, "
        f"{SNAPSHOTS} checkpoints{', smoke' if SMOKE else ''})",
        "",
        "puts checkpoint a windowed replay into a WAL-mode SQLite catalog",
        "(serialize + BEGIN IMMEDIATE insert + materialized-listing",
        "refresh); gets restore through a fresh store handle, which is the",
        "cross-process reader path the concurrency tests exercise.  the",
        "compaction pass folds each retained snapshot's closed panes into",
        "one (linearity keeps every answer bit-identical, asserted here);",
        "'win' is payload bytes before/after over the retained history.",
        "",
        f"{'operation':<26} {'mean_ms':>9} {'min_ms':>8} {'max_ms':>8}",
        f"{'put (windowed, ' + str(PANES) + ' panes)':<26} "
        f"{1e3 * np.mean(put_seconds):>9.2f} "
        f"{1e3 * np.min(put_seconds):>8.2f} "
        f"{1e3 * np.max(put_seconds):>8.2f}",
        f"{'put (plain sketch)':<26} {1e3 * plain_put_seconds:>9.2f} "
        f"{1e3 * plain_put_seconds:>8.2f} {1e3 * plain_put_seconds:>8.2f}",
        f"{'get (latest)':<26} {1e3 * get_latest_seconds:>9.2f} "
        f"{1e3 * get_latest_seconds:>8.2f} {1e3 * get_latest_seconds:>8.2f}",
        f"{'get (version-pinned)':<26} "
        f"{1e3 * np.mean(pinned_seconds):>9.2f} "
        f"{1e3 * np.min(pinned_seconds):>8.2f} "
        f"{1e3 * np.max(pinned_seconds):>8.2f}",
        "",
        f"snapshot payload          : {payload_bytes} bytes "
        f"({PANES} live panes)",
        f"compaction                : {report.snapshots_compacted} snapshots, "
        f"{report.panes_folded} panes folded in {compact_seconds:.3f}s",
        f"payload bytes             : {report.bytes_before} -> "
        f"{report.bytes_after} "
        f"({report.bytes_before / report.bytes_after:.2f}x win)",
        f"catalog file bytes        : {file_bytes_before} -> "
        f"{file_bytes_after} (after VACUUM + WAL checkpoint)",
        "",
    ]
    output = "\n".join(lines)
    print()
    print(output)
    RESULTS_DIR.joinpath("store_throughput.txt").write_text(output)
