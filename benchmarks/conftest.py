"""Shared configuration for the benchmark suite.

Each benchmark module regenerates one table/figure of the paper's evaluation
(Section 5) at laptop scale and prints the same series the paper plots
(algorithm × sketch size → average error / maximum error, or timing).  The
pytest-benchmark fixture times one representative operation per figure; the
full sweep runs once per test and is printed so EXPERIMENTS.md can be updated
from the bench output.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as reproducing a paper figure"
    )
