"""Ablation: quality of the bias estimators.

DESIGN.md §6 calls out bias estimation as a first-class interface.  This
bench measures how close each estimator gets to the exact optimal bias
``argmin_β Err_p^k(x - β·1)`` on a biased vector with planted outliers —
the quantity Lemmas 3 and 6 of the paper control:

* ``sampling_median`` — the ℓ1-S/R estimator (median of Θ(log n) samples),
* ``middle_buckets``  — the ℓ2-S/R estimator (mean of the middle 2k buckets),
* ``mean``            — the heuristic of Section 5.4 (not outlier-robust),
* ``exact``           — the ground truth (needs the full vector).
"""

import numpy as np
import pytest

from repro.core.bias import (
    MeanEstimator,
    MiddleBucketsMeanEstimator,
    SamplingMedianEstimator,
)
from repro.core.errors import optimal_bias
from repro.matrices.cm import CMMatrix

DIMENSION = 100_000
TRUE_BIAS = 100.0
OUTLIERS = 50


@pytest.fixture(scope="module")
def outlier_vector():
    rng = np.random.default_rng(123)
    vector = rng.normal(TRUE_BIAS, 15.0, size=DIMENSION)
    hot = rng.choice(DIMENSION, size=OUTLIERS, replace=False)
    vector[hot] += 50_000.0
    return vector


def _estimates(vector):
    sampling = SamplingMedianEstimator(vector.size, samples=1_024, seed=1)
    matrix = CMMatrix(1_024, vector.size, seed=2)
    middle = MiddleBucketsMeanEstimator(head_size=256)
    mean = MeanEstimator(vector.size)
    return {
        "sampling_median": sampling.estimate_from_vector(vector),
        "middle_buckets": middle.estimate_from_buckets(
            matrix.apply(vector), matrix.column_sums()
        ),
        "mean": mean.estimate_from_vector(vector),
        "exact": optimal_bias(vector, OUTLIERS, 2).beta,
    }


def test_ablation_bias_estimator_quality(benchmark, outlier_vector):
    estimates = _estimates(outlier_vector)
    print()
    for name, value in estimates.items():
        print(f"  bias estimate [{name:>16}] = {value:12.4f} "
              f"(optimal ≈ {TRUE_BIAS})")

    # the paper's two estimators land near the optimal bias despite the outliers
    assert estimates["sampling_median"] == pytest.approx(estimates["exact"], abs=5.0)
    assert estimates["middle_buckets"] == pytest.approx(estimates["exact"], abs=5.0)
    # the plain mean is dragged away by the outliers (Section 4.1's warning)
    assert abs(estimates["mean"] - estimates["exact"]) > 10.0

    benchmark(_estimates, outlier_vector)
