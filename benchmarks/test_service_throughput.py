"""Service throughput: sustained ingest vs. concurrent query latency.

The HTAP claim of the :mod:`repro.server` front door, measured end to end
over real TCP: one load-generator connection streams update batches at
full speed while ``QUERY_CLIENTS`` concurrent connections fire point
queries the whole time.  Because readers answer from snapshot replicas,
query latency must stay flat while the writer absorbs the stream — and
every answer's ``epoch`` shows exactly how stale it was.

Recorded into ``benchmarks/results/service_throughput.txt``:

* **sustained ingest throughput** — updates/second absorbed by the writer
  path (client-side framing + TCP + bounded queue + ``update_batch``);
* **query latency** — mean / p50 / p99 across all concurrent clients,
  measured *while the ingest stream runs*;
* **staleness** — the distinct replica epochs the query clients observed
  mid-stream (bounded by the snapshot cadence);
* **bit-identity** — server answers equal a local
  :meth:`~repro.api.SketchSession.from_bytes` restore of the ``snapshot``
  payload for the epoch they report, asserted per probe.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced-size configuration (used by CI).
"""

import os
import threading
import time

import numpy as np
import pytest

from benchmarks.common import RESULTS_DIR
from repro.api import SketchConfig, SketchSession
from repro.server import Client, ServerConfig, ServerHandle

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

DIMENSION = 2_000 if SMOKE else 20_000
WIDTH = 256 if SMOKE else 2_048
DEPTH = 9
SEED = 17
TOTAL_UPDATES = 120_000 if SMOKE else 1_500_000
INGEST_BATCH = 8_192
QUERY_CLIENTS = 4
SNAPSHOT_INTERVAL = 0.05
VERIFY_PROBES = 32


@pytest.mark.figure("service")
def test_service_sustained_ingest_and_query_p99():
    config = ServerConfig(
        sketch=SketchConfig("count_min", dimension=DIMENSION, width=WIDTH,
                            depth=DEPTH, seed=SEED),
        snapshot_interval=SNAPSHOT_INTERVAL,
    )
    handle = ServerHandle.start(config)
    rng = np.random.default_rng(SEED)
    # zipf-ish skew so heavy hitters exist and counters collide realistically
    updates = (
        rng.zipf(1.3, size=TOTAL_UPDATES).astype(np.int64) % DIMENSION
    )
    ingest_done = threading.Event()
    ingest_result = {}
    per_client_latencies = [[] for _ in range(QUERY_CLIENTS)]
    per_client_epochs = [set() for _ in range(QUERY_CLIENTS)]
    errors = []

    def ingest_load():
        try:
            with Client(handle.host, handle.port) as client:
                started = time.perf_counter()
                for start in range(0, TOTAL_UPDATES, INGEST_BATCH):
                    client.ingest(updates[start:start + INGEST_BATCH])
                client.flush()  # ingest "done" = applied, not just queued
                ingest_result["seconds"] = time.perf_counter() - started
        except Exception as error:  # noqa: BLE001 - surfaced by the assert
            errors.append(error)
        finally:
            ingest_done.set()

    def query_load(slot):
        probe_rng = np.random.default_rng(1_000 + slot)
        probes = probe_rng.integers(0, DIMENSION, 4_096)
        try:
            with Client(handle.host, handle.port) as client:
                position = 0
                while not ingest_done.is_set():
                    probe = int(probes[position % probes.size])
                    position += 1
                    started = time.perf_counter()
                    answer = client.point(probe)
                    per_client_latencies[slot].append(
                        time.perf_counter() - started
                    )
                    per_client_epochs[slot].add(answer.epoch)
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    query_threads = [
        threading.Thread(target=query_load, args=(slot,), daemon=True)
        for slot in range(QUERY_CLIENTS)
    ]
    ingest_thread = threading.Thread(target=ingest_load, daemon=True)
    for thread in query_threads:
        thread.start()
    ingest_thread.start()
    ingest_thread.join(timeout=600)
    for thread in query_threads:
        thread.join(timeout=60)
    assert not errors, f"load generator failed: {errors[:3]}"
    assert "seconds" in ingest_result

    # -- bit-identity: server answers == local restore of the epoch ------- #
    with Client(handle.host, handle.port) as client:
        snap_epoch, payload = client.snapshot()
        restored = SketchSession.from_bytes(payload)
        verified = 0
        probe_rng = np.random.default_rng(99)
        for probe in probe_rng.integers(0, DIMENSION, VERIFY_PROBES):
            answer = client.point(int(probe))
            assert answer.epoch == snap_epoch
            assert answer.value == restored.query(kind="point",
                                                  index=int(probe))
            verified += 1
        final_stats = client.stats()
    assert verified == VERIFY_PROBES
    # the writer really absorbed the whole stream
    assert final_stats["updates_applied"] == TOTAL_UPDATES

    summary = handle.stop()
    assert summary["updates_applied"] == TOTAL_UPDATES

    # -- report ----------------------------------------------------------- #
    latencies = np.concatenate(
        [np.asarray(values) for values in per_client_latencies if values]
    )
    queries = int(latencies.size)
    epochs_observed = sorted(set().union(*per_client_epochs))
    updates_per_second = TOTAL_UPDATES / ingest_result["seconds"]
    queries_per_second = queries / ingest_result["seconds"]
    # queries were answered at live (mid-stream) epochs, not just at the end
    assert queries > 0
    assert len(epochs_observed) >= 1

    lines = [
        f"service throughput: sustained ingest vs {QUERY_CLIENTS} concurrent "
        f"query clients over TCP (count_min n={DIMENSION}, s={WIDTH}, "
        f"d={DEPTH}, {TOTAL_UPDATES} updates in batches of {INGEST_BATCH}, "
        f"snapshot cadence {SNAPSHOT_INTERVAL}s"
        f"{', smoke' if SMOKE else ''})",
        "",
        "one writer connection streams update frames at full speed while",
        f"{QUERY_CLIENTS} reader connections fire point queries the whole "
        "time; readers answer from snapshot replicas (HTAP split), so every",
        "query carries the epoch it read — staleness is explicit, and each",
        "answer is asserted bit-identical to a local from_bytes restore of",
        "the snapshot payload for the epoch it reports.",
        "",
        f"sustained ingest          : {updates_per_second:,.0f} updates/s "
        f"({ingest_result['seconds']:.2f}s wall)",
        f"concurrent query rate     : {queries_per_second:,.0f} queries/s "
        f"({queries} queries across {QUERY_CLIENTS} clients)",
        f"query latency mean        : {1e3 * latencies.mean():.3f} ms",
        f"query latency p50         : "
        f"{1e3 * np.percentile(latencies, 50):.3f} ms",
        f"query latency p99         : "
        f"{1e3 * np.percentile(latencies, 99):.3f} ms",
        f"replica epochs observed   : {len(epochs_observed)} distinct "
        f"(first {epochs_observed[0]}, last {epochs_observed[-1]})",
        f"final epoch               : {summary['final_epoch']} "
        f"({summary['updates_applied']} updates applied)",
        f"bit-identity probes       : {verified} verified against epoch "
        f"{snap_epoch}'s snapshot payload",
        "",
    ]
    output = "\n".join(lines)
    print()
    print(output)
    RESULTS_DIR.joinpath("service_throughput.txt").write_text(output)
