"""Sharded vs single-process ingestion on the Figure 6 streaming workload.

The sharded ingestion engine partitions the stream across worker processes,
each replaying its shard into a local sketch through the PR-1 batched path,
then merges the *serialized* shard results — linearity makes the partition
lossless, so the merged state must equal single-process batch ingestion bit
for bit on this unit-delta stream.

The benchmark replays the scaled-down Hudong edge stream both ways for the
linear reference sketches and records the wall-clock speedup.  Parallel
efficiency is bounded by the cores actually available: the speedup bar is
only enforced when the machine has ≥ 2 usable cores (the correctness
assertion — identical state — always runs), and the result file records the
core count alongside the measurements so numbers from different machines are
comparable.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced-size configuration (used by CI).
"""

import os
import time

import numpy as np
import pytest

from benchmarks.common import RESULTS_DIR
from repro.data.hudong import simulated_hudong
from repro.sketches.registry import make_sketch
from repro.streaming import ingest_stream_sharded
from repro.streaming.generators import stream_from_items

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

try:
    CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-linux
    CORES = os.cpu_count() or 1

DIMENSION = 2_000 if SMOKE else 20_000
EDGES = 40_000 if SMOKE else 800_000
WIDTH = 256 if SMOKE else 2_048
DEPTH = 9
BATCH_SIZE = 8_192
SHARD_COUNTS = (2, 4)

#: linear sketches replayed both ways (non-linear sketches cannot be sharded
#: — the engine rejects them, which tests/streaming/test_sharded.py covers)
ALGORITHMS = ("count_min", "count_sketch", "l2_sr")

#: required speedup at 4 shards — only enforced on genuinely multi-core
#: machines; a process pool on one core measures pure overhead
SPEEDUP_BAR = 1.3


@pytest.fixture(scope="module")
def fig6_stream():
    data = simulated_hudong(dimension=DIMENSION, edges=EDGES, seed=66)
    return stream_from_items(data.sources, data.dimension)


@pytest.mark.figure("6-sharded")
def test_sharded_ingestion_speedup_and_equivalence(fig6_stream):
    indices, deltas = fig6_stream.indices(), fig6_stream.deltas()
    rows = []
    for algorithm in ALGORITHMS:
        single = make_sketch(algorithm, DIMENSION, WIDTH, DEPTH, seed=17)
        start = time.perf_counter()
        for begin in range(0, indices.size, BATCH_SIZE):
            stop = begin + BATCH_SIZE
            single.update_batch(indices[begin:stop], deltas[begin:stop])
        single_seconds = time.perf_counter() - start
        single_state = single.state_dict()["arrays"]

        for shards in SHARD_COUNTS:
            report = ingest_stream_sharded(
                fig6_stream, algorithm, WIDTH, DEPTH, seed=17,
                shards=shards, batch_size=BATCH_SIZE,
            )
            sharded_state = report.sketch.state_dict()["arrays"]
            identical = all(
                np.array_equal(single_state[key], sharded_state[key])
                for key in single_state
            )
            speedup = single_seconds / report.elapsed_seconds
            rows.append((algorithm, shards, single_seconds,
                         report.elapsed_seconds, speedup, identical,
                         sum(report.payload_bytes)))

            # linearity: the merged shard sketches must reproduce the
            # single-process counters bit for bit on this unit-delta stream
            assert identical, (
                f"{algorithm} @ {shards} shards: merged state diverged from "
                "single-process ingestion"
            )
            assert report.sketch.items_processed == indices.size

    if CORES >= 2 and not SMOKE:
        best = {}
        for algorithm, shards, _, _, speedup, _, _ in rows:
            best[algorithm] = max(best.get(algorithm, 0.0), speedup)
        for algorithm, speedup in best.items():
            assert speedup >= SPEEDUP_BAR, (
                f"{algorithm}: sharded ingestion only {speedup:.2f}x on "
                f"{CORES} cores (bar: {SPEEDUP_BAR}x)"
            )

    lines = [
        f"sharded ingestion on the Figure 6 stream "
        f"(n={DIMENSION}, updates={indices.size}, s={WIDTH}, d={DEPTH}, "
        f"batch_size={BATCH_SIZE}, cores={CORES}"
        f"{', smoke' if SMOKE else ''})",
        "",
        "workers replay contiguous shards via update_batch and the parent",
        "merges their serialized (to_bytes) payloads; 'identical' compares",
        "the merged counters against single-process batch ingestion.",
        "speedup >1 requires >=2 usable cores; on a 1-core machine the",
        "sharded path measures pure process-pool + serialization overhead.",
        "",
        f"{'algorithm':<14} {'shards':>7} {'single_s':>10} {'sharded_s':>10} "
        f"{'speedup':>9} {'identical':>10} {'payload_B':>10}",
    ]
    for algorithm, shards, single_s, sharded_s, speedup, identical, payload in rows:
        lines.append(
            f"{algorithm:<14} {shards:>7d} {single_s:>10.3f} {sharded_s:>10.3f} "
            f"{speedup:>8.2f}x {str(identical):>10} {payload:>10d}"
        )
    print()
    print("\n".join(lines))
    if not SMOKE:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "sharded_ingestion.txt").write_text("\n".join(lines) + "\n")
