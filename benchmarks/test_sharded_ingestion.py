"""Pooled sharded vs single-process ingestion on the Figure 6 workload.

The zero-copy engine spawns its worker pool **once**; each worker owns a
shared-memory counter block, per-call updates are staged in a shared
segment and described to workers as ``(offset, length)`` slices, and the
parent folds the blocks with vectorized ``+=``.  Nothing is pickled in
either direction, so — unlike the fork-per-call engine this replaces
(historical numbers kept at the bottom of the results file) — the parallel
speedup is not eaten by process spawn and counter serialization.

The benchmark replays the scaled-down Hudong edge stream both ways for the
linear reference sketches and records wall-clock speedup plus the phase
breakdown (split / worker / fold) from the ingest report.  Pool spawn is
excluded from the timed region (that is the engine's contract: spawn once,
ingest many times) and a warm-up ingest precedes the measurement so page
faults and lazy hash-table construction are off the clock.

Speedup > 1.0 is enforced whenever the machine has ≥ 2 usable cores — in
smoke mode too, which is what the CI shard-smoke job runs.  The correctness
assertion (bit-identical state) always runs.  Per-core efficiency at
4 shards is recorded, and enforced at ≥ 0.8× when 4+ cores are available.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced-size configuration (used by CI).
"""

import os
import time

import numpy as np
import pytest

from benchmarks.common import RESULTS_DIR
from repro.data.hudong import simulated_hudong
from repro.sketches.registry import make_sketch
from repro.streaming import ShardedIngestPool
from repro.streaming.generators import stream_from_items

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

try:
    CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-linux
    CORES = os.cpu_count() or 1

DIMENSION = 2_000 if SMOKE else 20_000
EDGES = 40_000 if SMOKE else 800_000
WIDTH = 256 if SMOKE else 2_048
DEPTH = 9
BATCH_SIZE = 8_192
SHARD_COUNTS = (2, 4, 8)

#: linear sketches replayed both ways (non-linear sketches cannot be sharded
#: — the engine rejects them, which tests/streaming/test_sharded.py covers)
ALGORITHMS = ("count_min", "count_sketch", "l2_sr")

#: a warm pool must beat single-process on any genuinely multi-core machine
SPEEDUP_BAR = 1.0

#: required per-core efficiency at 4 shards on 4+ core machines
EFFICIENCY_BAR = 0.8

#: fork-per-call engine numbers from the same machine class (cores=1),
#: preserved in the results file for contrast with the pooled engine
HISTORICAL = """\
historical: fork-per-call engine (serialized shard merge), cores=1
algorithm       shards   single_s  sharded_s   speedup  identical  payload_B
count_min            2      0.075      0.190     0.39x       True     295344
count_min            4      0.075      0.146     0.51x       True     590688
count_sketch         2      0.139      0.203     0.68x       True     295350
count_sketch         4      0.139      0.177     0.79x       True     590700
l2_sr                2      0.122      0.250     0.49x       True     328238
l2_sr                4      0.122      0.209     0.58x       True     656476"""


@pytest.fixture(scope="module")
def fig6_stream():
    data = simulated_hudong(dimension=DIMENSION, edges=EDGES, seed=66)
    return stream_from_items(data.sources, data.dimension)


@pytest.mark.figure("6-sharded")
def test_sharded_ingestion_speedup_and_equivalence(fig6_stream):
    indices, deltas = fig6_stream.indices(), fig6_stream.deltas()
    rows = []
    efficiency_at_4 = {}
    for algorithm in ALGORITHMS:
        single = make_sketch(algorithm, DIMENSION, WIDTH, DEPTH, seed=17)
        start = time.perf_counter()
        for begin in range(0, indices.size, BATCH_SIZE):
            stop = begin + BATCH_SIZE
            single.update_batch(indices[begin:stop], deltas[begin:stop])
        single_seconds = time.perf_counter() - start
        single_state = single.state_dict()["arrays"]

        for shards in SHARD_COUNTS:
            workers = max(1, min(shards, CORES))
            with ShardedIngestPool(
                algorithm, DIMENSION, WIDTH, DEPTH, seed=17,
                workers=workers, batch_size=BATCH_SIZE,
            ) as pool:
                # warm-up: touch every page and build the workers' hash
                # tables off the clock (spawn cost is likewise excluded —
                # a pool is spawned once and reused across ingests)
                warmup = make_sketch(
                    algorithm, DIMENSION, WIDTH, DEPTH, seed=17
                )
                pool.ingest(
                    indices[:BATCH_SIZE], deltas[:BATCH_SIZE],
                    target=warmup, shards=shards,
                )

                target = make_sketch(
                    algorithm, DIMENSION, WIDTH, DEPTH, seed=17
                )
                start = time.perf_counter()
                report = pool.ingest(
                    indices, deltas, target=target, shards=shards
                )
                pool_seconds = time.perf_counter() - start

            sharded_state = target.state_dict()["arrays"]
            identical = all(
                np.array_equal(single_state[key], sharded_state[key])
                for key in single_state
            )
            speedup = single_seconds / pool_seconds
            if shards == 4:
                efficiency_at_4[algorithm] = speedup / min(4, CORES)
            rows.append((
                algorithm, shards, workers, single_seconds, pool_seconds,
                speedup, report.split_seconds,
                max(report.worker_seconds, default=0.0),
                report.fold_seconds, report.bytes_crossed, identical,
            ))

            # linearity: the folded shard blocks must reproduce the
            # single-process counters bit for bit on this unit-delta stream
            assert identical, (
                f"{algorithm} @ {shards} shards: folded state diverged from "
                "single-process ingestion"
            )
            assert target.items_processed == indices.size
            assert report.bytes_crossed == 0

    if CORES >= 2:
        best = {}
        for row in rows:
            algorithm, speedup = row[0], row[5]
            best[algorithm] = max(best.get(algorithm, 0.0), speedup)
        for algorithm, speedup in best.items():
            assert speedup > SPEEDUP_BAR, (
                f"{algorithm}: pooled sharded ingestion only {speedup:.2f}x "
                f"on {CORES} cores (bar: >{SPEEDUP_BAR}x)"
            )
    if CORES >= 4 and not SMOKE:
        for algorithm, efficiency in efficiency_at_4.items():
            assert efficiency >= EFFICIENCY_BAR, (
                f"{algorithm}: {efficiency:.2f}x per-core efficiency at "
                f"4 shards on {CORES} cores (bar: {EFFICIENCY_BAR}x)"
            )

    lines = [
        f"pooled sharded ingestion on the Figure 6 stream "
        f"(n={DIMENSION}, updates={indices.size}, s={WIDTH}, d={DEPTH}, "
        f"batch_size={BATCH_SIZE}, cores={CORES}"
        f"{', smoke' if SMOKE else ''})",
        "",
        "zero-copy engine: workers scatter-add (offset, length) slices of a",
        "shared updates segment into per-worker shared-memory counter",
        "blocks; the parent folds the blocks with vectorized += (no pickling",
        "either direction; pool spawn excluded — spawn once, ingest many).",
        "split/worker/fold is the phase breakdown from the ingest report;",
        "worker_s is the slowest worker (they run concurrently).  speedup >1",
        "requires >=2 usable cores; on a 1-core machine the pooled path",
        "measures pure staging + descriptor + fold overhead.",
        "",
        f"{'algorithm':<14} {'shards':>7} {'workers':>8} {'single_s':>10} "
        f"{'pool_s':>8} {'speedup':>9} {'split_s':>8} {'worker_s':>9} "
        f"{'fold_s':>7} {'crossed_B':>10} {'identical':>10}",
    ]
    for (algorithm, shards, workers, single_s, pool_s, speedup,
         split_s, worker_s, fold_s, crossed, identical) in rows:
        lines.append(
            f"{algorithm:<14} {shards:>7d} {workers:>8d} {single_s:>10.3f} "
            f"{pool_s:>8.3f} {speedup:>8.2f}x {split_s:>8.3f} "
            f"{worker_s:>9.3f} {fold_s:>7.3f} {crossed:>10d} "
            f"{str(identical):>10}"
        )
    for algorithm, efficiency in efficiency_at_4.items():
        lines.append(
            f"per-core efficiency @ 4 shards: {algorithm} "
            f"{efficiency:.2f}x ({min(4, CORES)} effective cores)"
        )
    lines += ["", HISTORICAL]
    print()
    print("\n".join(lines))
    if not SMOKE:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "sharded_ingestion.txt").write_text("\n".join(lines) + "\n")
