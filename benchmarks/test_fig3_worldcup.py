"""Figure 3: point-query accuracy on the WorldCup dataset.

Paper setup: requests per second to the 1998 World Cup site on May 14 1998,
n = 86 400, ~3.2·10^6 requests.  ℓ2-S/R achieves the smallest average error
with CS and ℓ1-S/R following closely; CM, CM-CU and CML-CU are significantly
worse; for maximum error most algorithms are similar except CM which is 4+
times worse.

Scaled-down reproduction: the simulated WorldCup workload (bursty diurnal
counts, ~37 req/s) with n = 43 200 (half a day of seconds).
"""

import pytest

from benchmarks.common import PAPER_DEPTH, error_by_algorithm, report, run_width_sweep
from repro.data.worldcup import simulated_worldcup
from repro.sketches.registry import make_sketch

DIMENSION = 43_200


@pytest.mark.figure("3")
def test_figure3_worldcup(benchmark):
    dataset = simulated_worldcup(dimension=DIMENSION, seed=33)
    table = run_width_sweep(dataset,
                            title="Figure 3: WorldCup (simulated substitute)")
    report(table, "fig3_worldcup")

    average = error_by_algorithm(table, "average_error")

    # ℓ2-S/R has the smallest average error; CS and ℓ1-S/R follow closely
    assert average["l2_sr"] == min(average.values())
    assert average["count_sketch"] < 3.0 * average["l2_sr"]
    # the Count-Min family trails the signed/bias-aware sketches
    assert average["count_median"] > average["l2_sr"]
    assert average["count_min_cu"] > average["l2_sr"]

    def _operation():
        sketch = make_sketch("l2_sr", DIMENSION, 1_024, PAPER_DEPTH, seed=5)
        sketch.fit(dataset.vector)
        return sketch.recover()

    benchmark(_operation)
