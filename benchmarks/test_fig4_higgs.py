"""Figure 4: point-query accuracy on the Higgs dataset.

Paper setup: the fourth kinematic feature of the HIGGS Monte-Carlo events
modelled as a non-negative vector of n = 1.1·10^7 entries.  ℓ2-S/R achieves
the smallest average error; CS is next and clearly better than the rest; for
maximum error CML-CU approaches ℓ2-S/R at large s; CM is worst.

Scaled-down reproduction: the simulated Higgs workload (gamma-distributed
non-negative feature values) with n = 50 000.
"""

import pytest

from benchmarks.common import PAPER_DEPTH, error_by_algorithm, report, run_width_sweep
from repro.data.higgs import simulated_higgs
from repro.sketches.registry import make_sketch

DIMENSION = 50_000


@pytest.mark.figure("4")
def test_figure4_higgs(benchmark):
    dataset = simulated_higgs(dimension=DIMENSION, seed=44)
    table = run_width_sweep(dataset, title="Figure 4: Higgs (simulated substitute)")
    report(table, "fig4_higgs")

    average = error_by_algorithm(table, "average_error")

    # ℓ2-S/R achieves the smallest average error, CS comes second
    assert average["l2_sr"] == min(average.values())
    baselines_without_cs = {
        name: value for name, value in average.items()
        if name not in ("l2_sr", "l1_sr", "count_sketch")
    }
    assert average["count_sketch"] < min(baselines_without_cs.values())
    # Count-Median is the worst performer
    assert max(average.values()) == average["count_median"]

    def _operation():
        sketch = make_sketch("l2_sr", DIMENSION, 1_024, PAPER_DEPTH, seed=7)
        sketch.fit(dataset.vector)
        return sketch.recover()

    benchmark(_operation)
