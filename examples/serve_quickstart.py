"""Serving a sketch over TCP: ingest and query through the front door.

The server (`repro.server`) turns one `SketchSession` into a network
service with an HTAP-style split: a single writer task owns the session
and absorbs batched ingest frames from a bounded queue, while readers
answer point/heavy-hitter/range/inner-product queries from an immutable
snapshot replica that refreshes on a configurable cadence.  Every answer
carries the replica's *epoch*, so staleness is explicit rather than
hidden.

This walkthrough boots a server in-process (`ServerHandle` runs the
asyncio loop on a daemon thread — the same mechanics as `repro-sketches
serve`, minus the signal handling), streams a skewed workload through the
synchronous `Client`, queries it concurrently, inspects the byte-count
stats, and finally drains the server and restores the final snapshot
payload locally to show the answers are bit-identical.

Run with::

    python examples/serve_quickstart.py

Against a standalone server the client side is identical — boot one with::

    repro-sketches serve --algorithm count_min --dimension 100000 \
        --width 2048 --depth 9 --seed 7 --port 7117
"""

import numpy as np

from repro import SketchConfig, SketchSession
from repro.server import Client, ServerConfig, ServerHandle

DIMENSION = 100_000
UPDATES = 400_000
BATCH = 8_192


def main() -> None:
    config = ServerConfig(
        sketch=SketchConfig("count_min", dimension=DIMENSION, width=2_048,
                            depth=9, seed=7),
        snapshot_interval=0.1,     # refresh the read replica every 100 ms...
        snapshot_updates=100_000,  # ...or every 100k updates, first wins
    )
    handle = ServerHandle.start(config)
    print(f"serving on {handle.host}:{handle.port}")

    rng = np.random.default_rng(0)
    keys = rng.zipf(1.2, size=UPDATES).astype(np.int64) % DIMENSION

    with Client(handle.host, handle.port) as client:
        # -- ingest: batched update frames through the writer path ------- #
        for start in range(0, UPDATES, BATCH):
            client.ingest(keys[start:start + BATCH])
        epoch = client.flush()        # barrier: queued batches are applied
        print(f"ingested {UPDATES} updates; replica now at epoch {epoch}")

        # -- query: answered from the snapshot replica ------------------- #
        hot = int(np.bincount(keys[:1_000]).argmax())
        answer = client.point(hot)
        print(f"point({hot}) = {answer.value:.0f}  [epoch {answer.epoch}, "
              f"{answer.items} items behind the answer]")
        hitters = client.heavy_hitters(phi=0.001, top_k=3).value
        print("top-3 heavy hitters:",
              [(h.index, round(h.estimate)) for h in hitters])
        print(f"range sum [0, 50) = {client.range(0, 50).value:.0f}")

        # -- stats: per-connection ingest/query byte accounting ---------- #
        totals = client.stats()["totals"]
        print(f"server moved {totals['ingest_bytes']:,} ingest bytes and "
              f"{totals['query_bytes']:,} query bytes this far")

        # -- snapshot: the replica's exact payload, restorable anywhere -- #
        snap_epoch, payload = client.snapshot()
        local = SketchSession.from_bytes(payload)
        assert local.query(kind="point", index=hot) == client.point(hot).value
        print(f"epoch-{snap_epoch} snapshot restored locally: "
              f"answers are bit-identical")

    summary = handle.stop()   # graceful drain: queued work applied first
    print(f"drained: {summary['updates_applied']} updates applied, "
          f"final epoch {summary['final_epoch']}")


if __name__ == "__main__":
    main()
