"""Quickstart: bias-aware sketches in five minutes, through the session API.

This walks through the paper's running example (Section 1, Equation 3) and a
small synthetic experiment showing why subtracting the bias before sketching
matters.  Every sketch is built, fed and queried through the unified
:mod:`repro.api` facade: a declarative ``SketchConfig`` plus a
``SketchSession`` owning the whole lifecycle.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import SketchConfig, SketchSession, err_pk, optimal_bias


def running_example() -> None:
    """Reproduce the introduction's running example exactly."""
    print("=" * 70)
    print("The paper's running example (Equation 3)")
    print("=" * 70)
    x = np.array([3, 100, 101, 500, 102, 98, 97, 100, 99, 103], dtype=float)
    k = 2
    print(f"x = {x.astype(int).tolist()},  k = {k}")
    print(f"Err_1^k(x)            = {err_pk(x, k, 1):8.2f}   (paper: 700)")
    print(f"Err_2^k(x)            = {err_pk(x, k, 2):8.2f}   (paper: ~263.49)")
    l1 = optimal_bias(x, k, 1)
    l2 = optimal_bias(x, k, 2)
    print(f"min_b Err_1^k(x - b)  = {l1.error:8.2f}   at b = {l1.beta:g} "
          "(paper: 12 at b = 100)")
    print(f"min_b Err_2^k(x - b)  = {l2.error:8.2f}   at b = {l2.beta:g} "
          "(paper: ~5.29 at b = 100)")
    print("De-biasing shrinks the tail the sketch error is charged against "
          "by ~50x.")
    print()


def sketch_comparison() -> None:
    """Sketch a biased vector with the classical and bias-aware sketches."""
    print("=" * 70)
    print("Point-query error on a biased vector (N(100, 15^2), 3 outliers)")
    print("=" * 70)
    rng = np.random.default_rng(7)
    n = 100_000
    x = rng.normal(100.0, 15.0, size=n)
    x[rng.choice(n, size=3, replace=False)] += 250_000.0

    width, depth = 2_000, 9
    # the paper's space convention: the bias-aware sketches spend d rows on
    # data plus one bias structure, so the baselines get d + 1 rows
    configs = {
        "Count-Median   (baseline)": SketchConfig(
            "count_median", dimension=n, width=width, depth=depth + 1, seed=1
        ),
        "Count-Sketch   (baseline)": SketchConfig(
            "count_sketch", dimension=n, width=width, depth=depth + 1, seed=1
        ),
        "l1-S/R      (bias-aware)": SketchConfig(
            "l1_sr", dimension=n, width=width, depth=depth, seed=1
        ),
        "l2-S/R      (bias-aware)": SketchConfig(
            "l2_sr", dimension=n, width=width, depth=depth, seed=1
        ),
    }
    print(f"n = {n}, sketch width s = {width}, total budget ~{(depth + 1) * width} "
          "words per algorithm\n")
    print(f"{'algorithm':<28}  {'avg error':>12}  {'max error':>12}")
    sessions = {}
    for name, config in configs.items():
        session = SketchSession.from_config(config).ingest(x)
        sessions[name] = session
        recovered = session.recover()
        avg = float(np.mean(np.abs(recovered - x)))
        mx = float(np.max(np.abs(recovered - x)))
        print(f"{name:<28}  {avg:12.3f}  {mx:12.1f}")

    l2 = sessions["l2-S/R      (bias-aware)"]
    print(f"\nl2-S/R estimated the bias as {l2.estimate_bias():.2f} "
          "(true common value: 100).")
    index = int(rng.integers(0, n))
    estimate = l2.query(kind="point", index=index)
    print(f"Point query x[{index}]: true = {x[index]:.2f}, "
          f"estimate = {estimate:.2f}")
    print()


def session_tour() -> None:
    """The rest of the facade in six lines: persist, reopen, rich queries."""
    print("=" * 70)
    print("Session lifecycle: ingest -> query -> save -> open -> query")
    print("=" * 70)
    rng = np.random.default_rng(21)
    x = rng.normal(50.0, 8.0, size=20_000)

    session = SketchSession.from_config(
        SketchConfig("l2_sr", dimension=x.size, width=1_024, depth=7, seed=5)
    ).ingest(x)
    top = session.query(kind="heavy_hitters", threshold=75.0, top_k=3)
    print(f"top outliers            : {[h.index for h in top]}")
    print(f"range sum x[100:200]    : {session.query(kind='range', low=100, high=200):.1f} "
          f"(true {x[100:200].sum():.1f})")

    payload = session.to_bytes()
    reopened = SketchSession.from_bytes(payload)
    same = reopened.query(kind="point", index=4_242) == session.query(4_242)
    print(f"serialized payload      : {len(payload)} bytes; "
          f"restored session answers identically: {same}")


def main() -> None:
    running_example()
    sketch_comparison()
    session_tour()


if __name__ == "__main__":
    main()
