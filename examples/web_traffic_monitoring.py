"""Web-traffic monitoring: flash-crowd detection over per-second request counts.

Scenario (the paper's WorldCup motivation): a web farm counts the requests it
served in every second of the day.  The counts hover around a baseline rate —
a textbook biased vector — and the operator wants to answer, from a small
sketch instead of the raw 86 400-entry vector:

* point queries ("how many requests did we serve at second 41 020?"),
* flash-crowd detection ("which seconds were far above the baseline?"),
* range queries ("how many requests between 10:00 and 10:05?").

All three go through one :class:`repro.api.SketchSession` and its single
``query(kind=...)`` dispatcher.

Run with::

    python examples/web_traffic_monitoring.py
"""

import numpy as np

from repro import SketchConfig, SketchSession
from repro.data import simulated_worldcup


def main() -> None:
    dataset = simulated_worldcup(
        dimension=43_200,          # half a day of seconds
        average_rate=37.0,
        flash_crowds=4,
        flash_multiplier=12.0,
        seed=2017,
    )
    x = dataset.vector
    n = dataset.dimension
    print(f"Workload: {dataset.description}")
    print(f"  seconds covered : {n}")
    print(f"  total requests  : {int(dataset.total_mass)}")
    print(f"  mean / max rate : {x.mean():.1f} / {x.max():.0f} requests/s")
    print()

    # --- build the session ------------------------------------------------- #
    session = SketchSession.from_config(
        SketchConfig("l2_sr", dimension=n, width=4_096, depth=9, seed=42)
    ).ingest(dataset)
    compression = n / session.size_in_words()
    print(f"Sketch: l2-S/R with {session.size_in_words()} counters "
          f"({compression:.1f}x smaller than the raw vector)")
    print(f"Estimated baseline rate (bias): {session.estimate_bias():.1f} requests/s")
    print()

    # --- point queries ---------------------------------------------------- #
    print("Point queries:")
    rng = np.random.default_rng(3)
    for second in rng.choice(n, size=5, replace=False):
        estimate = session.query(kind="point", index=int(second))
        truth = x[second]
        print(f"  second {int(second):>6}: true = {truth:7.1f}   "
              f"estimate = {estimate:7.1f}   "
              f"error = {abs(estimate - truth):5.1f}")
    print()

    # --- flash-crowd detection -------------------------------------------- #
    threshold = 8.0 * float(np.median(x))
    crowds = session.query(kind="heavy_hitters", threshold=threshold)
    true_crowds = set(np.flatnonzero(x > threshold))
    reported = {h.index for h in crowds}
    print(f"Flash-crowd seconds (estimated rate > {threshold:.0f} requests/s):")
    print(f"  reported {len(reported)} seconds; "
          f"{len(reported & true_crowds)} of the {len(true_crowds)} true "
          "flash-crowd seconds are covered")
    for hitter in crowds[:5]:
        print(f"  second {hitter.index:>6}: estimated {hitter.estimate:.0f} "
              f"(true {x[hitter.index]:.0f})")
    print()

    # --- range queries ----------------------------------------------------- #
    print("Five-minute range queries (300 seconds each):")
    for start in (3_600, 18_000, 36_000):
        end = start + 300
        estimate = session.query(kind="range", low=start, high=end)
        truth = float(x[start:end].sum())
        print(f"  seconds [{start:>6}, {end:>6}): true = {truth:9.0f}   "
              f"estimate = {estimate:9.0f}   "
              f"relative error = {abs(estimate - truth) / truth:6.2%}")


if __name__ == "__main__":
    main()
