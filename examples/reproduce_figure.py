"""Reproduce any of the paper's figures from the command line.

A thin driver over the evaluation harness: pick a dataset (the paper's
synthetic ones or the simulated substitutes for its real ones), a set of
algorithms and a range of sketch widths, and print the series the paper
plots.  Every sketch in the sweep is built and fed through the unified
:mod:`repro.api` session facade (see ``repro.eval.harness``), so this file
never constructs a sketch directly.

Examples::

    python examples/reproduce_figure.py --dataset gaussian --bias 500
    python examples/reproduce_figure.py --dataset wiki --widths 512 1024 2048
    python examples/reproduce_figure.py --dataset gaussian2 --suite mean \
        --shifted-entries 40
"""

import argparse

from repro import load_dataset, width_sweep
from repro.sketches.registry import mean_heuristic_suite, paper_reference_suite


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Regenerate one of the paper's accuracy figures at laptop scale."
    )
    parser.add_argument("--dataset", default="gaussian",
                        help="dataset name (gaussian, gaussian2, wiki, worldcup, "
                             "higgs, meme, hudong, zipf, uniform)")
    parser.add_argument("--dimension", type=int, default=40_000,
                        help="vector dimension n (scaled down from the paper)")
    parser.add_argument("--widths", type=int, nargs="+",
                        default=[512, 1_024, 2_048],
                        help="sketch widths s to sweep")
    parser.add_argument("--depth", type=int, default=9,
                        help="rows d for the bias-aware sketches "
                             "(baselines get d + 1)")
    parser.add_argument("--suite", choices=["paper", "mean"], default="paper",
                        help="'paper' = the six-algorithm comparison of "
                             "Figures 1-7; 'mean' = the mean-heuristic "
                             "comparison of Figures 8-9")
    parser.add_argument("--bias", type=float, default=None,
                        help="bias b of the Gaussian dataset (Figure 1 uses "
                             "100 and 500)")
    parser.add_argument("--shifted-entries", type=int, default=None,
                        help="number of shifted entries for gaussian2 "
                             "(Figure 8c-8d)")
    parser.add_argument("--seed", type=int, default=2017, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    dataset_kwargs = {"dimension": args.dimension}
    if args.bias is not None:
        dataset_kwargs["bias"] = args.bias
    if args.shifted_entries is not None:
        dataset_kwargs["shifted_entries"] = args.shifted_entries
    dataset = load_dataset(args.dataset, seed=args.seed, **dataset_kwargs)

    algorithms = (
        paper_reference_suite() if args.suite == "paper" else mean_heuristic_suite()
    )
    table = width_sweep(
        dataset,
        widths=args.widths,
        algorithms=algorithms,
        depth=args.depth,
        seed=args.seed,
        title=f"{args.dataset}: point-query error vs sketch width",
    )
    print(table.to_text())
    print(f"best algorithm by average error: {table.best_algorithm()}")


if __name__ == "__main__":
    main()
