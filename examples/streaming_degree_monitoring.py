"""Streaming graph monitoring: real-time out-degree queries over an edge stream.

Scenario (the paper's Hudong experiment, Section 5.5): edges of an evolving
link graph arrive one at a time in editing order, and an analyst wants the
current out-degree of any article *while the stream is still running* —
without storing the full degree vector and without a post-processing pass.

The streaming ℓ2 bias-aware sketch (Algorithm 6) keeps its bias estimate
current with the Bias-Heap of Algorithm 5, so every point query is answered
from the sketch in O(d) time.  The example drives it through a
:class:`repro.api.SketchSession`, whose ``ingest`` accepts the same scalar
updates the paper's streaming model is defined on.

Run with::

    python examples/streaming_degree_monitoring.py
"""

import time

import numpy as np

from repro import SketchConfig, SketchSession
from repro.data import simulated_hudong


def main() -> None:
    articles = 50_000
    edges = 400_000
    stream = simulated_hudong(dimension=articles, edges=edges, seed=11)
    print(f"Simulated encyclopaedia link stream: {articles} articles, "
          f"{edges} edges (substitute for the Hudong dataset)")
    print()

    session = SketchSession.from_config(
        SketchConfig("l2_sr_streaming", dimension=articles, width=4_096,
                     depth=9, seed=5)
    )
    truth = np.zeros(articles)

    checkpoints = {edges // 4, edges // 2, (3 * edges) // 4, edges - 1}
    watched_articles = [17, 4_242, 31_337]

    started = time.perf_counter()
    for step, (article, delta) in enumerate(stream.iter_updates()):
        session.ingest(article, delta)
        truth[article] += delta
        if step in checkpoints:
            elapsed = time.perf_counter() - started
            rate = (step + 1) / elapsed
            current_bias = session.estimate_bias()
            print(f"after {step + 1:>7} edges  "
                  f"({rate:,.0f} updates/s, current bias estimate "
                  f"{current_bias:5.2f}):")
            for watched in watched_articles:
                print(f"    out-degree of article {watched:>6}: "
                      f"true = {truth[watched]:6.0f}   "
                      f"sketch = {session.query(watched):8.2f}")
            print()

    # final accuracy over the hubs (the articles an analyst cares about)
    hubs = np.argsort(truth)[-10:][::-1]
    print("Final state — top-10 hubs by true out-degree:")
    print(f"  {'article':>8}  {'true degree':>12}  {'sketch estimate':>16}")
    for hub in hubs:
        estimate = session.query(kind="point", index=int(hub))
        print(f"  {int(hub):>8}  {truth[hub]:12.0f}  {estimate:16.2f}")

    errors = np.abs(session.recover() - truth)
    print()
    print(f"Average point-query error over all {articles} articles: "
          f"{errors.mean():.3f}")
    print(f"Maximum point-query error: {errors.max():.1f}")
    print(f"Sketch size: {session.size_in_words()} counters for a "
          f"{articles}-entry degree vector; every update and every query was "
          "answered online, in one pass, with no post-processing.")
    print("(Out-degree vectors are a low-bias, power-law workload — the "
          "regime of the paper's Figure 6, where the win of bias-awareness "
          "is modest but the streaming machinery is exercised end to end.)")


if __name__ == "__main__":
    main()
