"""Distributed aggregation: sites send sketches, the coordinator answers queries.

Scenario (the paper's distributed model, Section 1): ``t`` data centres each
observe part of the traffic to the same set of keys.  The coordinator wants
point queries on the *global* frequency vector, but shipping every local
vector would cost t·n words.  Because the bias-aware sketches are linear, each
site ships only its local sketch (t·O(k log n) words) and the coordinator sums
them — the merged sketch is exactly the sketch of the global vector.

Every site is built from the same declarative :class:`repro.api.SketchConfig`
(in a real deployment the coordinator broadcasts it), which is what
guarantees the sites' hash functions agree.  The example also shows why the
conservative-update baselines (CM-CU, CML-CU) cannot be used here: they are
not linear and refuse to merge.

Run with::

    python examples/distributed_aggregation.py
"""

import numpy as np

from repro import Coordinator, Site, SketchConfig, SketchSession, partition_vector
from repro.data import gaussian_dataset


def main() -> None:
    sites_count = 6
    dataset = gaussian_dataset(dimension=200_000, bias=120.0, sigma=20.0, seed=3)
    global_vector = np.round(dataset.vector)  # integer counts per key
    n = dataset.dimension
    print(f"Global vector: {n} keys, biased around 120 "
          "(e.g. per-key request counts across data centres)")
    print(f"Sites: {sites_count}")
    print()

    # every item is observed at exactly one site; local vectors sum to the global
    local_vectors = partition_vector(global_vector, sites_count, seed=9, by="items")

    # one config for everyone: the coordinator broadcasts it, each site builds
    # its compatible local sketch from it
    config = SketchConfig("l2_sr", dimension=n, width=4_096, depth=9, seed=99)

    sites = [
        Site(f"dc-{i}", config).observe_vector(local)
        for i, local in enumerate(local_vectors)
    ]

    coordinator = Coordinator()
    coordinator.collect_all(sites)

    per_site_words = sites[0].sketch.size_in_words()
    naive_words = sites_count * n
    print("Communication (sites ship serialized payloads, not live objects):")
    print(f"  per-site sketch          : {per_site_words} words "
          f"({sites[0].sketch.size_in_bytes()} bytes on the wire)")
    print(f"  total (sketch protocol)  : {coordinator.total_communication_words} "
          f"words / {coordinator.total_communication_bytes} bytes")
    print(f"  total (naive, raw vectors): {naive_words} words")
    print(f"  saving                   : "
          f"{naive_words / coordinator.total_communication_words:.0f}x")
    print(f"  size declarations flagged : "
          f"{len(coordinator.log.inconsistent_messages())}")
    print()

    # the merged sketch answers point queries on the global vector
    rng = np.random.default_rng(1)
    print("Point queries on the global vector (answered by the coordinator):")
    for key in rng.choice(n, size=5, replace=False):
        estimate = coordinator.query(int(key))
        print(f"  key {int(key):>7}: true = {global_vector[key]:7.0f}   "
              f"estimate = {estimate:8.2f}")
    print()

    # sanity check: the merge is exact (linearity), and de-biasing still pays
    # off after the merge exactly as it does centrally
    centralised = SketchSession.from_config(config).ingest(global_vector)
    deviation = float(
        np.max(np.abs(coordinator.recover() - centralised.recover()))
    )
    print(f"Max deviation between merged and centralised sketch: {deviation:.2e} "
          "(linearity makes the protocol lossless)")
    merged_error = float(np.mean(np.abs(coordinator.recover() - global_vector)))
    cs_config = SketchConfig("count_sketch", dimension=n, width=4_096, depth=10,
                             seed=99)
    cs_sites = [
        Site(f"cs-{i}", cs_config).observe_vector(local)
        for i, local in enumerate(local_vectors)
    ]
    cs_coordinator = Coordinator().collect_all(cs_sites)
    cs_error = float(np.mean(np.abs(cs_coordinator.recover() - global_vector)))
    print(f"Average point-query error of the merged sketch: "
          f"{merged_error:.1f} (l2-S/R)  vs  {cs_error:.1f} (Count-Sketch, "
          "same space) — the bias-awareness survives the merge")
    print()

    # the conservative-update baselines cannot participate in this protocol
    print("Trying the same protocol with Count-Min + conservative update:")
    cu_config = SketchConfig("count_min_cu", dimension=n, width=4_096, depth=10,
                             seed=99)
    try:
        Site("dc-bad", cu_config).observe_vector(local_vectors[0])
    except TypeError as error:
        print(f"  refused as expected: {error}")


if __name__ == "__main__":
    main()
