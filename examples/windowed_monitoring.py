"""Recency-bounded monitoring: last-hour heavy hitters over a drifting stream.

Scenario (the ROADMAP's web-traffic workload): requests arrive tagged with a
timestamp, and an operator wants *currently* trending keys — not the keys
that dominated hours ago.  A whole-stream sketch cannot answer this: its
counters remember everything since time zero.  The sliding-window engine
(`repro.streaming.windows`) answers it with the machinery the library
already has — per-pane linear sketches merged on demand — by keeping a ring
of the most recent panes and aging old panes out wholesale.

The simulation drifts the hot set: each "hour" a different small group of
keys dominates the traffic.  A 6-pane time-based sliding window (covering
the last hour) is compared against an unwindowed session over the same
stream: the windowed heavy hitters track the *current* hot group, while the
unwindowed sketch keeps reporting the stale heavyweights of earlier hours.

Run with::

    python examples/windowed_monitoring.py
"""

import numpy as np

from repro import SketchConfig, SketchSession
from repro.streaming import WindowSpec

KEYS = 50_000
HOURS = 4
REQUESTS_PER_HOUR = 120_000
HOT_KEYS_PER_HOUR = 8
#: a pane covers 10 minutes; 6 panes cover the trailing hour
PANE_MINUTES = 10.0
PANES = 6


def simulate_hour(rng, hour):
    """One hour of traffic: background noise plus that hour's hot group."""
    hot = np.arange(HOT_KEYS_PER_HOUR) + 1_000 * (hour + 1)
    background = rng.integers(0, KEYS, size=REQUESTS_PER_HOUR)
    # ~20% of requests hit the hour's hot group
    hot_positions = rng.random(REQUESTS_PER_HOUR) < 0.2
    background[hot_positions] = rng.choice(hot, size=int(hot_positions.sum()))
    minutes = np.sort(rng.uniform(hour * 60.0, (hour + 1) * 60.0,
                                  size=REQUESTS_PER_HOUR))
    return background, minutes, hot


def top_keys(session, **query):
    hits = session.query(kind="heavy_hitters", top_k=5, **query)
    return [(hit.index, round(hit.estimate)) for hit in hits]


def main() -> None:
    rng = np.random.default_rng(7)
    windowed = SketchSession.from_config(SketchConfig(
        "count_sketch", dimension=KEYS, width=4_096, depth=7, seed=11,
        window=WindowSpec(mode="sliding", panes=PANES,
                          pane_size=PANE_MINUTES, by="time"),
    ))
    whole = SketchSession.from_config(SketchConfig(
        "count_sketch", dimension=KEYS, width=4_096, depth=7, seed=11,
    ))

    print(f"Simulated drifting traffic: {KEYS} keys, {HOURS} hours x "
          f"{REQUESTS_PER_HOUR} requests, hot group changes hourly")
    print(f"Window: sliding, {PANES} panes x {PANE_MINUTES:.0f} minutes "
          f"(the trailing hour)")
    print()

    threshold = 0.05 * REQUESTS_PER_HOUR / HOT_KEYS_PER_HOUR
    for hour in range(HOURS):
        keys, minutes, hot = simulate_hour(rng, hour)
        windowed.ingest(keys, timestamps=minutes)
        whole.ingest(keys)
        in_window = windowed.items_in_window
        print(f"hour {hour + 1}: hot group = keys "
              f"{int(hot[0])}..{int(hot[-1])}  "
              f"(window holds {in_window:,} of "
              f"{windowed.items_processed:,} requests, "
              f"{windowed.window.evictions} panes evicted)")
        print(f"  windowed top-5 : {top_keys(windowed, threshold=threshold)}")
        print(f"  all-time top-5 : {top_keys(whole, threshold=threshold)}")
        current = {hit.index for hit in windowed.query(
            kind="heavy_hitters", threshold=threshold, top_k=5)}
        fresh_hits = len(current & set(int(k) for k in hot))
        print(f"  -> {fresh_hits}/5 windowed hits are in the CURRENT hot "
              "group")
        print()

    # the window state is a portable artifact like any sketch
    payload = windowed.to_bytes()
    reopened = SketchSession.from_bytes(payload)
    assert reopened.to_bytes() == payload
    print(f"Window state serialized to {len(payload):,} bytes "
          f"({windowed.window.pane_count} live panes), reopened "
          "byte-identically; the reopened session keeps answering "
          "last-hour queries from where this one left off.")


if __name__ == "__main__":
    main()
