"""Random sign functions ``r : [n] -> {-1, +1}`` for Count-Sketch.

A sign function is derived from a pairwise-independent hash into {0, 1},
mapped to {-1, +1}.  Pairwise independence of the signs is exactly what the
Count-Sketch variance analysis (Theorem 2 of the paper) requires.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.hashing.families import KWiseHash, hash_matrix
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


class SignHash:
    """A random ±1-valued hash function drawn from a k-wise independent family."""

    def __init__(self, independence: int = 2, seed: RandomSource = None) -> None:
        self.independence = require_positive_int(independence, "independence")
        self._bit_hash = KWiseHash(2, independence=independence, seed=seed)

    def __call__(self, item: int) -> int:
        """Return -1 or +1 for the given item."""
        return 1 if self._bit_hash(item) == 1 else -1

    def sign_array(self, items: Sequence[int]) -> np.ndarray:
        """Vectorised evaluation returning an int8 array of ±1."""
        bits = self._bit_hash.hash_array(items)
        return (2 * bits - 1).astype(np.int8)

    def sign_all(self, domain_size: int) -> np.ndarray:
        """Evaluate the sign function on every item of ``[0, domain_size)``."""
        domain_size = require_positive_int(domain_size, "domain_size")
        return self.sign_array(np.arange(domain_size, dtype=np.uint64))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignHash(independence={self.independence})"


def sign_matrix(signs: Sequence[SignHash], items) -> np.ndarray:
    """Fused row-stacked evaluation of a sign family on a batch of keys.

    Returns the ``(len(signs), len(items))`` ±1 matrix whose row ``r`` equals
    ``signs[r].sign_array(items)``, computed with one fused
    :func:`~repro.hashing.families.hash_matrix` pass over the underlying bit
    hashes — bit-identical to the per-row path.
    """
    if not signs:
        raise ValueError("sign_matrix needs at least one sign function")
    bits = hash_matrix([sign._bit_hash for sign in signs], items)
    return (2 * bits - 1).astype(np.int8)


def sign_family(
    count: int,
    independence: int = 2,
    seed: RandomSource = None,
) -> List[SignHash]:
    """Draw ``count`` mutually independent sign functions."""
    count = require_positive_int(count, "count")
    rng = as_rng(seed)
    return [SignHash(independence=independence, seed=rng) for _ in range(count)]
