"""K-wise independent hash families over a Mersenne-prime field.

A k-wise independent family is realised as a random degree-(k-1) polynomial
over GF(p) with p = 2^61 - 1, reduced modulo the target range::

    h(x) = (a_{k-1} x^{k-1} + ... + a_1 x + a_0 mod p) mod range_size

For k = 2 this is the classical pairwise-independent multiply-mod-prime
construction used by Count-Min / Count-Median / Count-Sketch.  Evaluation is
available both element-wise (``__call__`` on a python int) and vectorised over
numpy index arrays (``hash_array`` / ``hash_all``), which is what makes the
numpy sketching path fast.

The arithmetic is done with python integers when evaluating scalars (exact,
no overflow concerns) and with ``object``-free numpy ``uint64`` arithmetic via
128-bit emulation when evaluating arrays.  Because p < 2^61 and coefficients
are < p, the product a*x can exceed 64 bits; we therefore split operands into
high/low 32-bit halves for the vectorised path.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int

#: The Mersenne prime 2^61 - 1 used as the field size of every hash family.
MERSENNE_PRIME_61 = (1 << 61) - 1

_MASK_32 = (1 << 32) - 1
_MASK_64 = (1 << 64) - 1

# splitmix64 finalizer constants (Steele, Lea & Flood 2014)
_MIX_INCREMENT = 0x9E3779B97F4A7C15
_MIX_MULTIPLIER_1 = 0xBF58476D1CE4E5B9
_MIX_MULTIPLIER_2 = 0x94D049BB133111EB


def _mix_scalar(value: int) -> int:
    """Apply the splitmix64 finalizer (a fixed bijection on 64-bit integers).

    Frequency-vector indices arrive as consecutive integers 0, 1, 2, ...;
    evaluating two independent linear polynomials mod p on consecutive inputs
    leaves them jointly sitting on a 1-D lattice, which for unlucky
    coefficient draws correlates the bucket choice of one hash with the sign
    of another (a classic LCG-style artefact).  Composing the polynomial with
    a *fixed* bijective avalanche permutation keeps every k-wise independence
    guarantee (the coefficients are still uniformly random over GF(p)) while
    destroying that arithmetic structure.
    """
    value = (value + _MIX_INCREMENT) & _MASK_64
    value ^= value >> 30
    value = (value * _MIX_MULTIPLIER_1) & _MASK_64
    value ^= value >> 27
    value = (value * _MIX_MULTIPLIER_2) & _MASK_64
    value ^= value >> 31
    return value


def _mix_array(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finalizer (uint64 arithmetic wraps modulo 2^64)."""
    v = values.astype(np.uint64, copy=True)
    v += np.uint64(_MIX_INCREMENT)
    v ^= v >> np.uint64(30)
    v *= np.uint64(_MIX_MULTIPLIER_1)
    v ^= v >> np.uint64(27)
    v *= np.uint64(_MIX_MULTIPLIER_2)
    v ^= v >> np.uint64(31)
    return v


def _fold61(x: np.ndarray) -> np.ndarray:
    """Exact ``x mod MERSENNE_PRIME_61`` for uint64 ``x``, division-free.

    Uses the Mersenne identity ``2^61 ≡ 1 (mod p)``: writing
    ``x = q·2^61 + r`` gives ``x ≡ q + r``, and ``q + r < p + 9`` for any
    64-bit ``x``, so one conditional subtract completes the reduction.
    Shift/mask/where run at SIMD speed where the ``%`` ufunc (integer
    division) does not — this is what makes on-demand hashing cheap enough
    to replace the precomputed bucket tables.
    """
    p = np.uint64(MERSENNE_PRIME_61)
    folded = (x >> np.uint64(61)) + (x & p)
    # branch-free conditional subtract: folded < 2^62, so when folded < p the
    # wrapped difference folded - p exceeds 2^63 and minimum keeps folded,
    # and when folded >= p the difference is the reduced value
    return np.minimum(folded, folded - p)


def _mulmod_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Compute ``(a * b) mod MERSENNE_PRIME_61`` element-wise without overflow.

    Both inputs must be ``uint64`` arrays with values < 2^61.  The product is
    formed from 32-bit halves and every partial reduction uses the
    division-free :func:`_fold61`; the result is bit-identical to the
    classical ``%``-based reduction.
    """
    a = a.astype(np.uint64, copy=False)
    b = b.astype(np.uint64, copy=False)
    a_hi = a >> np.uint64(32)
    a_lo = a & np.uint64(_MASK_32)
    b_hi = b >> np.uint64(32)
    b_lo = b & np.uint64(_MASK_32)

    # a*b = (a_hi*b_hi << 64) + ((a_hi*b_lo + a_lo*b_hi) << 32) + a_lo*b_lo
    # Each partial product is reduced with the Mersenne fold, using
    # 2^64 ≡ 8 (mod p) for the high term and a 29/32-bit split for the
    # middle term's 2^32 factor.
    lo = a_lo * b_lo  # < 2^64, fits
    mid = a_hi * b_lo + a_lo * b_hi  # < 2^62, fits
    hi = a_hi * b_hi  # < 2^58, fits

    # Contribution of hi: hi * 2^64 ≡ hi * 8 (mod p); hi*8 < 2^61 so one fold
    term_hi = _fold61(hi * np.uint64(8))
    # Contribution of mid: mid * 2^32 (mod p).  Fold mid below p first, then
    # split into top 32 / bottom 29 bits so the << 32 stays inside 64 bits.
    mid_mod = _fold61(mid)
    mid_hi = mid_mod >> np.uint64(29)  # multiplying by 2^32 shifts past bit 61
    mid_lo = mid_mod & np.uint64((1 << 29) - 1)
    term_mid = _fold61(mid_hi + (mid_lo << np.uint64(32)))
    term_lo = _fold61(lo)

    return _fold61(term_hi + term_mid + term_lo)


class KWiseHash:
    """A single hash function drawn from a k-wise independent family.

    Parameters
    ----------
    range_size:
        The size ``s`` of the hash range; outputs lie in ``{0, ..., s-1}``.
    independence:
        The independence parameter ``k`` (degree of the random polynomial plus
        one).  ``k = 2`` gives the pairwise-independent family used throughout
        the paper.
    seed:
        Seed / generator controlling the random coefficients.
    """

    def __init__(
        self,
        range_size: int,
        independence: int = 2,
        seed: RandomSource = None,
    ) -> None:
        self.range_size = require_positive_int(range_size, "range_size")
        self.independence = require_positive_int(independence, "independence")
        rng = as_rng(seed)
        # Leading coefficient non-zero keeps the polynomial degree exactly k-1;
        # pairwise independence holds either way but this matches the textbook
        # construction.
        coeffs = rng.integers(0, MERSENNE_PRIME_61, size=self.independence)
        if self.independence > 1 and coeffs[0] == 0:
            coeffs[0] = 1
        #: Polynomial coefficients, highest degree first.
        self.coefficients: List[int] = [int(c) for c in coeffs]

    def __call__(self, item: int) -> int:
        """Hash a single non-negative integer item into ``[0, range_size)``."""
        if item < 0:
            raise ValueError(f"hash input must be non-negative, got {item}")
        acc = 0
        x = _mix_scalar(int(item)) % MERSENNE_PRIME_61
        for coefficient in self.coefficients:
            acc = (acc * x + coefficient) % MERSENNE_PRIME_61
        return acc % self.range_size

    def hash_array(self, items: Sequence[int]) -> np.ndarray:
        """Vectorised evaluation over an array of non-negative integers."""
        arr = np.asarray(items, dtype=np.uint64)
        mixed = _fold61(_mix_array(arr))
        # Horner evaluation seeded with the leading coefficient (the first
        # iteration of the classical loop is a multiply by zero)
        acc = np.full(arr.shape, np.uint64(self.coefficients[0]))
        for coefficient in self.coefficients[1:]:
            acc = _mulmod_arrays(acc, mixed)
            acc = _fold61(acc + np.uint64(coefficient))
        return (acc % np.uint64(self.range_size)).astype(np.int64)

    def hash_all(self, domain_size: int) -> np.ndarray:
        """Evaluate the hash on every item of ``[0, domain_size)`` at once."""
        domain_size = require_positive_int(domain_size, "domain_size")
        return self.hash_array(np.arange(domain_size, dtype=np.uint64))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KWiseHash(range_size={self.range_size}, "
            f"independence={self.independence})"
        )


class PairwiseHash(KWiseHash):
    """The 2-wise independent special case used by all sketches in the paper."""

    def __init__(self, range_size: int, seed: RandomSource = None) -> None:
        super().__init__(range_size, independence=2, seed=seed)


def hash_matrix(hashes: Sequence[KWiseHash], items) -> np.ndarray:
    """Fused row-stacked evaluation of a whole hash family on a batch of keys.

    Returns the ``(len(hashes), len(items))`` bucket matrix whose row ``r``
    equals ``hashes[r].hash_array(items)``, evaluated in **one** vectorised
    pass: the splitmix64 finalizer runs once for the whole batch (it is
    shared by every row) and the per-row polynomials are evaluated on a
    row-stacked ``(depth, k)`` coefficient matrix with broadcasting.  The
    outputs are bit-identical to the per-row ``hash_array`` path — this is
    what lets the sketch tables compute bucket assignments on demand instead
    of materialising a ``(depth, dimension)`` table at construction.

    All hashes must share ``range_size`` and ``independence`` (they do for
    every table built by :func:`hash_family`).
    """
    if not hashes:
        raise ValueError("hash_matrix needs at least one hash function")
    range_size = hashes[0].range_size
    independence = hashes[0].independence
    for h in hashes[1:]:
        if h.range_size != range_size or h.independence != independence:
            raise ValueError(
                "hash_matrix requires all hashes to share range_size and "
                "independence"
            )
    arr = np.asarray(items, dtype=np.uint64)
    if arr.ndim != 1:
        raise ValueError(f"items must be 1-D, got shape {arr.shape}")
    mixed = _fold61(_mix_array(arr))[None, :]
    coefficients = np.array(
        [h.coefficients for h in hashes], dtype=np.uint64
    )
    # Horner evaluation seeded with each row's leading coefficient (the
    # first iteration of the classical loop is a multiply by zero); the
    # (depth, 1) seed broadcasts through _mulmod_arrays
    acc = coefficients[:, 0][:, None]
    for degree in range(1, independence):
        acc = _mulmod_arrays(acc, mixed)
        acc = _fold61(acc + coefficients[:, degree][:, None])
    # for independence >= 2 this is already full-shape; a degree-0 polynomial
    # (constant hash) still needs the (depth, 1) seed broadcast out
    acc = np.broadcast_to(acc, (len(hashes), arr.size))
    return (acc % np.uint64(range_size)).astype(np.int64)


def hash_family(
    count: int,
    range_size: int,
    independence: int = 2,
    seed: RandomSource = None,
) -> List[KWiseHash]:
    """Draw ``count`` independent hash functions ``h_1, ..., h_count``.

    The functions are mutually independent: each consumes fresh randomness from
    a generator derived from ``seed``.
    """
    count = require_positive_int(count, "count")
    rng = as_rng(seed)
    return [
        KWiseHash(range_size, independence=independence, seed=rng)
        for _ in range(count)
    ]
