"""Hash-function substrate.

The paper (Section 4.4) notes that all its analysis only requires second
moments, so 2-wise independent hash functions suffice for every component:
the bucket-assignment functions ``h : [n] -> [s]`` of the CM/CS matrices and
the sign functions ``r : [n] -> {-1, +1}`` of Count-Sketch.

This package provides multiply-mod-prime k-wise independent families that can
be evaluated both on scalars (streaming updates) and on whole index ranges at
once (vectorised sketching of a full frequency vector).
"""

from repro.hashing.families import (
    MERSENNE_PRIME_61,
    KWiseHash,
    PairwiseHash,
    hash_family,
)
from repro.hashing.signs import SignHash, sign_family

__all__ = [
    "MERSENNE_PRIME_61",
    "KWiseHash",
    "PairwiseHash",
    "hash_family",
    "SignHash",
    "sign_family",
]
