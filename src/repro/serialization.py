"""Versioned binary wire format for portable sketch state.

Every sketch in the library exposes an explicit *state protocol*:

* ``state_dict()`` / ``from_state()`` — the in-memory form: a plain dict
  holding the constructor configuration (including the integer seed, from
  which all hash functions, sign functions and sampling matrices are
  re-derived) plus the mutable state (counter tables, maintained samples,
  running sums, RNG state).
* ``to_bytes()`` / ``from_bytes()`` — the wire form: the state dict encoded
  in the versioned binary format defined here, so sketch state can be
  snapshotted to disk, shipped between processes or machines, and restored
  independently of the constructing process.

Wire format (version 1)
-----------------------
::

    offset  size       field
    0       4          magic  b"RPSK"
    4       2          wire-format version, uint16 little-endian
    6       4          header length H, uint32 little-endian
    10      H          header, UTF-8 JSON (sorted keys)
    10+H    ...        array payloads, concatenated in header order,
                       raw little-endian bytes

The JSON header carries ``kind`` (the registry name of the sketch class),
``state_version`` (bumped when a sketch's state layout changes), ``config``
(constructor arguments), ``scalars`` (named scalar state that counts toward
the sketch's word footprint), ``meta`` (bookkeeping that does not, e.g.
``items_processed`` or the CML-CU generator state) and an ``arrays`` manifest
of ``{name, dtype, shape}`` entries describing the payloads that follow.

The format is *seed-reproducible*: data-independent structure (hash buckets,
signs, sampled coordinate indices, dense Gaussian matrices) is never encoded —
it is regenerated from ``config["seed"]`` on decode, which keeps payloads at
essentially the information-theoretic size of the counters.  Consequently a
sketch must be constructed with an integer seed to be serialized;
:func:`encode_state` rejects generator-seeded sketches.

Word accounting
---------------
:func:`state_word_count` computes the number of 8-byte words of actual sketch
state in a payload (array elements plus counted scalars).  The distributed
layer reconciles this *measured* size against each sketch's declared
``size_in_words()`` and flags disagreements — see
:class:`repro.distributed.network.CommunicationLog`.
"""

from __future__ import annotations

import json
import struct
from contextlib import contextmanager
from typing import Any, Dict, Type

import numpy as np

#: 4-byte magic prefixing every serialized sketch
WIRE_MAGIC = b"RPSK"
#: current wire-format version (the ``uint16`` following the magic)
WIRE_VERSION = 1

_PREAMBLE = struct.Struct("<4sHI")  # magic, version, header length

#: kind -> class; populated by :func:`register_serializable` at import time
_KIND_REGISTRY: Dict[str, Type] = {}


class SerializationError(ValueError):
    """Raised when a payload cannot be encoded or decoded."""


@contextmanager
def reconstruction_errors(context: str = "payload"):
    """Turn reconstruction faults into :class:`SerializationError`.

    A corrupted (but structurally parseable) payload surfaces deep inside
    ``from_state`` as a ``KeyError`` (missing state field), ``IndexError``,
    ``AttributeError`` or ``TypeError`` (a field of the wrong shape being
    used as something it is not).  Every decode entry point wraps the
    reconstruction in this guard so callers see one clean, typed error
    instead of an implementation detail.  ``ValueError`` family errors
    (:class:`SerializationError` itself, config validation) already carry
    user-facing messages and pass through untouched.
    """
    try:
        yield
    except (SerializationError, ValueError):
        raise
    except (KeyError, IndexError, TypeError, AttributeError) as exc:
        raise SerializationError(
            f"corrupt {context}: reconstruction failed "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def is_serializable_seed(seed: Any) -> bool:
    """Whether ``seed`` lets a sketch's structure be reproduced elsewhere."""
    return isinstance(seed, (int, np.integer)) and not isinstance(seed, bool)


def check_reconstructible(state: Dict[str, Any]) -> None:
    """Reject states whose hash structure cannot be re-derived on restore.

    Reconstruction regenerates all data-independent structure (hash buckets,
    signs, sampled indices, dense matrices) from ``config["seed"]``; with no
    integer seed, a restored sketch would silently pair the recorded counters
    with freshly drawn, different structure.  Fail loudly instead.
    """
    if not is_serializable_seed(state.get("config", {}).get("seed")):
        raise ValueError(
            f"state of kind {state.get('kind')!r} was captured from a sketch "
            "without an explicit integer seed; its hash structure cannot be "
            "reproduced, so it cannot be restored (or copied through the "
            "state protocol) — construct the sketch with an integer seed"
        )


def check_state_version(state: Dict[str, Any], klass: Type) -> None:
    """Reject snapshots whose per-sketch state layout differs from ours.

    Any mismatch — older or newer — fails loudly: a bumped ``state_version``
    means the meaning of the arrays/scalars changed, and loading across the
    bump would silently misinterpret them.
    """
    recorded = int(state.get("state_version", 1))
    supported = int(getattr(klass, "state_version", 1))
    if recorded != supported:
        raise ValueError(
            f"state of kind {state.get('kind')!r} has state_version "
            f"{recorded}, but {klass.__name__} reads state_version "
            f"{supported}; re-snapshot the sketch with a matching build"
        )


class StateProtocolMixin:
    """Wire-format plumbing shared by everything with a ``state_dict``.

    Hosts the four derived operations — :meth:`to_bytes`,
    :meth:`from_bytes`, :meth:`size_in_bytes` and :meth:`copy` — on top of
    the two primitives the class itself provides (``state_dict()`` /
    ``from_state()``), so :class:`repro.sketches.base.Sketch` and the dense
    :class:`repro.compressive.gaussian.GaussianSketch` share one audited
    implementation (including the integer-seed validation).
    """

    def to_bytes(self) -> bytes:
        """Encode the state in the versioned binary wire format.

        Requires an integer ``seed`` (structure is regenerated from it on
        decode); raises ``ValueError`` for unseeded or generator-seeded
        sketches, whose structure cannot be reproduced elsewhere.
        """
        if not is_serializable_seed(getattr(self, "seed", None)):
            raise ValueError(
                f"{type(self).__name__} was constructed with seed "
                f"{getattr(self, 'seed', None)!r}; only sketches built from "
                "an explicit integer seed can be serialized (the wire format "
                "regenerates hash functions and matrices from the seed)"
            )
        return encode_state(self.state_dict())

    @classmethod
    def from_bytes(cls, data: bytes):
        """Decode a wire payload produced by :meth:`to_bytes`.

        Corrupt payloads raise :class:`SerializationError`, never a raw
        ``struct.error``/``KeyError`` from the decoding internals.
        """
        state = decode_state(data)
        with reconstruction_errors(f"{cls.__name__} payload"):
            return cls.from_state(state)

    def size_in_bytes(self) -> int:
        """Exact size of this sketch's serialized wire payload."""
        return len(self.to_bytes())

    def copy(self):
        """Deep copy through the state protocol (same structure, copied state).

        Requires an integer seed, like every reconstruction: restoring state
        against freshly drawn structure would silently corrupt the copy.
        """
        return type(self).from_state(self.state_dict())


def register_serializable(cls: Type, kind: str = None) -> Type:
    """Register ``cls`` under ``kind`` (default: its ``name`` attribute).

    The registered class must expose a ``from_state(state_dict)`` classmethod;
    :func:`sketch_from_state` dispatches to it.  Usable as a decorator.
    """
    key = kind if kind is not None else getattr(cls, "name", None)
    if not key:
        raise ValueError(f"{cls.__name__} has no 'name' attribute to register under")
    _KIND_REGISTRY[key] = cls
    return cls


def lookup_kind(kind: str) -> Type:
    """Return the class registered under ``kind``, importing defaults first."""
    _ensure_default_kinds()
    try:
        return _KIND_REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_KIND_REGISTRY))
        raise SerializationError(
            f"unknown sketch kind {kind!r}; registered kinds: {known}"
        ) from None


def registered_kinds() -> list:
    """Names of every registered serializable kind (sorted)."""
    _ensure_default_kinds()
    return sorted(_KIND_REGISTRY)


def _ensure_default_kinds() -> None:
    """Import the packages whose classes self-register with this module."""
    import repro.compressive  # noqa: F401  (registers GaussianSketch)
    import repro.core  # noqa: F401  (registers the bias-aware sketches)
    import repro.sketches.registry  # noqa: F401  (registers the baselines)


# --------------------------------------------------------------------------- #
# encoding
# --------------------------------------------------------------------------- #
def _json_safe(value: Any, context: str) -> Any:
    """Validate/normalise header values to deterministic JSON-able types."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v, context) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v, context) for k, v in value.items()}
    raise SerializationError(
        f"{context} contains a non-serializable value of type "
        f"{type(value).__name__}; sketches must be constructed with an "
        "integer seed (not a numpy Generator) to be serialized"
    )


def encode_state(state: Dict[str, Any]) -> bytes:
    """Encode a sketch state dict into the versioned binary wire format."""
    arrays = state.get("arrays", {})
    manifest = []
    payloads = []
    for name, array in arrays.items():
        arr = np.ascontiguousarray(array)
        little = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
        manifest.append(
            {"name": str(name), "dtype": little.dtype.str, "shape": list(arr.shape)}
        )
        payloads.append(little.tobytes())
    header = {
        "kind": state["kind"],
        "state_version": int(state.get("state_version", 1)),
        "config": _json_safe(state.get("config", {}), "config"),
        "scalars": _json_safe(state.get("scalars", {}), "scalars"),
        "meta": _json_safe(state.get("meta", {}), "meta"),
        "arrays": manifest,
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    parts = [_PREAMBLE.pack(WIRE_MAGIC, WIRE_VERSION, len(header_bytes)), header_bytes]
    parts.extend(payloads)
    return b"".join(parts)


# --------------------------------------------------------------------------- #
# decoding
# --------------------------------------------------------------------------- #
def _decode_header(data: bytes) -> tuple:
    if len(data) < _PREAMBLE.size:
        raise SerializationError(
            f"payload of {len(data)} bytes is too short to be a serialized sketch"
        )
    magic, version, header_len = _PREAMBLE.unpack_from(data, 0)
    if magic != WIRE_MAGIC:
        raise SerializationError(
            f"bad magic {magic!r}; not a serialized sketch payload"
        )
    if version != WIRE_VERSION:
        raise SerializationError(
            f"unsupported wire-format version {version}; this build reads "
            f"version {WIRE_VERSION} — re-save the sketch with a matching "
            "build"
        )
    start = _PREAMBLE.size
    end = start + header_len
    if len(data) < end:
        raise SerializationError(
            f"truncated payload (wire version {version}): header is incomplete"
        )
    try:
        header = json.loads(data[start:end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # name the version the payload claims, so a reader holding an
        # incompatible minor revision sees which build wrote it instead of
        # a bare "corrupt payload" message
        raise SerializationError(
            f"corrupt payload header in a payload written as wire version "
            f"{version}: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise SerializationError(
            f"corrupt payload header: expected a JSON object, got "
            f"{type(header).__name__}"
        )
    kind = header.get("kind")
    if not isinstance(kind, str) or not kind:
        raise SerializationError(
            f"corrupt payload header: missing or invalid sketch kind "
            f"{kind!r}"
        )
    return header, end


def payload_header(data: bytes) -> Dict[str, Any]:
    """The validated JSON header of a wire payload, without its arrays.

    Cheap metadata access for catalogs and listings: the header carries
    ``kind``, ``state_version``, ``config``, ``scalars``, ``meta`` and the
    array manifest, which is everything an index needs — decoding the
    (potentially large) counter arrays is skipped entirely.
    """
    header, _ = _decode_header(data)
    return header


def _manifest_entry(entry: Any) -> tuple:
    """Validate one array-manifest entry; returns ``(name, dtype, shape)``."""
    if not isinstance(entry, dict):
        raise SerializationError(
            f"corrupt payload: array manifest entry is not an object "
            f"({entry!r})"
        )
    missing = [key for key in ("name", "dtype", "shape") if key not in entry]
    if missing:
        raise SerializationError(
            f"corrupt payload: array manifest entry {entry.get('name')!r} "
            f"is missing {missing}"
        )
    try:
        dtype = np.dtype(entry["dtype"])
    except TypeError as exc:
        raise SerializationError(
            f"corrupt payload: array {entry['name']!r} declares invalid "
            f"dtype {entry['dtype']!r}"
        ) from exc
    try:
        shape = tuple(int(s) for s in entry["shape"])
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"corrupt payload: array {entry['name']!r} declares invalid "
            f"shape {entry['shape']!r}"
        ) from exc
    if any(s < 0 for s in shape):
        raise SerializationError(
            f"corrupt payload: array {entry['name']!r} declares negative "
            f"shape {shape}"
        )
    return entry["name"], dtype, shape


def decode_state(data: bytes) -> Dict[str, Any]:
    """Decode a wire payload back into a sketch state dict."""
    header, offset = _decode_header(data)
    manifest = header.get("arrays", [])
    if not isinstance(manifest, list):
        raise SerializationError(
            f"corrupt payload: array manifest must be a list, got "
            f"{type(manifest).__name__}"
        )
    arrays: Dict[str, np.ndarray] = {}
    for raw_entry in manifest:
        name, dtype, shape = _manifest_entry(raw_entry)
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        chunk = data[offset:offset + nbytes]
        if len(chunk) != nbytes:
            raise SerializationError(
                f"truncated payload: array {name!r} expects "
                f"{nbytes} bytes, got {len(chunk)}"
            )
        arrays[name] = (
            np.frombuffer(chunk, dtype=dtype).reshape(shape).astype(
                dtype.newbyteorder("="), copy=True
            )
        )
        offset += nbytes
    return {
        "kind": header["kind"],
        "state_version": int(header.get("state_version", 1)),
        "config": header.get("config", {}),
        "scalars": header.get("scalars", {}),
        "meta": header.get("meta", {}),
        "arrays": arrays,
    }


# --------------------------------------------------------------------------- #
# dispatch
# --------------------------------------------------------------------------- #
def sketch_from_state(state: Dict[str, Any]):
    """Reconstruct a sketch from a state dict, dispatching on ``state["kind"]``."""
    klass = lookup_kind(state["kind"])
    with reconstruction_errors(f"{state['kind']!r} state"):
        return klass.from_state(state)


def sketch_from_bytes(data: bytes):
    """Reconstruct a sketch from a wire payload (any registered kind)."""
    return sketch_from_state(decode_state(data))


# --------------------------------------------------------------------------- #
# word accounting
# --------------------------------------------------------------------------- #
def state_word_count(state: Dict[str, Any]) -> int:
    """Number of 8-byte state words a payload actually carries.

    Counts every element of every state array plus every counted scalar;
    ``meta`` entries (bookkeeping such as ``items_processed`` or RNG state)
    are excluded.  This is the measured quantity the distributed layer
    reconciles against each sketch's declared ``size_in_words()``.
    """
    words = len(state.get("scalars", {}))
    for array in state.get("arrays", {}).values():
        words += int(np.asarray(array).size)
    return words


def payload_word_count(data: bytes) -> int:
    """:func:`state_word_count` computed from a wire payload's header alone."""
    header, _ = _decode_header(data)
    words = len(header.get("scalars", {}))
    for entry in header.get("arrays", []):
        words += int(np.prod([int(s) for s in entry["shape"]], dtype=np.int64))
    return words
