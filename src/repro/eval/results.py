"""Plain-text result tables: the series behind each figure.

The paper presents its results as plots of (sketch size → error) per
algorithm.  :class:`ResultTable` holds the same information as rows and can
render it as an aligned text table, group it by algorithm into series, or
export it as CSV text — which is what the benchmark harness prints and what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class ResultRow:
    """One measurement: an algorithm at a given configuration on a dataset."""

    dataset: str
    algorithm: str
    width: int
    depth: int
    sketch_words: int
    average_error: float
    maximum_error: float
    update_seconds: Optional[float] = None
    query_seconds: Optional[float] = None
    note: str = ""


class ResultTable:
    """An ordered collection of :class:`ResultRow` with text rendering."""

    def __init__(self, title: str = "", rows: Iterable[ResultRow] = ()) -> None:
        self.title = title
        self.rows: List[ResultRow] = list(rows)

    def add(self, row: ResultRow) -> None:
        """Append one measurement."""
        self.rows.append(row)

    def extend(self, rows: Iterable[ResultRow]) -> None:
        """Append many measurements."""
        self.rows.extend(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # ------------------------------------------------------------------ #
    # selection / grouping
    # ------------------------------------------------------------------ #
    def filter(self, **criteria) -> "ResultTable":
        """Rows whose fields equal the given values, e.g. ``filter(algorithm="l2_sr")``."""
        valid = {f.name for f in fields(ResultRow)}
        unknown = set(criteria) - valid
        if unknown:
            raise ValueError(f"unknown result fields: {sorted(unknown)}")
        selected = [
            row
            for row in self.rows
            if all(getattr(row, key) == value for key, value in criteria.items())
        ]
        return ResultTable(title=self.title, rows=selected)

    def algorithms(self) -> List[str]:
        """Distinct algorithm names, in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.algorithm, None)
        return list(seen)

    def series(self, metric: str = "average_error") -> Dict[str, List[tuple]]:
        """Per-algorithm series of ``(width, metric)`` pairs — a figure's curves."""
        valid = {f.name for f in fields(ResultRow)}
        if metric not in valid:
            raise ValueError(f"unknown metric {metric!r}")
        curves: Dict[str, List[tuple]] = {}
        for row in self.rows:
            curves.setdefault(row.algorithm, []).append(
                (row.width, getattr(row, metric))
            )
        for points in curves.values():
            points.sort()
        return curves

    def best_algorithm(self, metric: str = "average_error") -> str:
        """The algorithm with the lowest total value of ``metric`` across rows."""
        if not self.rows:
            raise ValueError("result table is empty")
        totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for row in self.rows:
            totals[row.algorithm] = totals.get(row.algorithm, 0.0) + getattr(row, metric)
            counts[row.algorithm] = counts.get(row.algorithm, 0) + 1
        return min(totals, key=lambda name: totals[name] / counts[name])

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def to_text(self, metrics: Sequence[str] = ("average_error", "maximum_error")) -> str:
        """Render the table as aligned plain text (what the benches print)."""
        header = ["dataset", "algorithm", "width", "depth", "words"] + list(metrics)
        lines: List[List[str]] = [header]
        for row in self.rows:
            formatted = [
                row.dataset,
                row.algorithm,
                str(row.width),
                str(row.depth),
                str(row.sketch_words),
            ]
            for metric in metrics:
                value = getattr(row, metric)
                formatted.append("-" if value is None else f"{value:.6g}")
            lines.append(formatted)

        widths = [max(len(line[col]) for line in lines) for col in range(len(header))]
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        for line_number, line in enumerate(lines):
            out.write(
                "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(line)).rstrip()
            )
            out.write("\n")
            if line_number == 0:
                out.write("  ".join("-" * w for w in widths) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Render the table as CSV text."""
        names = [f.name for f in fields(ResultRow)]
        out = io.StringIO()
        out.write(",".join(names) + "\n")
        for row in self.rows:
            values = []
            for name in names:
                value = getattr(row, name)
                values.append("" if value is None else str(value))
            out.write(",".join(values) + "\n")
        return out.getvalue()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultTable(title={self.title!r}, rows={len(self.rows)})"
