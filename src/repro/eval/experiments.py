"""Registry of the paper's experiments as runnable configurations.

Each entry describes one figure of Section 5 — which dataset (or simulated
substitute), which algorithm suite, and which parameter sweep — scaled to
laptop size.  The benchmark modules and the command-line interface
(:mod:`repro.cli`) both resolve experiments from here, so the definition of
"Figure 2" lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.hudong import simulated_hudong
from repro.data.registry import load_dataset
from repro.eval.harness import depth_sweep, streaming_comparison, width_sweep
from repro.eval.results import ResultTable
from repro.sketches.registry import mean_heuristic_suite, paper_reference_suite
from repro.streaming.generators import stream_from_items
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible experiment (one figure of the paper)."""

    #: experiment id, e.g. ``"fig2"``
    name: str
    #: the paper figure it reproduces
    figure: str
    #: one-line description
    description: str
    #: dataset registry name (``"hudong_stream"`` marks the streaming run)
    dataset: str
    #: extra dataset keyword arguments
    dataset_kwargs: Dict[str, object] = field(default_factory=dict)
    #: algorithm suite: ``"paper"`` or ``"mean"``
    suite: str = "paper"
    #: sweep kind: ``"width"``, ``"depth"`` or ``"streaming"``
    sweep: str = "width"
    #: widths for width sweeps / streaming runs
    widths: Tuple[int, ...] = (512, 1_024, 2_048)
    #: depths for depth sweeps
    depths: Tuple[int, ...] = (1, 3, 5, 7, 9)
    #: fixed depth for width sweeps / fixed width for depth sweeps
    depth: int = 9
    width: int = 2_048


_EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> None:
    _EXPERIMENTS[spec.name] = spec


_register(ExperimentSpec(
    name="fig1_b100", figure="Figure 1a-1b",
    description="Gaussian N(100, 15^2): accuracy vs sketch width",
    dataset="gaussian",
    dataset_kwargs={"dimension": 40_000, "bias": 100.0, "sigma": 15.0},
))
_register(ExperimentSpec(
    name="fig1_b500", figure="Figure 1c-1d",
    description="Gaussian N(500, 15^2): accuracy vs sketch width",
    dataset="gaussian",
    dataset_kwargs={"dimension": 40_000, "bias": 500.0, "sigma": 15.0},
))
_register(ExperimentSpec(
    name="fig2", figure="Figure 2",
    description="Wiki pageviews-per-second substitute",
    dataset="wiki", dataset_kwargs={"dimension": 40_000},
))
_register(ExperimentSpec(
    name="fig3", figure="Figure 3",
    description="WorldCup requests-per-second substitute",
    dataset="worldcup", dataset_kwargs={"dimension": 43_200},
))
_register(ExperimentSpec(
    name="fig4", figure="Figure 4",
    description="Higgs kinematic-feature substitute",
    dataset="higgs", dataset_kwargs={"dimension": 50_000},
))
_register(ExperimentSpec(
    name="fig5", figure="Figure 5",
    description="Meme phrase-length substitute",
    dataset="meme", dataset_kwargs={"dimension": 50_000},
))
_register(ExperimentSpec(
    name="fig6", figure="Figure 6",
    description="Hudong edge stream substitute: streaming error and timing",
    dataset="hudong_stream",
    dataset_kwargs={"dimension": 20_000, "edges": 150_000},
    sweep="streaming", width=2_048,
))
_register(ExperimentSpec(
    name="fig7", figure="Figure 7",
    description="Effect of the sketch depth at fixed width (Higgs substitute)",
    dataset="higgs", dataset_kwargs={"dimension": 50_000},
    sweep="depth", width=2_048,
))
_register(ExperimentSpec(
    name="fig8_clean", figure="Figure 8a-8b",
    description="Gaussian-2 without shifted entries: mean heuristics hold up",
    dataset="gaussian2", dataset_kwargs={"dimension": 40_000},
    suite="mean",
))
_register(ExperimentSpec(
    name="fig8_shifted", figure="Figure 8c-8d",
    description="Gaussian-2 with shifted entries: mean heuristics break",
    dataset="gaussian2",
    dataset_kwargs={"dimension": 40_000, "shifted_entries": 40,
                    "shift": 100_000.0},
    suite="mean",
))
_register(ExperimentSpec(
    name="fig9", figure="Figure 9",
    description="Wiki substitute: mean heuristics vs bias-aware sketches",
    dataset="wiki", dataset_kwargs={"dimension": 40_000},
    suite="mean",
))


def available_experiments() -> List[str]:
    """Names of all registered experiments, deterministically sorted.

    Experiment ids are chosen so that lexicographic order is figure order,
    and sorting keeps CLI output and docs stable across interpreter runs.
    """
    return sorted(_EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment, raising ``KeyError`` with the known names."""
    if name not in _EXPERIMENTS:
        known = ", ".join(available_experiments())
        raise KeyError(f"unknown experiment {name!r}; available: {known}")
    return _EXPERIMENTS[name]


def run_experiment(
    name: str,
    seed: RandomSource = 2017,
    widths: Optional[Sequence[int]] = None,
    depth: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> ResultTable:
    """Run one registered experiment and return its result table.

    ``batch_size`` applies to streaming experiments only: it replays the
    stream through the sketches' vectorised ``update_batch`` path in chunks
    of that many updates instead of update-at-a-time (see
    :func:`repro.eval.harness.streaming_comparison`).  Sweep experiments
    ingest whole vectors and ignore it.
    """
    spec = get_experiment(name)
    algorithms = (
        paper_reference_suite() if spec.suite == "paper" else mean_heuristic_suite()
    )

    if spec.sweep == "streaming":
        stream_data = simulated_hudong(seed=seed, **spec.dataset_kwargs)
        stream = stream_from_items(stream_data.sources, stream_data.dimension)
        return streaming_comparison(
            stream,
            algorithms=algorithms,
            width=spec.width,
            depth=depth if depth is not None else spec.depth,
            seed=seed,
            dataset_name=spec.dataset,
            title=f"{spec.figure}: {spec.description}",
            batch_size=batch_size,
        )

    dataset = load_dataset(spec.dataset, seed=seed, **spec.dataset_kwargs)
    if spec.sweep == "depth":
        return depth_sweep(
            dataset,
            depths=spec.depths,
            algorithms=algorithms,
            width=spec.width,
            seed=seed,
            title=f"{spec.figure}: {spec.description}",
        )
    return width_sweep(
        dataset,
        widths=list(widths) if widths is not None else list(spec.widths),
        algorithms=algorithms,
        depth=depth if depth is not None else spec.depth,
        seed=seed,
        title=f"{spec.figure}: {spec.description}",
    )
