"""Small wall-clock timing helpers used by the streaming comparison."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock timing of a repeated operation."""

    total_seconds: float
    repetitions: int

    @property
    def seconds_per_call(self) -> float:
        """Average seconds per repetition."""
        return self.total_seconds / max(self.repetitions, 1)


def time_callable(operation: Callable[[], None], repetitions: int = 1) -> TimingResult:
    """Time ``repetitions`` calls of a zero-argument callable."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    start = time.perf_counter()
    for _ in range(repetitions):
        operation()
    elapsed = time.perf_counter() - start
    return TimingResult(total_seconds=elapsed, repetitions=repetitions)
