"""Recovery-quality metrics.

The paper's evaluation (Section 5.1, "Measurements") reports two metrics for
point query: the **average error** ``1/n·‖x - x̂‖_1`` and the **maximum
error** ``‖x - x̂‖_∞``.  Both are provided here, along with a few auxiliary
metrics used by the extra ablation benches and the tests.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.utils.validation import ensure_1d_float_array


def _check_pair(truth, estimate):
    x = ensure_1d_float_array(truth, "truth")
    x_hat = ensure_1d_float_array(estimate, "estimate")
    if x.size != x_hat.size:
        raise ValueError(
            f"truth and estimate must have the same dimension, got "
            f"{x.size} and {x_hat.size}"
        )
    return x, x_hat


def average_error(truth, estimate) -> float:
    """The paper's average error: ``1/n · ‖x - x̂‖_1``."""
    x, x_hat = _check_pair(truth, estimate)
    return float(np.mean(np.abs(x - x_hat)))


def maximum_error(truth, estimate) -> float:
    """The paper's maximum error: ``‖x - x̂‖_∞``."""
    x, x_hat = _check_pair(truth, estimate)
    return float(np.max(np.abs(x - x_hat)))


def rmse(truth, estimate) -> float:
    """Root-mean-square error ``‖x - x̂‖_2 / √n``."""
    x, x_hat = _check_pair(truth, estimate)
    return float(np.sqrt(np.mean((x - x_hat) ** 2)))


def relative_average_error(truth, estimate) -> float:
    """Average error normalised by the average magnitude of the true vector."""
    x, x_hat = _check_pair(truth, estimate)
    denominator = float(np.mean(np.abs(x)))
    if denominator == 0.0:
        return 0.0 if np.allclose(x, x_hat) else float("inf")
    return average_error(x, x_hat) / denominator


def quantile_error(truth, estimate, q: float = 0.99) -> float:
    """The q-quantile of the per-coordinate absolute errors."""
    x, x_hat = _check_pair(truth, estimate)
    q = float(q)
    if not (0.0 <= q <= 1.0):
        raise ValueError(f"q must lie in [0, 1], got {q}")
    return float(np.quantile(np.abs(x - x_hat), q))


def error_profile(truth, estimate) -> Dict[str, float]:
    """All metrics at once — handy for result tables and EXPERIMENTS.md."""
    return {
        "average_error": average_error(truth, estimate),
        "maximum_error": maximum_error(truth, estimate),
        "rmse": rmse(truth, estimate),
        "relative_average_error": relative_average_error(truth, estimate),
        "p99_error": quantile_error(truth, estimate, 0.99),
    }
