"""Evaluation harness: metrics, sweeps and result tables.

This package produces the numbers behind every figure of the paper's Section 5:

* :mod:`repro.eval.metrics` — the two paper metrics (average error
  ``1/n·‖x - x̂‖_1`` and maximum error ``‖x - x̂‖_∞``) plus auxiliary ones;
* :mod:`repro.eval.harness` — sketch-size sweeps (Figures 1-5, 8, 9), depth
  sweeps (Figure 7) and streaming runs (Figure 6);
* :mod:`repro.eval.results` — plain-text result tables (the series that the
  paper plots);
* :mod:`repro.eval.timing` — wall-clock helpers for the update/query timing
  comparison.
"""

from repro.eval.metrics import (
    average_error,
    error_profile,
    maximum_error,
    quantile_error,
    relative_average_error,
    rmse,
)
from repro.eval.harness import (
    depth_sweep,
    evaluate_algorithms,
    streaming_comparison,
    width_sweep,
)
from repro.eval.results import ResultRow, ResultTable
from repro.eval.timing import TimingResult, time_callable
from repro.eval.plots import ascii_series_plot, plot_result_table
from repro.eval.experiments import (
    ExperimentSpec,
    available_experiments,
    get_experiment,
    run_experiment,
)

__all__ = [
    "ascii_series_plot",
    "plot_result_table",
    "ExperimentSpec",
    "available_experiments",
    "get_experiment",
    "run_experiment",
    "average_error",
    "error_profile",
    "maximum_error",
    "quantile_error",
    "relative_average_error",
    "rmse",
    "depth_sweep",
    "evaluate_algorithms",
    "streaming_comparison",
    "width_sweep",
    "ResultRow",
    "ResultTable",
    "TimingResult",
    "time_callable",
]
