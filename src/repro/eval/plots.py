"""ASCII rendering of result series.

The paper presents its results as log-scale line plots.  This module renders
the same series as terminal-friendly ASCII charts so that figures can be
eyeballed straight from a benchmark run or a CI log, with no plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.results import ResultTable

_MARKERS = "ox+*#@%&"


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1_000 or abs(value) < 0.01:
        return f"{value:.2e}"
    return f"{value:.3g}"


def ascii_series_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    log_y: bool = True,
    title: str = "",
    x_label: str = "sketch width",
    y_label: str = "error",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII scatter/line chart."""
    if not series:
        raise ValueError("series must contain at least one curve")
    points = [(x, y) for curve in series.values() for x, y in curve]
    if not points:
        raise ValueError("series must contain at least one point")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y:
        positive = [y for y in ys if y > 0]
        if not positive:
            log_y = False
    y_transform = (lambda v: math.log10(v)) if log_y else (lambda v: v)

    x_low, x_high = min(xs), max(xs)
    y_values = [y_transform(max(y, 1e-300)) for y in ys] if log_y else ys
    y_low, y_high = min(y_values), max(y_values)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for curve_number, (label, curve) in enumerate(series.items()):
        marker = _MARKERS[curve_number % len(_MARKERS)]
        for x, y in curve:
            column = int((x - x_low) / x_span * (width - 1))
            value = y_transform(max(y, 1e-300)) if log_y else y
            row = int((value - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    y_high_label = _format_value(10 ** y_high if log_y else y_high)
    y_low_label = _format_value(10 ** y_low if log_y else y_low)
    axis_width = max(len(y_high_label), len(y_low_label))
    for row_number, row in enumerate(grid):
        if row_number == 0:
            prefix = y_high_label.rjust(axis_width)
        elif row_number == height - 1:
            prefix = y_low_label.rjust(axis_width)
        else:
            prefix = " " * axis_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * axis_width + " +" + "-" * width)
    lines.append(
        " " * axis_width
        + f"  {_format_value(x_low)}{' ' * max(1, width - 20)}{_format_value(x_high)}"
    )
    lines.append(" " * axis_width + f"  x: {x_label}"
                 + (f"   y: {y_label} (log scale)" if log_y else f"   y: {y_label}"))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * axis_width + f"  {legend}")
    return "\n".join(lines)


def plot_result_table(
    table: ResultTable,
    metric: str = "average_error",
    algorithms: Optional[Sequence[str]] = None,
    **kwargs,
) -> str:
    """Render one metric of a result table as an ASCII chart."""
    series = table.series(metric)
    if algorithms is not None:
        missing = [name for name in algorithms if name not in series]
        if missing:
            raise ValueError(f"algorithms not present in the table: {missing}")
        series = {name: series[name] for name in algorithms}
    kwargs.setdefault("title", table.title or metric)
    kwargs.setdefault("y_label", metric)
    return ascii_series_plot(series, **kwargs)
