"""Experiment harness: sweeps over sketch size, depth, and streaming runs.

The harness reproduces the paper's experimental protocol (Section 5.1):

* every algorithm is given the same total space budget — the bias-aware
  sketches use ``d`` data rows plus one width-``s`` bias structure, so the
  baselines are given ``d + 1`` rows of width ``s`` ("for CM, CS, CM-CU and
  CML-CU we set d = 10 so that all algorithms use 10·s words");
* accuracy is measured as the average and maximum point-query error of the
  fully recovered vector against the true vector;
* the sketch-size sweeps vary ``s`` with ``d`` fixed (Figures 1-5, 8, 9), the
  depth sweep fixes ``s`` and varies ``d`` (Figure 7), and the streaming
  comparison replays an update stream and measures per-update / per-query
  wall-clock cost (Figure 6).
"""

from __future__ import annotations

import zlib
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.api import SketchConfig, SketchSession
from repro.data.dataset import Dataset
from repro.eval.metrics import average_error, maximum_error
from repro.eval.results import ResultRow, ResultTable
from repro.sketches.registry import get_spec, paper_reference_suite
from repro.streaming.runner import StreamRunner
from repro.streaming.stream import UpdateStream
from repro.utils.rng import RandomSource, derive_seed
from repro.utils.validation import ensure_1d_float_array, require_positive_int


def _dataset_vector_and_name(dataset) -> tuple:
    if isinstance(dataset, Dataset):
        return dataset.vector, dataset.name
    return ensure_1d_float_array(dataset, "dataset"), "vector"


def _algorithm_salt(algorithm: str) -> int:
    """A stable (process-independent) integer salt derived from the name."""
    return zlib.crc32(algorithm.encode("utf-8")) % 997


def _effective_depth(algorithm: str, depth: int) -> int:
    """The paper's space convention: baselines get one extra row.

    The bias-aware sketches spend ``d`` rows on data plus one width-``s``
    structure on the bias; the baselines spend all ``d + 1`` rows on data so
    every algorithm uses ``(d + 1)·s`` counter words.
    """
    spec = get_spec(algorithm)
    return depth if spec.bias_aware else depth + 1


def evaluate_algorithms(
    dataset,
    algorithms: Optional[Sequence[str]] = None,
    width: int = 2_000,
    depth: int = 9,
    seed: RandomSource = 0,
    repetitions: int = 1,
    title: str = "",
) -> ResultTable:
    """Sketch + recover the dataset with every algorithm at one configuration.

    Parameters
    ----------
    dataset:
        A :class:`~repro.data.dataset.Dataset` or a raw frequency vector.
    algorithms:
        Registry names; defaults to the paper's six-algorithm suite.
    width:
        Buckets per row ``s``.
    depth:
        Data rows ``d`` for the bias-aware sketches; baselines get ``d + 1``.
    seed:
        Base seed; repetitions derive child seeds from it.
    repetitions:
        Number of independent hash draws to average the errors over.
    """
    vector, dataset_name = _dataset_vector_and_name(dataset)
    if algorithms is None:
        algorithms = paper_reference_suite()
    width = require_positive_int(width, "width")
    depth = require_positive_int(depth, "depth")
    repetitions = require_positive_int(repetitions, "repetitions")

    table = ResultTable(title=title or f"point query on {dataset_name}")
    for algorithm in algorithms:
        effective_depth = _effective_depth(algorithm, depth)
        averages = []
        maxima = []
        words = 0
        for repetition in range(repetitions):
            run_seed = derive_seed(seed, repetition * 1_000 + _algorithm_salt(algorithm))
            session = SketchSession.from_config(
                SketchConfig(
                    algorithm,
                    dimension=vector.size,
                    width=width,
                    depth=effective_depth,
                    seed=run_seed,
                )
            )
            session.ingest(vector)
            recovered = session.recover()
            averages.append(average_error(vector, recovered))
            maxima.append(maximum_error(vector, recovered))
            words = session.size_in_words()
        table.add(
            ResultRow(
                dataset=dataset_name,
                algorithm=algorithm,
                width=width,
                depth=effective_depth,
                sketch_words=words,
                average_error=float(np.mean(averages)),
                maximum_error=float(np.mean(maxima)),
            )
        )
    return table


def width_sweep(
    dataset,
    widths: Iterable[int],
    algorithms: Optional[Sequence[str]] = None,
    depth: int = 9,
    seed: RandomSource = 0,
    repetitions: int = 1,
    title: str = "",
) -> ResultTable:
    """Sweep the sketch width ``s`` (the x-axis of Figures 1-5, 8, 9)."""
    vector, dataset_name = _dataset_vector_and_name(dataset)
    table = ResultTable(title=title or f"width sweep on {dataset_name}")
    for width in widths:
        partial = evaluate_algorithms(
            dataset,
            algorithms=algorithms,
            width=int(width),
            depth=depth,
            seed=seed,
            repetitions=repetitions,
        )
        table.extend(partial.rows)
    return table


def depth_sweep(
    dataset,
    depths: Iterable[int],
    algorithms: Optional[Sequence[str]] = None,
    width: int = 2_000,
    seed: RandomSource = 0,
    repetitions: int = 1,
    title: str = "",
) -> ResultTable:
    """Sweep the sketch depth ``d`` at fixed width (Figure 7).

    As in the paper, the depth reported for the bias-aware sketches is ``d``
    and the baselines run with ``d + 1`` rows.
    """
    vector, dataset_name = _dataset_vector_and_name(dataset)
    table = ResultTable(title=title or f"depth sweep on {dataset_name}")
    for depth in depths:
        partial = evaluate_algorithms(
            dataset,
            algorithms=algorithms,
            width=width,
            depth=int(depth),
            seed=seed,
            repetitions=repetitions,
        )
        table.extend(partial.rows)
    return table


def streaming_comparison(
    stream: UpdateStream,
    algorithms: Optional[Sequence[str]] = None,
    width: int = 2_000,
    depth: int = 9,
    query_count: int = 1_000,
    seed: RandomSource = 0,
    dataset_name: str = "stream",
    title: str = "",
    batch_size: Optional[int] = None,
) -> ResultTable:
    """Replay an update stream into every algorithm and record error + timing.

    This is the Figure 6 protocol: per-update cost, per-query cost, and the
    recovery errors of the final state.  The streaming variants of the
    bias-aware sketches are substituted automatically (``l1_sr`` →
    ``l1_sr_streaming``, ``l2_sr`` → ``l2_sr_streaming``) since those are what
    one would deploy on a stream.

    ``batch_size`` selects the replay mode: ``None`` replays update-at-a-time
    (the paper's streaming model, whose per-update cost Figure 6 reports);
    an integer replays the stream through the sketches' vectorised
    ``update_batch`` path in chunks of that many updates, which preserves the
    final state but runs at numpy speed.
    """
    if algorithms is None:
        algorithms = paper_reference_suite()
    streaming_substitutes = {"l1_sr": "l1_sr_streaming", "l2_sr": "l2_sr_streaming"}

    runner = StreamRunner(stream)
    table = ResultTable(title=title or f"streaming comparison on {dataset_name}")
    for algorithm in algorithms:
        run_algorithm = streaming_substitutes.get(algorithm, algorithm)
        effective_depth = _effective_depth(run_algorithm, depth)
        run_seed = derive_seed(seed, _algorithm_salt(run_algorithm))
        sketch = SketchConfig(
            run_algorithm,
            dimension=stream.dimension,
            width=width,
            depth=effective_depth,
            seed=run_seed,
        ).build()
        report = runner.run(
            sketch, query_count=query_count, seed=run_seed, batch_size=batch_size
        )
        table.add(
            ResultRow(
                dataset=dataset_name,
                algorithm=algorithm,
                width=width,
                depth=effective_depth,
                sketch_words=sketch.size_in_words(),
                average_error=report.average_error,
                maximum_error=report.maximum_error,
                update_seconds=report.update_seconds,
                query_seconds=report.query_seconds,
                # mark batched-replay timings: they are not comparable with
                # the paper's scalar per-update cost (Figure 6)
                note="" if batch_size is None else f"batch_size={batch_size}",
            )
        )
    return table
