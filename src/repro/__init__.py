"""repro — Bias-Aware Sketches (Chen & Zhang, VLDB 2017).

A reproduction of the paper "Bias-Aware Sketches": linear sketches whose
point-query error is bounded by the *de-biased* tail of the input vector,

    ‖x̂ - x‖∞ = O(k^{-1/p}) · min_β Err_p^k(x - β·1),    p ∈ {1, 2},

strictly improving on Count-Median (p = 1) and Count-Sketch (p = 2) whenever
the coordinates of ``x`` share a common bias β.

Quick start
-----------
>>> import numpy as np
>>> from repro import L2BiasAwareSketch
>>> x = np.random.default_rng(0).normal(100, 15, 100_000)   # biased vector
>>> sketch = L2BiasAwareSketch(dimension=x.size, width=2_000, depth=9, seed=1)
>>> _ = sketch.fit(x)
>>> abs(sketch.query(12_345) - x[12_345]) < 15               # close to the truth
True

Package layout
--------------
* :mod:`repro.core` — the paper's contribution: ℓ1-S/R, ℓ2-S/R, streaming
  variants, the Bias-Heap, bias estimators and the exact error functionals.
* :mod:`repro.sketches` — the classical baselines (Count-Min, Count-Median,
  Count-Sketch, CM-CU, CML-CU) and the shared sketch interfaces.
* :mod:`repro.hashing`, :mod:`repro.matrices` — the hashing and sketching-
  matrix substrate (Definitions 1-3).
* :mod:`repro.streaming`, :mod:`repro.distributed` — the streaming and
  distributed computation models (including multi-core sharded ingestion).
* :mod:`repro.serialization` — the versioned binary wire format behind the
  ``state_dict()/from_state()`` and ``to_bytes()/from_bytes()`` state
  protocol every sketch implements.
* :mod:`repro.data` — the paper's synthetic datasets plus simulated
  substitutes for its real datasets.
* :mod:`repro.queries` — point / heavy-hitter / range / inner-product queries
  on top of any sketch.
* :mod:`repro.eval` — the evaluation harness behind every figure.
"""

from repro.core import (
    BiasHeap,
    L1BiasAwareSketch,
    L1MeanSketch,
    L2BiasAwareSketch,
    L2MeanSketch,
    StreamingL1BiasAwareSketch,
    StreamingL2BiasAwareSketch,
    bias_gain,
    debias,
    debiased_err,
    err_pk,
    optimal_bias,
    optimal_bias_error,
)
from repro.data import Dataset, available_datasets, load_dataset
from repro.distributed import Coordinator, Site, partition_vector
from repro.eval import (
    ResultTable,
    average_error,
    depth_sweep,
    evaluate_algorithms,
    maximum_error,
    streaming_comparison,
    width_sweep,
)
from repro.queries import heavy_hitters, point_query, range_sum
from repro.sketches import (
    CountMedian,
    CountMin,
    CountMinCU,
    CountMinLogCU,
    CountSketch,
    available_sketches,
    make_sketch,
    paper_reference_suite,
)
from repro.serialization import sketch_from_bytes, sketch_from_state
from repro.streaming import (
    StreamRunner,
    UpdateStream,
    ingest_stream_sharded,
    stream_from_vector,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core contribution
    "BiasHeap",
    "L1BiasAwareSketch",
    "L1MeanSketch",
    "L2BiasAwareSketch",
    "L2MeanSketch",
    "StreamingL1BiasAwareSketch",
    "StreamingL2BiasAwareSketch",
    "bias_gain",
    "debias",
    "debiased_err",
    "err_pk",
    "optimal_bias",
    "optimal_bias_error",
    # baselines and registry
    "CountMedian",
    "CountMin",
    "CountMinCU",
    "CountMinLogCU",
    "CountSketch",
    "available_sketches",
    "make_sketch",
    "paper_reference_suite",
    # data
    "Dataset",
    "available_datasets",
    "load_dataset",
    # models
    "Coordinator",
    "Site",
    "partition_vector",
    "StreamRunner",
    "UpdateStream",
    "stream_from_vector",
    # portable state and sharded ingestion
    "sketch_from_bytes",
    "sketch_from_state",
    "ingest_stream_sharded",
    # queries
    "heavy_hitters",
    "point_query",
    "range_sum",
    # evaluation
    "ResultTable",
    "average_error",
    "maximum_error",
    "evaluate_algorithms",
    "width_sweep",
    "depth_sweep",
    "streaming_comparison",
]
