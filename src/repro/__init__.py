"""repro — Bias-Aware Sketches (Chen & Zhang, VLDB 2017).

A reproduction of the paper "Bias-Aware Sketches": linear sketches whose
point-query error is bounded by the *de-biased* tail of the input vector,

    ‖x̂ - x‖∞ = O(k^{-1/p}) · min_β Err_p^k(x - β·1),    p ∈ {1, 2},

strictly improving on Count-Median (p = 1) and Count-Sketch (p = 2) whenever
the coordinates of ``x`` share a common bias β.

Quick start
-----------
Everything goes through one front door: a declarative
:class:`~repro.api.SketchConfig` plus a :class:`~repro.api.SketchSession`
facade that owns construction, ingestion, queries, merging and persistence.

>>> import numpy as np
>>> from repro import SketchConfig, SketchSession
>>> x = np.random.default_rng(0).normal(100, 15, 100_000)   # biased vector
>>> session = SketchSession.from_config(
...     SketchConfig("l2_sr", dimension=x.size, width=2_000, depth=9, seed=1)
... )
>>> _ = session.ingest(x)                    # vectors, updates, or streams
>>> abs(session.query(kind="point", index=12_345) - x[12_345]) < 15
True
>>> hot = session.query(kind="heavy_hitters", threshold=150.0)
>>> _ = session.save("traffic.sketch")       # restore anywhere with .open()

``ingest`` auto-dispatches scalar updates, ``(index, delta)`` batches, dense
vectors, update streams, and multi-core sharded ingestion; ``query`` covers
the four query kinds (``point`` / ``heavy_hitters`` / ``range`` /
``inner_product``) and raises :class:`~repro.api.CapabilityError` for
operations outside the algorithm's declared capabilities.  The historical
entry points (``make_sketch``, the per-module query helpers,
``ingest_stream_sharded``) keep working as deprecated shims.

Large universes
---------------
Bucket and sign assignments are computed **on demand** with a fused
vectorised hash evaluator, never precomputed per coordinate, so a sketch
occupies O(depth × width) memory *regardless of* ``dimension`` —
``dimension=10**8`` constructs in under a millisecond, and
``dimension=None`` selects **hashed-key mode**: an unbounded universe where
any non-negative 64-bit integer (a user id, a hash of a string key) is a
valid coordinate.

>>> session = SketchSession.from_config(
...     SketchConfig("count_min", dimension=None, width=4_096, depth=9,
...                  seed=1)
... )
>>> _ = session.ingest(2**62 + 12345)        # any 64-bit key
>>> session.query(kind="point", index=2**62 + 12345) >= 1.0
True

Hashed-key mode supports the table-based algorithms (``count_min``,
``count_median``, ``count_sketch``, ``count_min_cu``, ``count_min_log_cu``
— those whose registry spec declares ``unbounded``); the bias-aware
algorithms need the per-bucket coordinate counts of a bounded universe.
Operations that enumerate the universe (dense-vector ``ingest``,
``recover``) are rejected; heavy-hitter queries take an explicit
``candidates=`` key set (for example from
:class:`~repro.queries.topk.StreamingTopK`).  Memory model: counters are
``depth × width`` words, plus a lazily-filled hot-key cache of at most
``depth × 65_536`` assignments, plus — for bias-aware sketches on bounded
universes — O(depth × width) column sums computed by a one-off O(n) scan,
memoised and shared across copies, shards and restored replicas (the
hot-key cache is shared the same way, so window panes and shard replicas
built from one seed hash the hot range once).

Windowed streams
----------------
Recency-bounded queries — last-hour heavy hitters, last-N-updates
estimates — ride the same linearity: configure a session with
``window=WindowSpec(...)`` and every update is routed into a ring of
per-pane sketches whose merged view answers all queries over the most
recent panes only (see :mod:`repro.streaming.windows`).

>>> from repro import WindowSpec
>>> session = SketchSession.from_config(SketchConfig(
...     "count_sketch", dimension=x.size, width=2_000, depth=9, seed=1,
...     window=WindowSpec(mode="sliding", panes=16, pane_size=10_000),
... ))
>>> _ = session.ingest(x)                    # only the tail stays queryable
>>> _ = session.save("trailing.window")      # full window state, versioned

Package layout
--------------
* :mod:`repro.api` — the unified session facade (start here).
* :mod:`repro.core` — the paper's contribution: ℓ1-S/R, ℓ2-S/R, streaming
  variants, the Bias-Heap, bias estimators and the exact error functionals.
* :mod:`repro.sketches` — the classical baselines (Count-Min, Count-Median,
  Count-Sketch, CM-CU, CML-CU) and the capability-aware sketch registry.
* :mod:`repro.hashing`, :mod:`repro.matrices` — the hashing and sketching-
  matrix substrate (Definitions 1-3).
* :mod:`repro.streaming`, :mod:`repro.distributed` — the streaming and
  distributed computation models (including multi-core sharded ingestion).
* :mod:`repro.serialization` — the versioned binary wire format behind the
  state protocol every sketch implements.
* :mod:`repro.data` — the paper's synthetic datasets plus simulated
  substitutes for its real datasets.
* :mod:`repro.queries` — the query kernels the session facade dispatches to.
* :mod:`repro.eval` — the evaluation harness behind every figure.
"""

from repro.api import (
    CapabilityError,
    ConfigError,
    SketchConfig,
    SketchSession,
)
from repro.core import (
    BiasHeap,
    L1BiasAwareSketch,
    L1MeanSketch,
    L2BiasAwareSketch,
    L2MeanSketch,
    StreamingL1BiasAwareSketch,
    StreamingL2BiasAwareSketch,
    bias_gain,
    debias,
    debiased_err,
    err_pk,
    optimal_bias,
    optimal_bias_error,
)
from repro.data import Dataset, available_datasets, load_dataset
from repro.distributed import Coordinator, Site, partition_vector
from repro.eval import (
    ResultTable,
    average_error,
    depth_sweep,
    evaluate_algorithms,
    maximum_error,
    streaming_comparison,
    width_sweep,
)
from repro.queries import heavy_hitters, point_query, range_sum
from repro.sketches import (
    CountMedian,
    CountMin,
    CountMinCU,
    CountMinLogCU,
    CountSketch,
    available_sketches,
    make_sketch,
    paper_reference_suite,
)
from repro.serialization import sketch_from_bytes, sketch_from_state
from repro.streaming import (
    SlidingWindowSketch,
    StreamRunner,
    UpdateStream,
    WindowSpec,
    ingest_stream_sharded,
    stream_from_vector,
)
from repro.version import __version__

__all__ = [
    "__version__",
    # the unified facade
    "SketchConfig",
    "SketchSession",
    "CapabilityError",
    "ConfigError",
    # core contribution
    "BiasHeap",
    "L1BiasAwareSketch",
    "L1MeanSketch",
    "L2BiasAwareSketch",
    "L2MeanSketch",
    "StreamingL1BiasAwareSketch",
    "StreamingL2BiasAwareSketch",
    "bias_gain",
    "debias",
    "debiased_err",
    "err_pk",
    "optimal_bias",
    "optimal_bias_error",
    # baselines and registry
    "CountMedian",
    "CountMin",
    "CountMinCU",
    "CountMinLogCU",
    "CountSketch",
    "available_sketches",
    "make_sketch",
    "paper_reference_suite",
    # data
    "Dataset",
    "available_datasets",
    "load_dataset",
    # models
    "Coordinator",
    "Site",
    "partition_vector",
    "StreamRunner",
    "UpdateStream",
    "stream_from_vector",
    # windowed streams (the pane-ring engine)
    "SlidingWindowSketch",
    "WindowSpec",
    # portable state and sharded ingestion (deprecated shims included)
    "sketch_from_bytes",
    "sketch_from_state",
    "ingest_stream_sharded",
    # queries (deprecated shims; prefer SketchSession.query)
    "heavy_hitters",
    "point_query",
    "range_sum",
    # evaluation
    "ResultTable",
    "average_error",
    "maximum_error",
    "evaluate_algorithms",
    "width_sweep",
    "depth_sweep",
    "streaming_comparison",
]
