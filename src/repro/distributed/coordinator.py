"""The coordinator of the simulated distributed protocol."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.distributed.network import CommunicationLog
from repro.distributed.site import Site
from repro.sketches.base import LinearSketch


class Coordinator:
    """Collects local sketches from sites and answers queries on the global vector.

    The protocol is the one described in the paper's introduction: each site
    sends its local sketch ``Φx^i`` (a vector of ``size_in_words()`` words);
    the coordinator adds them, obtaining ``Φx`` for the global vector
    ``x = Σ_i x^i`` by linearity, and runs the recovery procedure on the sum.
    """

    def __init__(self, log: Optional[CommunicationLog] = None) -> None:
        self.log = log if log is not None else CommunicationLog()
        self._global_sketch: Optional[LinearSketch] = None
        self._sites_collected: List[str] = []

    # ------------------------------------------------------------------ #
    # protocol
    # ------------------------------------------------------------------ #
    def collect(self, site: Site) -> "Coordinator":
        """Receive one site's local sketch and fold it into the global sketch."""
        local = site.local_sketch()
        self.log.record(
            sender=site.name,
            payload_words=local.size_in_words(),
            description=f"local sketch from {site.name}",
        )
        if self._global_sketch is None:
            self._global_sketch = local.copy()
        else:
            self._global_sketch.merge(local)
        self._sites_collected.append(site.name)
        return self

    def collect_all(self, sites: Iterable[Site]) -> "Coordinator":
        """Receive the local sketches of every site."""
        for site in sites:
            self.collect(site)
        return self

    # ------------------------------------------------------------------ #
    # queries on the global vector
    # ------------------------------------------------------------------ #
    @property
    def global_sketch(self) -> LinearSketch:
        """The merged sketch of the global vector."""
        if self._global_sketch is None:
            raise RuntimeError("no site sketches have been collected yet")
        return self._global_sketch

    def query(self, index: int) -> float:
        """Point query on the global vector."""
        return self.global_sketch.query(index)

    def recover(self) -> np.ndarray:
        """Recover the full approximation of the global vector."""
        return self.global_sketch.recover()

    @property
    def sites_collected(self) -> List[str]:
        """Names of the sites whose sketches have been folded in, in order."""
        return list(self._sites_collected)

    @property
    def total_communication_words(self) -> int:
        """Total words shipped from sites to the coordinator."""
        return self.log.total_words
