"""The coordinator of the simulated distributed protocol.

The protocol transmits *bytes*, not live Python objects: every site encodes
its local sketch with :meth:`~repro.sketches.base.Sketch.to_bytes` and the
coordinator reconstructs it with :func:`repro.serialization.sketch_from_bytes`
before folding it into the global sketch.  That makes the simulation
byte-accurate — what the :class:`~repro.distributed.network.CommunicationLog`
records is exactly what a real deployment would put on the network — and
keeps the two sides fully decoupled (a payload written by one process can be
collected by another process, machine, or a later run).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.serialization import decode_state, sketch_from_state, state_word_count
from repro.distributed.network import CommunicationLog
from repro.distributed.site import Site
from repro.sketches.base import LinearSketch


class Coordinator:
    """Collects serialized site sketches and answers queries on the global vector.

    The protocol is the one described in the paper's introduction: each site
    sends its local sketch ``Φx^i`` — here as an actual serialized payload of
    ``size_in_bytes()`` bytes carrying ``size_in_words()`` words of state;
    the coordinator decodes and adds them, obtaining ``Φx`` for the global
    vector ``x = Σ_i x^i`` by linearity, and runs recovery on the sum.
    """

    def __init__(self, log: Optional[CommunicationLog] = None) -> None:
        self.log = log if log is not None else CommunicationLog()
        self._global_sketch: Optional[LinearSketch] = None
        self._sites_collected: List[str] = []

    # ------------------------------------------------------------------ #
    # protocol
    # ------------------------------------------------------------------ #
    def collect(self, site: Site) -> "Coordinator":
        """Receive one site's serialized sketch and fold it into the global one."""
        return self.receive(site.name, site.ship_state())

    def collect_all(self, sites: Iterable[Site]) -> "Coordinator":
        """Receive the serialized sketches of every site."""
        for site in sites:
            self.collect(site)
        return self

    def receive(self, sender: str, payload: bytes) -> "Coordinator":
        """Receive one serialized sketch payload from a named sender.

        This is the byte-level entry point of the protocol: ``payload`` must
        be a wire payload produced by ``to_bytes()``.  The message is logged
        with its declared word size, its true byte size, and the word count
        measured in the encoding (mismatches are flagged in the log).
        """
        state = decode_state(payload)
        local = sketch_from_state(state)
        if not isinstance(local, LinearSketch):
            raise TypeError(
                f"sender {sender!r} shipped a non-linear sketch "
                f"({type(local).__name__}); only linear sketches can be "
                "combined by the coordinator"
            )
        self.log.record(
            sender=sender,
            payload_words=local.size_in_words(),
            payload_bytes=len(payload),
            measured_words=state_word_count(state),
            description=f"serialized sketch from {sender}",
        )
        if self._global_sketch is None:
            # the decoded sketch is already a private reconstruction — no
            # state is shared with the sender
            self._global_sketch = local
        else:
            self._global_sketch.merge(local)
        self._sites_collected.append(sender)
        return self

    # ------------------------------------------------------------------ #
    # queries on the global vector
    # ------------------------------------------------------------------ #
    @property
    def global_sketch(self) -> LinearSketch:
        """The merged sketch of the global vector."""
        if self._global_sketch is None:
            raise RuntimeError("no site sketches have been collected yet")
        return self._global_sketch

    def query(self, index: int) -> float:
        """Point query on the global vector."""
        return self.global_sketch.query(index)

    def recover(self) -> np.ndarray:
        """Recover the full approximation of the global vector."""
        return self.global_sketch.recover()

    @property
    def sites_collected(self) -> List[str]:
        """Names of the sites whose sketches have been folded in, in order."""
        return list(self._sites_collected)

    @property
    def total_communication_words(self) -> int:
        """Total declared words shipped from sites to the coordinator."""
        return self.log.total_words

    @property
    def total_communication_bytes(self) -> int:
        """Total serialized bytes shipped from sites to the coordinator."""
        return self.log.total_bytes
