"""Communication accounting for the simulated distributed protocol.

Every message carries two measures of its cost:

* ``payload_words`` — the sketch's *declared* size, ``size_in_words()``,
  which is the unit the paper's communication bounds are stated in;
* ``payload_bytes`` — the *true* size of the serialized wire payload
  (:meth:`repro.sketches.base.Sketch.to_bytes`) that actually crossed the
  channel.

The log additionally reconciles the declaration against the encoding: the
coordinator measures the number of 8-byte state words the payload really
carries (:func:`repro.serialization.state_word_count`) and any sketch whose
``size_in_words()`` disagrees with its encoded state is *flagged* — a
mis-declared size would silently corrupt every communication-vs-accuracy
trade-off built on the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ChannelMessage:
    """One message sent from a site to the coordinator.

    Attributes
    ----------
    sender:
        Name of the sending site.
    payload_words:
        The sender's declared sketch size (``size_in_words()``).
    description:
        Human-readable tag for the message.
    payload_bytes:
        True size of the serialized payload in bytes (0 when the message was
        recorded from a word count alone, e.g. in unit tests).
    measured_words:
        State words actually found in the encoded payload, or ``None`` when
        no payload was inspected.
    """

    sender: str
    payload_words: int
    description: str = ""
    payload_bytes: int = 0
    measured_words: Optional[int] = None

    def __post_init__(self) -> None:
        if self.payload_words < 0:
            raise ValueError(
                f"payload_words must be non-negative, got {self.payload_words}"
            )
        if self.payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be non-negative, got {self.payload_bytes}"
            )

    @property
    def words_consistent(self) -> Optional[bool]:
        """Whether the declared word count matches the encoded state.

        ``None`` when no payload was inspected; otherwise ``True`` iff
        ``payload_words == measured_words``.
        """
        if self.measured_words is None:
            return None
        return self.measured_words == self.payload_words


@dataclass
class CommunicationLog:
    """Accumulates the messages exchanged during a distributed run."""

    messages: List[ChannelMessage] = field(default_factory=list)

    def record(
        self,
        sender: str,
        payload_words: int,
        description: str = "",
        payload_bytes: int = 0,
        measured_words: Optional[int] = None,
    ) -> None:
        """Record one site → coordinator message."""
        self.messages.append(
            ChannelMessage(
                sender=sender,
                payload_words=int(payload_words),
                description=description,
                payload_bytes=int(payload_bytes),
                measured_words=(
                    None if measured_words is None else int(measured_words)
                ),
            )
        )

    @property
    def total_words(self) -> int:
        """Total declared words sent over all channels."""
        return sum(message.payload_words for message in self.messages)

    @property
    def total_bytes(self) -> int:
        """Total serialized bytes sent over all channels."""
        return sum(message.payload_bytes for message in self.messages)

    @property
    def message_count(self) -> int:
        """Number of messages sent."""
        return len(self.messages)

    def words_by_sender(self) -> Dict[str, int]:
        """Total declared words sent per site."""
        totals: Dict[str, int] = {}
        for message in self.messages:
            totals[message.sender] = totals.get(message.sender, 0) + message.payload_words
        return totals

    def bytes_by_sender(self) -> Dict[str, int]:
        """Total serialized bytes sent per site."""
        totals: Dict[str, int] = {}
        for message in self.messages:
            totals[message.sender] = totals.get(message.sender, 0) + message.payload_bytes
        return totals

    def inconsistent_messages(self) -> List[ChannelMessage]:
        """Messages whose declared ``size_in_words()`` disagrees with the
        state words measured in their encoded payload."""
        return [
            message for message in self.messages
            if message.words_consistent is False
        ]
