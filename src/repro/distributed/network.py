"""Communication accounting for the simulated distributed protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class ChannelMessage:
    """One message sent from a site to the coordinator."""

    sender: str
    payload_words: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.payload_words < 0:
            raise ValueError(
                f"payload_words must be non-negative, got {self.payload_words}"
            )


@dataclass
class CommunicationLog:
    """Accumulates the messages exchanged during a distributed run."""

    messages: List[ChannelMessage] = field(default_factory=list)

    def record(self, sender: str, payload_words: int, description: str = "") -> None:
        """Record one site → coordinator message."""
        self.messages.append(
            ChannelMessage(sender=sender, payload_words=int(payload_words),
                           description=description)
        )

    @property
    def total_words(self) -> int:
        """Total words sent over all channels."""
        return sum(message.payload_words for message in self.messages)

    @property
    def message_count(self) -> int:
        """Number of messages sent."""
        return len(self.messages)

    def words_by_sender(self) -> Dict[str, int]:
        """Total words sent per site."""
        totals: Dict[str, int] = {}
        for message in self.messages:
            totals[message.sender] = totals.get(message.sender, 0) + message.payload_words
        return totals
