"""Sites of the simulated distributed protocol.

Sites build their local sketches from a declarative
:class:`repro.api.SketchConfig`, which guarantees every site (and the
coordinator's reconstruction) uses the same algorithm, geometry and seed.
The historical zero-argument factory-callable form still works but is
deprecated.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

import numpy as np

from repro.api.config import SketchConfig
from repro.sketches.base import LinearSketch, Sketch
from repro.streaming.stream import UpdateStream
from repro.utils.deprecation import warn_deprecated
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import ensure_1d_float_array, require_positive_int


def partition_vector(
    x,
    sites: int,
    seed: RandomSource = None,
    by: str = "items",
) -> List[np.ndarray]:
    """Split a global frequency vector into per-site local vectors that sum to it.

    Two partitioning schemes are provided:

    * ``by="items"`` — each unit of mass of every coordinate is assigned to a
      uniformly random site (multinomial thinning); models items observed at
      different sites, which is the paper's motivating scenario.  Requires a
      non-negative integer-valued vector.
    * ``by="coordinates"`` — each coordinate is assigned wholly to one random
      site; works for arbitrary real vectors.
    """
    arr = ensure_1d_float_array(x, "x")
    sites = require_positive_int(sites, "sites")
    rng = as_rng(seed)

    if by == "coordinates":
        assignment = rng.integers(0, sites, size=arr.size)
        return [np.where(assignment == site, arr, 0.0) for site in range(sites)]

    if by == "items":
        if np.any(arr < 0) or not np.allclose(arr, np.round(arr)):
            raise ValueError(
                "item partitioning requires a non-negative integer vector; "
                "use by='coordinates' for real-valued vectors"
            )
        counts = np.round(arr).astype(np.int64)
        locals_ = [np.zeros(arr.size, dtype=np.float64) for _ in range(sites)]
        nonzero = np.flatnonzero(counts)
        for index in nonzero:
            split = rng.multinomial(counts[index], np.full(sites, 1.0 / sites))
            for site in range(sites):
                locals_[site][index] = split[site]
        return locals_

    raise ValueError(f"by must be 'items' or 'coordinates', got {by!r}")


class Site:
    """One site holding a local frequency vector (or local update stream).

    Parameters
    ----------
    name:
        Identifier used in the communication log.
    config:
        A :class:`repro.api.SketchConfig` describing the site's local sketch.
        All sites and the coordinator must share the same config (in
        particular its integer seed) so their hash functions agree — in a
        real deployment the coordinator broadcasts it.  A zero-argument
        factory callable is still accepted but deprecated.
    """

    def __init__(
        self, name: str, config: Union[SketchConfig, Callable[[], Sketch]]
    ) -> None:
        if not name:
            raise ValueError("site name must be non-empty")
        self.name = name
        if isinstance(config, SketchConfig):
            self._sketch_factory: Callable[[], Sketch] = config.build
            self.config: Optional[SketchConfig] = config
        elif callable(config):
            warn_deprecated(
                "passing a sketch factory callable to repro.distributed.Site",
                "Site(name, repro.api.SketchConfig(...))",
            )
            self._sketch_factory = config
            self.config = None
        else:
            raise TypeError(
                "Site expects a repro.api.SketchConfig (or, deprecated, a "
                f"zero-argument sketch factory), got {type(config).__name__}"
            )
        self._sketch: Optional[Sketch] = None

    @property
    def sketch(self) -> Sketch:
        """The site's local sketch (built lazily)."""
        if self._sketch is None:
            self._sketch = self._sketch_factory()
            if not isinstance(self._sketch, LinearSketch):
                raise TypeError(
                    f"site {self.name!r} was given a non-linear sketch "
                    f"({type(self._sketch).__name__}); only linear sketches "
                    "can be combined by the coordinator"
                )
        return self._sketch

    def observe_vector(self, local_vector) -> "Site":
        """Ingest the site's whole local frequency vector."""
        self.sketch.fit(local_vector)
        return self

    def observe_stream(
        self, stream: UpdateStream, batch_size: Optional[int] = None
    ) -> "Site":
        """Ingest the site's local update stream.

        With ``batch_size=None`` the stream is replayed one update at a time
        (the paper's streaming model); with an integer it is replayed in
        order through the sketch's vectorised ``update_batch`` path in
        chunks of that many updates, reaching an equivalent state much
        faster.
        """
        if batch_size is None:
            for update in stream:
                self.sketch.update(update.index, update.delta)
        else:
            for indices, deltas in stream.iter_batches(batch_size):
                self.sketch.update_batch(indices, deltas)
        return self

    def observe_update(self, index: int, delta: float = 1.0) -> "Site":
        """Ingest a single local update."""
        self.sketch.update(index, delta)
        return self

    def observe_batch(self, indices, deltas=None) -> "Site":
        """Ingest a batch of local updates through the vectorised path."""
        self.sketch.update_batch(indices, deltas)
        return self

    def local_sketch(self) -> LinearSketch:
        """The site's local sketch object (local inspection only)."""
        return self.sketch  # type: ignore[return-value]

    def ship_state(self) -> bytes:
        """Serialize the local sketch for transmission to the coordinator.

        This is the only thing a site ever sends: a self-contained wire
        payload (:meth:`~repro.sketches.base.Sketch.to_bytes`), never a live
        Python object.  Requires the sketch to be built from an explicit
        integer seed so the coordinator can reconstruct its hash functions.
        """
        return self.local_sketch().to_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site(name={self.name!r})"
