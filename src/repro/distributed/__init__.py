"""Distributed-model substrate.

In the paper's distributed model (Section 1) ``t`` sites each hold a local
frequency vector ``x^i`` and a coordinator wants to learn the global vector
``x = Σ_i x^i``.  Because the sketches are linear, every site sends only its
local sketch ``Φx^i`` and the coordinator adds them to obtain the global
sketch ``Φx``; the communication is ``t`` times the sketch size instead of
``t`` times the vector dimension.

This package simulates that protocol *byte-accurately*: sites serialize
their sketches into the versioned wire format of :mod:`repro.serialization`
(:meth:`Site.ship_state`) and the coordinator reconstructs them from the
payload alone — no Python objects are shared between the two sides.

* :class:`Site` — holds a local vector or stream and ships its local sketch
  as a serialized payload;
* :class:`Coordinator` — decodes and merges the payloads
  (:meth:`Coordinator.receive` is the byte-level entry point) and answers
  queries on the global vector;
* :class:`CommunicationLog` — accounts for both the declared words
  (``size_in_words()``) and the true serialized bytes per message, and
  flags any sketch whose declaration disagrees with its encoded state.

Non-linear sketches (CM-CU, CML-CU) raise when used here — exactly the
limitation the paper points out.
"""

from repro.distributed.network import ChannelMessage, CommunicationLog
from repro.distributed.coordinator import Coordinator
from repro.distributed.site import Site, partition_vector

__all__ = [
    "ChannelMessage",
    "CommunicationLog",
    "Coordinator",
    "Site",
    "partition_vector",
]
