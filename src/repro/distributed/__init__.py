"""Distributed-model substrate.

In the paper's distributed model (Section 1) ``t`` sites each hold a local
frequency vector ``x^i`` and a coordinator wants to learn the global vector
``x = Σ_i x^i``.  Because the sketches are linear, every site sends only its
local sketch ``Φx^i`` and the coordinator adds them to obtain the global
sketch ``Φx``; the communication is ``t`` times the sketch size instead of
``t`` times the vector dimension.

This package simulates that protocol:

* :class:`Site` — holds a local vector or stream and produces its local sketch;
* :class:`Coordinator` — merges the local sketches and answers queries on the
  global vector;
* :class:`CommunicationLog` — accounts for the words transferred over each
  channel, so the communication-vs-accuracy trade-off can be benchmarked.

Non-linear sketches (CM-CU, CML-CU) raise when used here — exactly the
limitation the paper points out.
"""

from repro.distributed.network import ChannelMessage, CommunicationLog
from repro.distributed.coordinator import Coordinator
from repro.distributed.site import Site, partition_vector

__all__ = [
    "ChannelMessage",
    "CommunicationLog",
    "Coordinator",
    "Site",
    "partition_vector",
]
