"""The package version, sourced from the installed distribution metadata.

Lives in its own tiny module so the CLI (and ``repro.__version__``) can read
it without importing the whole package.  When running from a source checkout
(``PYTHONPATH=src``) there is no installed distribution to ask, so the value
falls back to the version pinned in ``pyproject.toml``.
"""

from __future__ import annotations

from importlib.metadata import PackageNotFoundError, version as _distribution_version

#: kept in sync with ``[project] version`` in pyproject.toml for checkouts
_FALLBACK_VERSION = "1.2.0"

try:
    __version__ = _distribution_version("repro")
except PackageNotFoundError:  # running from a source tree
    __version__ = _FALLBACK_VERSION
