"""Seeded random-number management.

Every randomised component in the library (hash families, sign functions,
dataset generators, sampling matrices) accepts either an integer seed, a
``numpy.random.Generator``, or ``None``.  The helpers here normalise those
inputs and derive independent child seeds deterministically, so that an
experiment seeded once at the top is reproducible end to end.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RandomSource = Union[None, int, np.integer, np.random.Generator]

_SEED_MODULUS = 2**63 - 1


def as_rng(source: RandomSource = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for the given seed/generator/None."""
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, (int, np.integer)) and not isinstance(source, bool):
        return np.random.default_rng(int(source))
    raise TypeError(
        "random source must be None, an int seed, or a numpy Generator, "
        f"got {type(source).__name__}"
    )


def derive_seed(source: RandomSource, salt: int) -> int:
    """Derive a deterministic child seed from ``source`` and an integer ``salt``.

    When ``source`` is an integer the derivation is a fixed arithmetic mix, so
    the same (seed, salt) pair always yields the same child seed.  When it is a
    generator or ``None`` a fresh random seed is drawn.
    """
    if isinstance(source, (int, np.integer)) and not isinstance(source, bool):
        mixed = (int(source) * 0x9E3779B97F4A7C15 + (salt + 1) * 0xBF58476D1CE4E5B9)
        return mixed % _SEED_MODULUS
    rng = as_rng(source)
    return int(rng.integers(0, _SEED_MODULUS))


def spawn_rngs(source: RandomSource, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators derived from ``source``."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [np.random.default_rng(derive_seed(source, salt)) for salt in range(count)]
