"""Input validation helpers used throughout the library.

All public entry points of the library validate their inputs eagerly and raise
``ValueError``/``TypeError`` with messages naming the offending argument, so
that user errors surface at the call site rather than deep inside numpy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def require_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer >= ``minimum`` and return it.

    Booleans are rejected (they are instances of ``int`` but almost always a
    bug when passed where a size is expected).
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the open interval (0, 1)."""
    value = float(value)
    if not (0.0 < value < 1.0):
        raise ValueError(f"{name} must lie strictly between 0 and 1, got {value}")
    return value


def require_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in [low, high] (or (low, high) if not inclusive)."""
    value = float(value)
    if low is not None:
        if inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if not inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
        if not inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return value


#: upper bound on keys in hashed-key mode (``dimension=None``): any
#: non-negative 64-bit signed integer hashes cleanly
UNBOUNDED_KEY_LIMIT = 2**63


def require_index(index: int, dimension: Optional[int], name: str = "index") -> int:
    """Validate that ``index`` addresses a coordinate of a ``dimension``-vector.

    ``dimension=None`` means hashed-key mode: any key in
    ``[0, UNBOUNDED_KEY_LIMIT)`` is accepted.
    """
    if isinstance(index, bool) or not isinstance(index, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(index).__name__}")
    index = int(index)
    bound = UNBOUNDED_KEY_LIMIT if dimension is None else dimension
    if not (0 <= index < bound):
        raise IndexError(f"{name} must be in [0, {bound}), got {index}")
    return index


def ensure_1d_float_array(x, name: str = "x") -> np.ndarray:
    """Coerce ``x`` to a 1-D float64 numpy array, validating shape and finiteness.

    Returns a new array (never a view of the input) so that callers may mutate
    it safely.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 0:
        raise ValueError(f"{name} must be a 1-D array-like, got a scalar")
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr.copy()


def ensure_batch_arrays(indices, deltas, dimension, name: str = "indices"):
    """Validate a batch of ``(indices, deltas)`` updates and return them as arrays.

    ``indices`` must be a 1-D integer array-like with every entry in
    ``[0, dimension)`` — or any non-negative 64-bit key when ``dimension`` is
    ``None`` (hashed-key mode).  ``deltas`` may be ``None`` (unit
    increments), a scalar (broadcast to every index) or a 1-D float
    array-like of the same length.  Returns ``(int64 array, float64 array)``
    of equal shape; the pair may be empty, which every batch operation treats
    as a no-op.
    """
    idx = np.asarray(indices)
    if idx.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {idx.shape}")
    if idx.size and not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(
            f"{name} must be an integer array, got dtype {idx.dtype}"
        )
    bound = UNBOUNDED_KEY_LIMIT if dimension is None else dimension
    if idx.size and np.issubdtype(idx.dtype, np.unsignedinteger):
        # check before the int64 view: a uint64 key >= 2^63 would wrap to a
        # negative and the error would report a value the caller never passed
        top = int(idx.max())
        if top >= bound:
            raise IndexError(f"{name} must be in [0, {bound}), got {top}")
    idx = idx.astype(np.int64, copy=False)
    if idx.size:
        low = int(idx.min())
        high = int(idx.max())
        if low < 0 or high >= bound:
            bad = low if low < 0 else high
            raise IndexError(
                f"{name} must be in [0, {bound}), got {bad}"
            )

    if deltas is None:
        d = np.ones(idx.size, dtype=np.float64)
    else:
        d = np.asarray(deltas, dtype=np.float64)
        if d.ndim == 0:
            d = np.full(idx.size, float(d), dtype=np.float64)
        elif d.shape != idx.shape:
            raise ValueError(
                f"deltas must match {name} in shape; got {d.shape} vs {idx.shape}"
            )
        else:
            d = d.astype(np.float64, copy=False)
    if d.size and not np.all(np.isfinite(d)):
        raise ValueError("deltas must contain only finite values")
    return idx, d
