"""Deprecation plumbing for the pre-``repro.api`` entry points.

The unified :mod:`repro.api` facade (``SketchConfig`` + ``SketchSession``)
replaced the historical front doors — the positional registry constructor,
the per-module query helpers, and the standalone sharded-ingestion call.
Those old entry points keep working, but each call emits exactly one
:class:`DeprecationWarning` naming its ``repro.api`` replacement so callers
can migrate mechanically.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def deprecation_message(qualified_name: str, replacement: str) -> str:
    """The one-line migration hint emitted for a deprecated entry point."""
    return f"{qualified_name} is deprecated; use {replacement} instead"


def warn_deprecated(qualified_name: str, replacement: str, stacklevel: int = 3) -> None:
    """Emit the single :class:`DeprecationWarning` for a deprecated entry point."""
    warnings.warn(
        deprecation_message(qualified_name, replacement),
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def deprecated_entry_point(replacement: str) -> Callable[[F], F]:
    """Mark a callable as a deprecated shim over a ``repro.api`` surface.

    The wrapped callable behaves identically but emits exactly one
    :class:`DeprecationWarning` per call, naming ``replacement``.  The
    replacement string is recorded on the wrapper as
    ``__deprecated_replacement__`` so tests (and tooling) can audit the
    migration table mechanically.
    """

    def decorate(func: F) -> F:
        qualified = f"{func.__module__}.{func.__name__}"

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            warn_deprecated(qualified, replacement, stacklevel=2)
            return func(*args, **kwargs)

        wrapper.__deprecated_replacement__ = replacement
        return wrapper  # type: ignore[return-value]

    return decorate
