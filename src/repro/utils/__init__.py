"""Shared utilities: validation helpers and seeded random-number management."""

from repro.utils.rng import RandomSource, as_rng, derive_seed, spawn_rngs
from repro.utils.validation import (
    ensure_1d_float_array,
    require_in_range,
    require_index,
    require_positive_int,
    require_probability,
)

__all__ = [
    "RandomSource",
    "as_rng",
    "derive_seed",
    "spawn_rngs",
    "ensure_1d_float_array",
    "require_in_range",
    "require_index",
    "require_positive_int",
    "require_probability",
]
