"""The :class:`SketchSession` facade: one front door for the whole lifecycle.

A session owns a sketch built from a validated
:class:`~repro.api.SketchConfig` and exposes every operation the library
supports behind a uniform, capability-checked surface:

* **construction** — :meth:`SketchSession.from_config` (new sketch),
  :meth:`SketchSession.open` / :meth:`SketchSession.from_bytes` (restore a
  persisted one);
* **ingestion** — a single :meth:`ingest` that dispatches scalar updates,
  ``(index, delta)`` batches, dense frequency vectors,
  :class:`~repro.streaming.stream.UpdateStream` replays, and multi-core
  sharded ingestion, by input type and size; sessions configured with
  ``SketchConfig(window=WindowSpec(...))`` route every update (optionally
  timestamped) into the pane ring of
  :class:`~repro.streaming.windows.SlidingWindowSketch`, and every query
  below is answered over the current window only;
* **queries** — a single :meth:`query` dispatching the four query kinds
  (``point``, ``heavy_hitters``, ``range``, ``inner_product``), raising
  :class:`~repro.api.CapabilityError` for kinds the algorithm's spec does
  not declare;
* **composition and persistence** — :meth:`merge` (sessions, sketches or
  raw wire payloads), :meth:`save` / :meth:`to_bytes` riding the versioned
  binary state protocol of :mod:`repro.serialization`.

The CLI, the evaluation harness, the distributed sites and all examples go
through this facade; the per-class constructors and per-module helpers
remain available as deprecated shims.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, List, Optional, Union

import numpy as np

from repro.api.config import SketchConfig
from repro.api.errors import CapabilityError, ConfigError
from repro.data.dataset import Dataset
from repro.queries.heavy_hitters import HeavyHitter, _heavy_hitters
from repro.queries.inner_product import _inner_product_estimate
from repro.queries.range_query import _range_sum
from repro.serialization import decode_state, reconstruction_errors
from repro.sketches.base import LinearSketch, Sketch
from repro.sketches.registry import QUERY_KINDS, SketchSpec
from repro.streaming.sharded import (
    DEFAULT_BATCH_SIZE,
    ShardedIngestPool,
    ShardedIngestReport,
)
from repro.streaming.stream import UpdateStream
from repro.store.uri import is_store_uri, parse_store_uri
from repro.utils.validation import require_positive_int


def read_payload(source: Any) -> bytes:
    """Read a wire payload from a polymorphic ``source``.

    This is the reader side of the library-wide I/O rule — every I/O entry
    point accepts all three source forms:

    * a **path** (``str`` / :class:`~pathlib.Path`) — the file's bytes;
    * a **binary file object** (anything with ``.read()``) — its contents
      (the object is left open);
    * a **store URI** (``store://PATH#NAME[@VERSION]``) — the named
      snapshot's payload from the :class:`~repro.store.SketchStore` catalog
      (latest version when ``@VERSION`` is omitted).
    """
    if is_store_uri(source):
        from repro.store import SketchStore

        reference = parse_store_uri(source)
        with SketchStore(reference.path) as store:
            return store.get_payload(reference.name, reference.version)
    reader = getattr(source, "read", None)
    if callable(reader):
        return bytes(reader())
    with open(source, "rb") as handle:
        return handle.read()


#: update count at which :meth:`SketchSession.ingest` switches to the
#: multi-core sharded engine on its own (linear sketches with integer seeds
#: on multi-core machines); explicit ``shards=`` always wins
DEFAULT_AUTO_SHARD_THRESHOLD = 2_000_000

#: cap on automatically chosen shard counts (beyond ~8 workers the merge
#: and serialization overhead outweighs the extra cores for typical sizes)
_MAX_AUTO_SHARDS = 8


class SketchSession:
    """A stateful facade over one sketch's full lifecycle.

    Build one with :meth:`from_config` (fresh sketch) or :meth:`open` /
    :meth:`from_bytes` (restored sketch); never construct sketches directly.

    >>> from repro.api import SketchConfig, SketchSession
    >>> session = SketchSession.from_config(
    ...     SketchConfig("l2_sr", dimension=10_000, width=512, depth=7, seed=1)
    ... )
    >>> _ = session.ingest(vector)                      # dense vector
    >>> session.query(kind="point", index=123)          # one estimate
    >>> session.save("traffic.sketch")                  # persist
    >>> again = SketchSession.open("traffic.sketch")    # restore anywhere
    """

    def __init__(self, config: SketchConfig, sketch: Any) -> None:
        # internal: use from_config / open / from_bytes
        from repro.streaming.windows import SlidingWindowSketch

        self._config = config
        if isinstance(sketch, SlidingWindowSketch):
            self._window: Optional[SlidingWindowSketch] = sketch
            self._sketch: Optional[Sketch] = None
        else:
            self._window = None
            self._sketch = sketch
        self._last_shard_report: Optional[ShardedIngestReport] = None
        self._auto_shard_threshold: Optional[int] = DEFAULT_AUTO_SHARD_THRESHOLD
        self._pool: Optional[ShardedIngestPool] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(
        cls,
        config: Union[SketchConfig, str, None] = None,
        *,
        auto_shard_threshold: Optional[int] = DEFAULT_AUTO_SHARD_THRESHOLD,
        **fields: Any,
    ) -> "SketchSession":
        """Open a session on a fresh sketch built from ``config``.

        ``config`` is a :class:`SketchConfig`, or an algorithm name with the
        remaining config fields passed as keyword arguments::

            SketchSession.from_config("l2_sr", dimension=10_000, width=512,
                                      depth=7, seed=1)

        ``auto_shard_threshold`` tunes when large batched ingests switch to
        the multi-core sharded engine (``None`` disables auto-sharding).
        """
        if isinstance(config, str):
            config = SketchConfig(config, **fields)
        elif config is None:
            config = SketchConfig(**fields)
        elif fields:
            raise ConfigError(
                "pass either a SketchConfig or name/field keyword arguments, "
                "not both"
            )
        if not isinstance(config, SketchConfig):
            raise ConfigError(
                f"config must be a SketchConfig or an algorithm name, got "
                f"{type(config).__name__}"
            )
        if config.window is not None:
            from repro.streaming.windows import SlidingWindowSketch

            engine: Any = SlidingWindowSketch(config)
        else:
            engine = config.build()
        session = cls(config, engine)
        if auto_shard_threshold is not None:
            auto_shard_threshold = require_positive_int(
                auto_shard_threshold, "auto_shard_threshold"
            )
        session._auto_shard_threshold = auto_shard_threshold
        return session

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SketchSession":
        """Open a session on a sketch restored from a wire payload.

        Accepts both payload families: a bare sketch (``RPSK``) and a full
        window container (``RPWD``), dispatching on the magic bytes.
        """
        from repro.streaming.windows import SlidingWindowSketch, is_window_payload

        if is_window_payload(payload):
            window = SlidingWindowSketch.from_bytes(payload)
            return cls(window.config, window)
        state = decode_state(payload)
        with reconstruction_errors(f"{state['kind']!r} payload"):
            config = SketchConfig.from_state(state)
            return cls(config, Sketch.from_state(state))

    @classmethod
    def open(cls, source: Union[str, Path, Any]) -> "SketchSession":
        """Open a session on a sketch persisted by :meth:`save`.

        ``source`` is polymorphic, following the library-wide I/O rule
        (every I/O entry point accepts all three forms):

        * a **path** (``str`` / ``Path``) — a file written by :meth:`save`;
        * a **binary file object** (anything with ``.read()``) — an open
          file, a socket wrapper, an ``io.BytesIO``;
        * a **store URI** — ``store://PATH#NAME[@VERSION]``, restoring the
          named snapshot from a :class:`~repro.store.SketchStore` catalog
          (latest version when ``@VERSION`` is omitted).

        The payload is self-contained: the restoring process (or machine)
        needs nothing beyond the bytes.
        """
        return cls.from_bytes(read_payload(source))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> SketchConfig:
        """The validated configuration the session was opened from."""
        return self._config

    @property
    def spec(self) -> SketchSpec:
        """The capability spec of the session's algorithm."""
        return self._config.spec

    @property
    def sketch(self) -> Sketch:
        """The underlying sketch (escape hatch for specialised callers).

        For a windowed session this is the **read-only merged window view**
        — a sketch of exactly the in-window updates; use :attr:`window` for
        the pane-ring engine itself.
        """
        return self._reader()

    def _reader(self) -> Sketch:
        """The sketch queries are answered against (window view or bare)."""
        if self._window is not None:
            return self._window.view()
        return self._sketch

    @property
    def windowed(self) -> bool:
        """Whether the session answers queries over a sliding window."""
        return self._window is not None

    @property
    def window(self):
        """The :class:`~repro.streaming.windows.SlidingWindowSketch` engine,
        or ``None`` for whole-stream sessions."""
        return self._window

    @property
    def items_in_window(self) -> Optional[int]:
        """Updates the current window summarises (``None`` if unwindowed)."""
        if self._window is None:
            return None
        return self._window.items_in_window

    @property
    def dimension(self) -> Optional[int]:
        """Universe size, or ``None`` in hashed-key (unbounded) mode."""
        return self._config.dimension

    @property
    def unbounded(self) -> bool:
        """Whether the session sketches an unbounded universe (``dimension=None``)."""
        return self._config.dimension is None

    @property
    def items_processed(self) -> int:
        """Total updates applied across every ingestion path."""
        if self._window is not None:
            return self._window.items_processed
        return self._sketch.items_processed

    @property
    def last_shard_report(self) -> Optional[ShardedIngestReport]:
        """The report of the most recent sharded ingest, if any."""
        return self._last_shard_report

    def size_in_words(self) -> int:
        """Counter words stored (all live panes for a windowed session)."""
        if self._window is not None:
            return self._window.size_in_words()
        return self._sketch.size_in_words()

    def size_in_bytes(self) -> int:
        """Exact serialized payload size (requires an integer seed)."""
        if self._window is not None:
            return self._window.size_in_bytes()
        return self._sketch.size_in_bytes()

    def supports(self, kind: str) -> bool:
        """Whether :meth:`query` can answer queries of ``kind``.

        Accounts for the session's mode, not just the algorithm: an
        unbounded (``dimension=None``) session has no fixed-length vector,
        so ``inner_product`` is unsupported even when the algorithm's spec
        declares it.
        """
        if self.unbounded and kind == "inner_product":
            return False
        return self.spec.supports_query(kind)

    def supported_queries(self) -> List[str]:
        """The query kinds this session can answer, in dispatch order."""
        return [kind for kind in QUERY_KINDS if self.supports(kind)]

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        data: Any,
        deltas: Any = None,
        *,
        timestamps: Any = None,
        batch_size: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> "SketchSession":
        """Ingest ``data``, dispatching on its type and size.

        Accepted forms (``deltas`` only applies to coordinate updates):

        * an integer ``index`` (with optional scalar ``deltas``) — one
          streaming update;
        * a 1-D **integer** array-like of coordinates, with ``deltas``
          ``None`` (unit increments), a scalar, or a matching float array —
          a batch of updates in stream order;
        * a 2-D array-like of ``(index, delta)`` pairs — same;
        * a 1-D **float** array-like of length ``dimension`` (or a
          :class:`~repro.data.dataset.Dataset`) — a whole frequency vector;
        * an :class:`~repro.streaming.stream.UpdateStream` — replayed in
          order.

        ``timestamps`` (windowed sessions with time-based panes only)
        carries each update's timestamp: a scalar for a single update, a
        scalar broadcast to a whole batch, or a non-decreasing array
        matching the batch; the windowing engine routes every update into
        the pane its timestamp falls in.  ``batch_size`` chunks batched
        replays through ``update_batch`` (default: one vectorised call).
        ``shards`` forces the multi-core sharded engine (``shards > 1``;
        linear sketches with integer seeds only); when omitted, ingests of
        at least ``auto_shard_threshold`` updates shard automatically on
        multi-core machines — windowed sessions shard *within* a pane and
        fold the result back at pane granularity.  The conservative-update
        kinds cannot shard, but the same threshold auto-chunks their
        ingests through the exact segmented batch path instead, so a huge
        CU stream needs no special-casing by the caller.  Returns ``self``
        for chaining.
        """
        if timestamps is not None and self._window is None:
            raise ConfigError(
                "timestamps only apply to windowed sessions; configure the "
                "sketch with SketchConfig(..., window=WindowSpec(by='time', "
                "...))"
            )
        if isinstance(data, Dataset):
            data = data.vector
        # scalar streaming update -------------------------------------- #
        if isinstance(data, (int, np.integer)) and not isinstance(data, bool):
            if not self.spec.streaming:
                raise CapabilityError(
                    f"sketch {self._config.name!r} does not support "
                    "one-update-at-a-time streaming ingestion"
                )
            if shards is not None and shards != 1:
                raise ConfigError("a single update cannot be sharded")
            delta = 1.0 if deltas is None else float(deltas)
            if self._window is not None:
                self._window.update(int(data), delta, timestamp=timestamps)
            else:
                self._sketch.update(int(data), delta)
            return self
        # update stream ------------------------------------------------- #
        if isinstance(data, UpdateStream):
            if self.dimension is not None and data.dimension != self.dimension:
                raise ConfigError(
                    f"stream has dimension {data.dimension}, session expects "
                    f"{self.dimension}"
                )
            if deltas is not None:
                raise ConfigError("deltas cannot be combined with an UpdateStream")
            return self._ingest_updates(
                data.indices(), data.deltas(), batch_size, shards, timestamps
            )
        # array-likes --------------------------------------------------- #
        arr = np.asarray(data)
        if arr.ndim == 2 and arr.shape[1] == 2:
            if deltas is not None:
                raise ConfigError(
                    "deltas cannot be combined with (index, delta) pairs"
                )
            indices = arr[:, 0]
            if np.issubdtype(arr.dtype, np.floating):
                if not np.allclose(indices, np.round(indices)):
                    raise ConfigError(
                        "(index, delta) pairs must carry integer indices in "
                        "the first column"
                    )
                if indices.size and np.max(np.abs(indices)) >= 2.0**53:
                    raise ConfigError(
                        "(index, delta) pairs pass through a float64 array, "
                        "which cannot represent keys at or above 2^53 "
                        "exactly; pass indices and deltas as separate arrays "
                        "(session.ingest(indices, deltas=...)) for large "
                        "hashed keys"
                    )
                indices = np.round(indices).astype(np.int64)
            # integer-dtype pairs keep their original dtype so the batch
            # validation's unsigned pre-check reports out-of-range uint64
            # keys as the caller passed them, not int64-wrapped
            return self._ingest_updates(
                indices,
                arr[:, 1].astype(np.float64),
                batch_size,
                shards,
                timestamps,
            )
        if arr.ndim != 1:
            raise ConfigError(
                f"cannot ingest an array of shape {arr.shape}; expected a "
                "scalar index, 1-D coordinates, (index, delta) pairs, a "
                "frequency vector, or an UpdateStream"
            )
        if (
            deltas is None
            and self.dimension is not None
            and np.issubdtype(arr.dtype, np.integer)
            and arr.size == self.dimension
        ):
            # an integer array of exactly `dimension` entries is ambiguous:
            # a batch of coordinates, or an integer-valued counts vector?
            # refuse rather than silently guess wrong
            raise ConfigError(
                f"ambiguous ingest: an integer array of length {arr.size} == "
                "dimension could be a batch of coordinates or a dense counts "
                "vector; pass counts as floats (x.astype(float)) to fit the "
                "vector, or pass explicit deltas (e.g. deltas=1.0) to treat "
                "the entries as coordinates"
            )
        if deltas is None and np.issubdtype(arr.dtype, np.floating):
            # dense frequency vector (the fit path)
            if self.dimension is None:
                raise ConfigError(
                    "an unbounded (dimension=None) session cannot ingest a "
                    "dense frequency vector; pass integer keys (with "
                    "optional deltas) instead"
                )
            if arr.size != self.dimension:
                raise ConfigError(
                    f"a float array is ingested as a dense frequency vector "
                    f"and must have length {self.dimension}, got {arr.size}; "
                    "pass integer coordinates (with optional deltas) for "
                    "streaming updates"
                )
            if self._window is not None:
                # a windowed session has no timeless "whole vector": stream
                # the non-zero coordinates as updates in index order so they
                # land in panes like any other batch
                nonzero = np.flatnonzero(arr)
                return self._ingest_updates(
                    nonzero, arr[nonzero], batch_size, shards, timestamps
                )
            resolved = self._resolve_shards(int(np.count_nonzero(arr)), shards)
            if resolved > 1:
                indices = np.flatnonzero(arr)
                return self._ingest_updates(
                    indices, arr[indices], batch_size, resolved
                )
            self._sketch.fit(arr)
            return self
        # 1-D coordinates (+ optional deltas)
        return self._ingest_updates(arr, deltas, batch_size, shards, timestamps)

    def _ingest_updates(
        self,
        indices: Any,
        deltas: Any,
        batch_size: Optional[int],
        shards: Union[int, None],
        timestamps: Any = None,
    ) -> "SketchSession":
        if self._window is not None:
            # the window engine validates the batch itself (single
            # _check_batch pass); explicit shard counts are validated here,
            # while auto-shard decisions are deferred to the engine so they
            # are made per within-pane segment, not for the whole batch
            if shards is not None:
                resolved = self._resolve_shards(0, shards)
                engine_shards = resolved if resolved > 1 else None
                resolver = None          # explicit count (even 1) wins
            else:
                engine_shards = None

                def resolver(updates: int) -> int:
                    return self._resolve_shards(updates, None)
            report = self._window.update_batch(
                indices,
                deltas,
                timestamps=timestamps,
                shards=engine_shards,
                batch_size=batch_size,
                shard_resolver=resolver,
                pool_factory=self._shard_pool,
            )
            if report is not None:
                self._last_shard_report = report
            return self
        indices, deltas = self._sketch._check_batch(indices, deltas)
        resolved = self._resolve_shards(int(indices.size), shards)
        if resolved > 1:
            # folds straight into the live sketch through shared memory; the
            # pool stays warm for the session's lifetime (see close())
            self._last_shard_report = self._shard_pool(resolved).ingest(
                indices,
                deltas,
                target=self._sketch,  # type: ignore[arg-type]
                shards=resolved,
                batch_size=batch_size or DEFAULT_BATCH_SIZE,
            )
            return self
        if batch_size is None:
            batch_size = self._auto_batch_size(int(indices.size))
        if batch_size is None:
            self._sketch.update_batch(indices, deltas)
        else:
            batch_size = require_positive_int(batch_size, "batch_size")
            for start in range(0, indices.size, batch_size):
                stop = start + batch_size
                self._sketch.update_batch(indices[start:stop], deltas[start:stop])
        return self

    def _auto_batch_size(self, updates: int) -> Optional[int]:
        """Chunk size for large exact-batchable non-linear ingests, or ``None``.

        The conservative-update kinds cannot shard (non-linear), but their
        segmented batch path is exact, so a huge CU ingest is auto-chunked
        through ``update_batch`` at :data:`~repro.streaming.sharded.
        DEFAULT_BATCH_SIZE` — the CU analogue of auto-sharding: transient
        gather/segmentation state stays bounded and the per-chunk radix
        sort stays in cache, with stream order (and hence the final state)
        unchanged.  Below the threshold, or for linear kinds, the whole
        batch goes down in one vectorised call.
        """
        if (
            self._auto_shard_threshold is not None
            and updates >= self._auto_shard_threshold
            and self.spec.exact_batch
            and not self.spec.linear
        ):
            return DEFAULT_BATCH_SIZE
        return None

    def _resolve_shards(self, updates: int, shards: Union[int, None]) -> int:
        if shards is not None:
            shards = require_positive_int(shards, "shards")
            if shards > 1:
                self._require_shardable()
            return shards
        if (
            self._auto_shard_threshold is not None
            and updates >= self._auto_shard_threshold
            and self.spec.linear
            and self._config.portable
        ):
            cpus = os.cpu_count() or 1
            if cpus > 1:
                return min(cpus, _MAX_AUTO_SHARDS)
        return 1

    def _require_shardable(self) -> None:
        if not self.spec.linear:
            raise CapabilityError(
                f"sketch {self._config.name!r} is not a linear sketch and "
                "cannot be sharded; merging shard results requires linearity"
            )
        if not self._config.portable:
            raise ConfigError(
                "sharded ingestion requires an explicit integer seed so all "
                "workers build compatible sketches"
            )

    def _shard_pool(self, shards: int) -> ShardedIngestPool:
        """The session's warm worker pool, (re)built to cover ``shards``.

        Workers are capped at the core count — extra shards are assigned
        round-robin inside the pool — and the pool persists across
        ``ingest()`` calls until :meth:`close` (spawn + shared-memory setup
        are paid once per session, not once per call).
        """
        workers = max(1, min(int(shards), os.cpu_count() or 1))
        if (
            self._pool is not None
            and not self._pool.closed
            and self._pool.workers >= workers
        ):
            return self._pool
        if self._pool is not None:
            self._pool.close()
        self._pool = ShardedIngestPool(
            self._config.name,
            self.dimension,
            self._config.width,
            self._config.depth,
            self._config.seed,
            workers=workers,
            options=self._config.options,
        )
        return self._pool

    @property
    def shard_pool(self) -> Optional[ShardedIngestPool]:
        """The warm sharded-ingest pool, or ``None`` if none was spawned."""
        return self._pool

    def close(self) -> None:
        """Release session resources: the warm sharded-ingest worker pool.

        Idempotent, and safe on sessions that never sharded.  The session
        remains usable afterwards — a later sharded ingest simply spawns a
        fresh pool.  Sessions are context managers::

            with SketchSession.from_config(cfg) as session:
                session.ingest(stream, shards=4)
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "SketchSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, kind: Union[str, int, np.integer] = "point", **params: Any):
        """Answer one query, dispatching on ``kind``.

        * ``query(kind="point", index=i)`` — point estimate of coordinate
          ``i`` (a float); an array of indices returns one estimate each.
          ``query(i)`` with an integer is shorthand.
        * ``query(kind="heavy_hitters", threshold=... | phi=..., top_k=...,
          relative_to_bias=..., candidates=...)`` — the coordinates whose
          estimate exceeds the threshold, as
          :class:`~repro.queries.heavy_hitters.HeavyHitter` records.
          ``candidates`` restricts evaluation to a tracked key set (e.g.
          from :class:`~repro.queries.topk.StreamingTopK`); it is required
          for unbounded (``dimension=None``) sessions, whose universe
          cannot be scanned.
        * ``query(kind="range", low=a, high=b)`` — the estimated sum over
          ``[a, b)``.
        * ``query(kind="inner_product", vector=y)`` — the estimated
          ``⟨x, y⟩``.

        Kinds outside the algorithm's declared capabilities raise
        :class:`~repro.api.CapabilityError`; unknown kinds raise
        ``ValueError`` listing the known ones.
        """
        if isinstance(kind, (int, np.integer)) and not isinstance(kind, bool):
            params.setdefault("index", int(kind))
            kind = "point"
        if kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {kind!r}; known kinds: {list(QUERY_KINDS)}"
            )
        if not self.supports(kind):
            mode = " in hashed-key (dimension=None) mode" if (
                self.unbounded and self.spec.supports_query(kind)
            ) else ""
            raise CapabilityError(
                f"sketch {self._config.name!r} does not support "
                f"{kind!r} queries{mode}; supported kinds: "
                f"{self.supported_queries()}"
            )
        handler = getattr(self, f"_query_{kind}")
        return handler(**params)

    def _query_point(self, index: Any):
        reader = self._reader()
        if isinstance(index, (int, np.integer)) and not isinstance(index, bool):
            return reader.query(int(index))
        return reader.query_batch(index)

    def _query_heavy_hitters(
        self,
        threshold: Optional[float] = None,
        phi: Optional[float] = None,
        total_mass: Optional[float] = None,
        relative_to_bias: bool = False,
        top_k: Optional[int] = None,
        candidates: Any = None,
    ) -> List[HeavyHitter]:
        if self.unbounded and candidates is None:
            raise CapabilityError(
                "an unbounded (dimension=None) session cannot be scanned "
                "for heavy hitters; pass candidates=... with the keys to "
                "evaluate (e.g. StreamingTopK.candidates())"
            )
        return _heavy_hitters(
            self._reader(),
            threshold=threshold,
            phi=phi,
            total_mass=total_mass,
            relative_to_bias=relative_to_bias,
            top_k=top_k,
            candidates=candidates,
        )

    def _query_range(self, low: int, high: int) -> float:
        return _range_sum(self._reader(), low, high)

    def _query_inner_product(self, vector: Any) -> float:
        # unbounded sessions never reach here: supports() excludes the kind
        return _inner_product_estimate(self._reader(), vector)

    def recover(self) -> np.ndarray:
        """The full recovered vector ``x̂`` (one estimate per coordinate).

        Unavailable for unbounded (``dimension=None``) sessions, whose
        universe cannot be enumerated — use point queries or
        candidate-driven heavy-hitter queries instead.
        """
        if self.unbounded:
            raise CapabilityError(
                "an unbounded (dimension=None) session cannot recover the "
                "full vector; use point queries or candidate-driven "
                "heavy-hitter queries instead"
            )
        return self._reader().recover()

    def estimate_bias(self) -> float:
        """The sketch's current bias estimate ``β̂``.

        Only the bias-aware algorithms maintain one; others raise
        :class:`~repro.api.CapabilityError`.
        """
        estimator = getattr(self._reader(), "estimate_bias", None)
        if estimator is None:
            raise CapabilityError(
                f"sketch {self._config.name!r} does not maintain a bias "
                "estimate; use a bias-aware algorithm (e.g. 'l1_sr', 'l2_sr')"
            )
        return float(estimator())

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    #: the inputs :meth:`merge` accepts, spelled out once so every rejection
    #: path names them
    _MERGEABLE = (
        "another SketchSession, a Sketch, a serialized wire payload "
        "(bytes/bytearray), or a list/tuple of those"
    )

    def merge(
        self,
        other: Union["SketchSession", Sketch, bytes, bytearray, list, tuple],
    ) -> "SketchSession":
        """Fold other compatible sketch state into this session.

        ``other`` may be another session, a bare sketch, a serialized wire
        payload (what a remote site would ship), or a list/tuple of those
        (merged in order).  Requires a linear algorithm; geometry and seed
        compatibility are validated by the underlying merge.  Anything else
        raises ``TypeError`` naming the accepted inputs.
        """
        if self._window is not None:
            raise CapabilityError(
                "a windowed session cannot be merged: its panes are aligned "
                "to this session's own stream position, so folding foreign "
                "state into the ring would mix pane boundaries; merge "
                "unwindowed sessions, or merge against the read-only window "
                "view (session.sketch) instead"
            )
        if not self.spec.linear:
            raise CapabilityError(
                f"sketch {self._config.name!r} is not a linear sketch and "
                "cannot be merged"
            )
        if isinstance(other, (list, tuple)):
            # resolve and compatibility-check every element BEFORE merging
            # any, so a bad element leaves the session untouched (a caller
            # retrying the fixed list must not double-count the good ones)
            resolved = []
            for position, item in enumerate(other):
                if isinstance(item, SketchSession):
                    item = item.sketch
                elif isinstance(item, (bytes, bytearray)):
                    item = Sketch.from_bytes(bytes(item))
                if not isinstance(item, Sketch):
                    raise TypeError(
                        f"cannot merge element {position} of the "
                        f"{type(other).__name__} (a "
                        f"{type(item).__name__}) into the session; merge() "
                        f"accepts {self._MERGEABLE}"
                    )
                resolved.append(item)
            assert isinstance(self._sketch, LinearSketch)
            for item in resolved:
                self._sketch._check_compatible(item)  # type: ignore[arg-type]
            for item in resolved:
                self._sketch.merge(item)  # type: ignore[arg-type]
            return self
        if isinstance(other, SketchSession):
            other = other.sketch
        elif isinstance(other, (bytes, bytearray)):
            other = Sketch.from_bytes(bytes(other))
        if not isinstance(other, Sketch):
            raise TypeError(
                f"cannot merge a {type(other).__name__} into the session; "
                f"merge() accepts {self._MERGEABLE}"
            )
        assert isinstance(self._sketch, LinearSketch)
        self._sketch.merge(other)  # type: ignore[arg-type]
        return self

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """The session state in the versioned binary wire format.

        Windowed sessions encode the full window container (spec, ring
        bookkeeping and every live pane); bare sessions encode the sketch
        payload.  :meth:`from_bytes` / :meth:`open` restore either.
        """
        if self._window is not None:
            return self._window.to_bytes()
        return self._sketch.to_bytes()

    def state_dict(self) -> dict:
        """The session state as a plain dict (see the state protocol)."""
        if self._window is not None:
            return self._window.state_dict()
        return self._sketch.state_dict()

    def save(self, destination: Union[str, Path, Any]) -> Union[Path, str]:
        """Persist the session state to ``destination``.

        ``destination`` is polymorphic, following the library-wide I/O rule
        (every I/O entry point accepts all three forms):

        * a **path** (``str`` / ``Path``) — the payload is written to the
          file; returns the :class:`~pathlib.Path` written;
        * a **binary file object** (anything with ``.write()``) — the
          payload is written to it (left open); returns ``None``;
        * a **store URI** — ``store://PATH#NAME`` appends a new immutable
          snapshot under ``NAME`` in the :class:`~repro.store.SketchStore`
          catalog at ``PATH`` (created if missing); returns the canonical
          URI of the snapshot written, with its assigned ``@VERSION``.
          A version in a save URI is rejected — snapshots are append-only.
        """
        if is_store_uri(destination):
            from repro.store import SketchStore, format_store_uri
            from repro.store.errors import StoreError

            reference = parse_store_uri(destination)
            if reference.version is not None:
                raise StoreError(
                    f"cannot save to {destination!r}: snapshots are "
                    "append-only, so a save URI names the sketch without a "
                    "version (the store assigns the next one)"
                )
            with SketchStore(reference.path) as store:
                version = store.put(reference.name, self.to_bytes())
            return format_store_uri(reference.path, reference.name, version)
        writer = getattr(destination, "write", None)
        if callable(writer):
            writer(self.to_bytes())
            return None
        path = Path(destination)
        path.write_bytes(self.to_bytes())
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SketchSession({self._config!r}, "
            f"items_processed={self.items_processed})"
        )
