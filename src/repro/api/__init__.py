"""One front door: the unified session API over the whole sketch stack.

:mod:`repro.api` consolidates the library's historical entry points —
per-class constructors, the positional registry factory, three ingestion
paths, four query modules and the serialization layer — behind two objects:

* :class:`SketchConfig` — a declarative, immutable sketch description
  (``name`` / ``dimension`` / ``width`` / ``depth`` / ``seed`` plus
  algorithm-specific kwargs), validated eagerly against the capability
  registry (:class:`repro.sketches.registry.SketchSpec`);
* :class:`SketchSession` — a facade owning the full lifecycle:
  construction (``from_config`` / ``open``), a single auto-dispatching
  :meth:`~SketchSession.ingest`, a single :meth:`~SketchSession.query`
  covering all four query kinds with capability checking,
  :meth:`~SketchSession.merge`, and persistence
  (:meth:`~SketchSession.save` / :meth:`~SketchSession.to_bytes`).

**The polymorphic I/O rule.**  Every I/O entry point in the API accepts all
three source/destination forms: a filesystem **path** (``str`` / ``Path``),
an open **binary file object** (``.read()`` / ``.write()``), and a **store
URI** (``store://PATH#NAME[@VERSION]``, addressing a named, versioned
snapshot in a :class:`repro.store.SketchStore` catalog).  New I/O surfaces
must keep this contract; :func:`repro.api.session.read_payload` is the
shared reader side.

Quick start::

    from repro.api import SketchConfig, SketchSession

    config = SketchConfig("l2_sr", dimension=50_000, width=2_048, depth=9,
                          seed=7)
    session = SketchSession.from_config(config)
    session.ingest(vector)                              # or updates / streams
    session.query(kind="point", index=123)
    session.query(kind="heavy_hitters", phi=0.001)
    session.save("traffic.sketch")

    restored = SketchSession.open("traffic.sketch")     # any process/machine
    restored.query(kind="range", low=100, high=400)
"""

from repro.api.config import SketchConfig
from repro.api.errors import CapabilityError, ConfigError
from repro.api.session import (
    DEFAULT_AUTO_SHARD_THRESHOLD,
    SketchSession,
    read_payload,
)

__all__ = [
    "CapabilityError",
    "ConfigError",
    "SketchConfig",
    "SketchSession",
    "DEFAULT_AUTO_SHARD_THRESHOLD",
    "read_payload",
]
