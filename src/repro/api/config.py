"""Declarative sketch configuration, validated against the capability registry.

A :class:`SketchConfig` is the complete, immutable recipe for a sketch:
algorithm name, geometry (``dimension``/``width``/``depth``), seed, and any
algorithm-specific keyword arguments (``head_size`` for ℓ2-S/R,
``bias_samples`` for ℓ1-S/R, ``base`` for CML-CU, ...).  Validation happens
at construction, against the :class:`~repro.sketches.registry.SketchSpec` of
the named algorithm: unknown names, non-positive geometry, seeds of the
wrong type and undeclared kwargs all raise :class:`~repro.api.ConfigError`
immediately, with a message naming the offending field.

A config is the unit the rest of the system passes around: sessions are
opened from it (:meth:`repro.api.SketchSession.from_config`), distributed
sites build their local sketches from it, and the evaluation harness sweeps
over variations of it (:meth:`SketchConfig.replace`).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.api.errors import ConfigError
from repro.sketches.base import Sketch
from repro.sketches.registry import SketchSpec, available_sketches, get_spec


def _checked_positive_int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigError(
            f"{name} must be a positive integer, got {type(value).__name__}"
        )
    value = int(value)
    if value < 1:
        raise ConfigError(f"{name} must be a positive integer, got {value}")
    return value


class SketchConfig:
    """An immutable, validated description of one sketch.

    Parameters
    ----------
    name:
        Registry name of the algorithm (see
        :func:`repro.sketches.registry.available_sketches`).
    dimension:
        Dimension ``n`` of the frequency vector being summarised, or
        ``None`` for hashed-key mode (unbounded universe: any non-negative
        64-bit integer key; only algorithms whose spec declares
        ``unbounded`` support it).
    width:
        Buckets ``s`` per hash row.
    depth:
        Hash rows ``d``.
    seed:
        Integer seed, or ``None`` for fresh randomness.  An integer seed is
        required for every portable operation (save, merge across processes,
        sharded ingestion), because hash structure is re-derived from it.
    window:
        A :class:`~repro.streaming.windows.WindowSpec` (or its
        :meth:`~repro.streaming.windows.WindowSpec.to_dict` form) selecting
        **windowed ingestion**: queries are answered over the most recent
        panes only.  Sliding and decay windows require a *linear* algorithm
        (the pane ring rides ``merge``/``scale``); tumbling windows — whose
        single pane resets at each boundary and never merges — also accept
        the *exact-batchable* conservative-update kinds.  Anything else
        raises :class:`~repro.api.CapabilityError` naming the missing
        capability.  All windowing requires an explicit integer seed.
        ``None`` (the default) keeps whole-stream semantics.
    **options:
        Algorithm-specific keyword arguments, validated against the spec's
        ``kwargs_schema`` (e.g. ``head_size=256`` for ``"l2_sr"``).
    """

    __slots__ = ("name", "dimension", "width", "depth", "seed", "window",
                 "options")

    def __init__(
        self,
        name: str,
        *,
        dimension: Optional[int],
        width: int,
        depth: int,
        seed: Optional[int] = None,
        window: Any = None,
        **options: Any,
    ) -> None:
        if not isinstance(name, str) or not name:
            raise ConfigError(
                f"sketch name must be a non-empty string, got {name!r}"
            )
        try:
            spec = get_spec(name)
        except KeyError as error:
            raise ConfigError(str(error.args[0])) from None
        object.__setattr__(self, "name", name)
        if dimension is None:
            if not spec.unbounded:
                supported = ", ".join(
                    candidate for candidate in available_sketches()
                    if get_spec(candidate).unbounded
                )
                raise ConfigError(
                    f"sketch {name!r} requires a bounded dimension; "
                    "dimension=None (hashed-key mode over an unbounded "
                    f"universe) is supported by: {supported}"
                )
            object.__setattr__(self, "dimension", None)
        else:
            object.__setattr__(
                self, "dimension", _checked_positive_int(dimension, "dimension")
            )
        object.__setattr__(self, "width", _checked_positive_int(width, "width"))
        object.__setattr__(self, "depth", _checked_positive_int(depth, "depth"))
        if seed is not None:
            if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
                raise ConfigError(
                    f"seed must be an integer or None, got {type(seed).__name__}"
                )
            seed = int(seed)
        object.__setattr__(self, "seed", seed)
        if window is not None:
            # local import: repro.streaming.windows imports repro.api.errors
            from repro.streaming.windows import WindowSpec

            if isinstance(window, Mapping):
                window = WindowSpec.from_dict(window)
            if not isinstance(window, WindowSpec):
                raise ConfigError(
                    f"window must be a WindowSpec (or its to_dict() form), "
                    f"got {type(window).__name__}"
                )
            if not spec.linear and not (
                window.mode == "tumbling" and spec.exact_batch
            ):
                from repro.api.errors import CapabilityError

                if window.mode == "decay":
                    reason = (
                        "decay windows fade history through scale(), which "
                        "the conservative-update sketches do not support"
                    )
                else:
                    reason = (
                        "the sliding pane ring relies on the pane-merge "
                        "algebra (merge/scale), which the conservative-"
                        "update sketches do not support"
                    )
                hint = (
                    "; tumbling windows (panes are independent and never "
                    "merge) accept exact-batchable sketches"
                    if spec.exact_batch
                    else ""
                )
                raise CapabilityError(
                    f"sketch {name!r} is not a linear sketch and cannot use "
                    f"a {window.mode} window: {reason}{hint}"
                )
            if seed is None:
                raise ConfigError(
                    "windowed sketching requires an explicit integer seed: "
                    "panes share hash functions so they can be merged, and "
                    "window state must be reconstructible on restore"
                )
        object.__setattr__(self, "window", window)
        try:
            validated = spec.validate_kwargs(options)
        except (TypeError, ValueError) as error:
            raise ConfigError(str(error)) from None
        object.__setattr__(self, "options", dict(validated))

    # ------------------------------------------------------------------ #
    # immutability
    # ------------------------------------------------------------------ #
    def __setattr__(self, attr: str, value: Any) -> None:
        raise AttributeError(
            f"SketchConfig is immutable; use replace({attr}=...) to derive a "
            "modified configuration"
        )

    def __delattr__(self, attr: str) -> None:
        raise AttributeError("SketchConfig is immutable")

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> SketchSpec:
        """The capability spec of the configured algorithm."""
        return get_spec(self.name)

    @property
    def portable(self) -> bool:
        """Whether the config yields serializable / mergeable-across-process
        sketches (requires an integer seed)."""
        return self.seed is not None

    @property
    def windowed(self) -> bool:
        """Whether the config selects windowed (pane-ring) ingestion."""
        return self.window is not None

    def summary(self) -> str:
        """A one-line human description: algorithm, geometry, seed, window.

        Used by catalog-facing surfaces (``repro store get``/``history``)
        where the full ``repr`` is too noisy for a table cell.
        """
        dimension = "unbounded" if self.dimension is None else str(self.dimension)
        parts = [f"n={dimension}", f"s={self.width}", f"d={self.depth}",
                 f"seed={self.seed}"]
        if self.window is not None:
            parts.append(f"window={self.window.mode}:{self.window.panes}"
                         f"x{self.window.pane_size}")
        parts.extend(f"{key}={value}" for key, value in sorted(self.options.items()))
        return f"{self.name} ({', '.join(parts)})"

    def build(self) -> Sketch:
        """Construct a fresh sketch from this configuration."""
        return self.spec.build(
            self.dimension, self.width, self.depth, seed=self.seed, **self.options
        )

    def replace(self, **changes: Any) -> "SketchConfig":
        """A new config with the given fields (or options) overridden.

        Setting an algorithm-specific option to ``None`` removes it, which
        matters when ``replace(name=...)`` switches to an algorithm that
        does not accept the old options.
        """
        merged: Dict[str, Any] = {
            "name": self.name,
            "dimension": self.dimension,
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "window": self.window,
            **self.options,
        }
        merged.update(changes)
        name = merged.pop("name")
        core = {key: merged.pop(key)
                for key in ("dimension", "width", "depth", "seed", "window")}
        options = {key: value for key, value in merged.items() if value is not None}
        return SketchConfig(name, **core, **options)

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form of the config (JSON-able for integer seeds)."""
        return {
            "name": self.name,
            "dimension": self.dimension,
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "window": self.window.to_dict() if self.window is not None else None,
            **self.options,
        }

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "SketchConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(mapping)
        try:
            name = data.pop("name")
        except KeyError:
            raise ConfigError("config dict must carry a 'name' field") from None
        return cls(name, **data)

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SketchConfig":
        """Derive the config recorded in a sketch state dict / wire payload.

        ``state`` is a :meth:`repro.sketches.base.Sketch.state_dict` snapshot
        (or its decoded wire form).  Config keys that are not part of the
        algorithm's declared kwargs schema (e.g. internal flags a class
        fixes itself) are dropped.
        """
        kind = state.get("kind")
        if not isinstance(kind, str):
            raise ConfigError(f"state carries no sketch kind (got {kind!r})")
        try:
            spec = get_spec(kind)
        except KeyError:
            raise ConfigError(
                f"state of kind {kind!r} does not correspond to a registered "
                "sketch algorithm; it cannot be wrapped in a SketchSession"
            ) from None
        recorded = dict(state.get("config", {}))
        options = {
            key: recorded[key] for key in spec.kwargs_schema if key in recorded
        }
        try:
            return cls(
                kind,
                dimension=recorded["dimension"],
                width=recorded["width"],
                depth=recorded["depth"],
                seed=recorded.get("seed"),
                **options,
            )
        except KeyError as error:
            raise ConfigError(
                f"state of kind {kind!r} is missing the config field "
                f"{error.args[0]!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # equality / display
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SketchConfig):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(
            (self.name, self.dimension, self.width, self.depth, self.seed,
             self.window, tuple(sorted(self.options.items())))
        )

    def __repr__(self) -> str:
        extras = "".join(f", {k}={v!r}" for k, v in sorted(self.options.items()))
        windowed = f", window={self.window!r}" if self.window is not None else ""
        return (
            f"SketchConfig({self.name!r}, dimension={self.dimension}, "
            f"width={self.width}, depth={self.depth}, seed={self.seed}"
            f"{windowed}{extras})"
        )
