"""Exceptions raised by the :mod:`repro.api` facade.

Two failure families are distinguished:

* :class:`ConfigError` — the *configuration* is wrong (unknown algorithm,
  non-positive geometry, an algorithm-specific kwarg the sketch does not
  accept).  Raised eagerly, at :class:`~repro.api.SketchConfig` construction.
* :class:`CapabilityError` — the configuration is fine but the *operation*
  is outside the algorithm's declared capabilities (merging a non-linear
  sketch, sharding an unmergeable one, a query kind the sketch cannot
  answer).  Subclasses :class:`TypeError` so existing callers that catch
  ``TypeError`` around merges keep working.
"""

from __future__ import annotations


class ConfigError(ValueError):
    """An invalid :class:`~repro.api.SketchConfig` (bad name, geometry, or kwargs)."""


class CapabilityError(TypeError):
    """An operation outside the capabilities a sketch's spec declares."""
