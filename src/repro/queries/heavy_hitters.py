"""Heavy hitters (frequent elements) on top of a recovering sketch.

A coordinate is reported as a heavy hitter when its *estimated* value exceeds
a threshold, expressed either absolutely or as a fraction φ of the total mass.
For biased vectors the interesting heavy hitters are the coordinates far
*above the bias*; the ``relative_to_bias`` mode subtracts the sketch's own
bias estimate (when it has one) before thresholding, which is the natural
"outlier detection" reading of the paper's motivation (cf. the BOMP
discussion in Section 2).

Evaluation is candidate-driven: with an explicit ``candidates`` key set only
those keys are estimated (the only option for unbounded ``dimension=None``
sketches, typically fed from the tracked set of a
:class:`~repro.queries.topk.StreamingTopK`); without one, a bounded domain
is scanned in fixed-size blocks of batched point queries, so memory stays
O(block) instead of materialising all ``n`` estimates at once.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.sketches.base import SCAN_BLOCK, Sketch
from repro.utils.deprecation import deprecated_entry_point
from repro.utils.validation import ensure_batch_arrays


@dataclass(frozen=True)
class HeavyHitter:
    """A reported heavy hitter."""

    index: int
    estimate: float
    score: float


def _candidate_blocks(
    sketch: Sketch, candidates
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(indices, estimates)`` blocks for the keys under evaluation.

    With explicit ``candidates`` the keys are estimated in one batched
    query; otherwise the sketch's (bounded) domain is scanned in blocks of
    :data:`SCAN_BLOCK` coordinates, so no ``(n,)`` estimates array is ever
    materialised.
    """
    if candidates is not None:
        # the same validation the ingest path applies (dtype, bounds, and
        # the uint64-above-2^63 pre-check that keeps error messages naming
        # the key the caller actually passed)
        arr, _ = ensure_batch_arrays(candidates, None, sketch.dimension,
                                     name="candidates")
        idx = np.unique(arr)
        for start in range(0, idx.size, SCAN_BLOCK):
            chunk = idx[start:start + SCAN_BLOCK]
            yield chunk, np.asarray(sketch.query_batch(chunk),
                                    dtype=np.float64)
        return
    if sketch.dimension is None:
        raise ValueError(
            "an unbounded (dimension=None) sketch cannot be scanned for "
            "heavy hitters; pass candidates=... with the keys to evaluate "
            "(e.g. the tracked set of a StreamingTopK)"
        )
    for start in range(0, sketch.dimension, SCAN_BLOCK):
        idx = np.arange(start, min(start + SCAN_BLOCK, sketch.dimension))
        yield idx, np.asarray(sketch.query_batch(idx), dtype=np.float64)


def _heavy_hitters(
    sketch: Sketch,
    threshold: Optional[float] = None,
    phi: Optional[float] = None,
    total_mass: Optional[float] = None,
    relative_to_bias: bool = False,
    top_k: Optional[int] = None,
    candidates=None,
) -> List[HeavyHitter]:
    """Report coordinates whose estimate exceeds a threshold.

    Parameters
    ----------
    sketch:
        Any sketch supporting batched point queries.
    threshold:
        Absolute threshold on the (possibly de-biased) estimate.
    phi:
        Relative threshold: report coordinates whose estimate exceeds
        ``phi · total_mass``.  ``total_mass`` defaults to the sum of the
        absolute estimates over the whole (bounded) domain — also when
        ``candidates`` merely restricts which keys are *reported*, so phi
        keeps its stream-relative meaning.  Only an unbounded sketch,
        whose domain cannot be scanned, falls back to the candidate-set
        mass; pass ``total_mass`` explicitly there to anchor phi to a
        known stream total.
    relative_to_bias:
        When True and the sketch exposes ``estimate_bias()``, the bias is
        subtracted before thresholding (detect "outliers above the bias"
        instead of "large absolute counts").
    top_k:
        When given, return only the ``top_k`` highest-scoring hitters.
    candidates:
        Optional key set to evaluate instead of scanning the whole domain —
        required for unbounded (``dimension=None``) sketches, whose universe
        cannot be enumerated.  Duplicates are ignored.

    Exactly one of ``threshold`` and ``phi`` must be provided.
    """
    if (threshold is None) == (phi is None):
        raise ValueError("provide exactly one of threshold and phi")

    if top_k is not None and top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")

    bias = 0.0
    if relative_to_bias and hasattr(sketch, "estimate_bias"):
        bias = float(sketch.estimate_bias())

    if phi is not None:
        if not (0.0 < phi < 1.0):
            raise ValueError(f"phi must lie in (0, 1), got {phi}")
        if total_mass is None:
            # the total needs every estimate before any can be thresholded:
            # accumulate it in a first pass and re-scan to threshold —
            # twice the hashing, but memory stays O(block) even at
            # dimension 10^8 (or a 10^7-key candidate set).  On a bounded
            # sketch the phi base is always the whole domain (candidates
            # only restrict which keys are reported); an unbounded domain
            # cannot be scanned, so candidate mass is the only fallback.
            mass_keys = candidates if sketch.dimension is None else None
            total_mass = sum(
                float(np.sum(np.abs(estimates)))
                for _, estimates in _candidate_blocks(sketch, mass_keys)
            )
        threshold = phi * total_mass

    hitters: List[HeavyHitter] = []
    for idx, estimates in _candidate_blocks(sketch, candidates):
        scores = estimates - bias
        hot = np.flatnonzero(scores > threshold)
        block_hitters = [
            HeavyHitter(index=int(idx[i]), estimate=float(estimates[i]),
                        score=float(scores[i]))
            for i in hot
        ]
        if top_k is None:
            hitters.extend(block_hitters)
        else:
            # truncate per block so memory stays O(top_k + block) even when
            # a permissive threshold passes the whole domain
            hitters = heapq.nlargest(
                top_k, hitters + block_hitters, key=lambda h: h.score
            )
    hitters.sort(key=lambda h: h.score, reverse=True)
    return hitters


@deprecated_entry_point("repro.api.SketchSession.query(kind='heavy_hitters', ...)")
def heavy_hitters(
    sketch: Sketch,
    threshold: Optional[float] = None,
    phi: Optional[float] = None,
    total_mass: Optional[float] = None,
    relative_to_bias: bool = False,
    top_k: Optional[int] = None,
    candidates=None,
) -> List[HeavyHitter]:
    """Report coordinates whose estimate exceeds a threshold.

    .. deprecated::
        Use ``SketchSession.query(kind="heavy_hitters", threshold=... |
        phi=..., top_k=..., relative_to_bias=..., candidates=...)`` instead.
    """
    return _heavy_hitters(
        sketch,
        threshold=threshold,
        phi=phi,
        total_mass=total_mass,
        relative_to_bias=relative_to_bias,
        top_k=top_k,
        candidates=candidates,
    )
