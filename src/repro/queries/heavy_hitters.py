"""Heavy hitters (frequent elements) on top of a recovering sketch.

A coordinate is reported as a heavy hitter when its *estimated* value exceeds
a threshold, expressed either absolutely or as a fraction φ of the total mass.
For biased vectors the interesting heavy hitters are the coordinates far
*above the bias*; the ``relative_to_bias`` mode subtracts the sketch's own
bias estimate (when it has one) before thresholding, which is the natural
"outlier detection" reading of the paper's motivation (cf. the BOMP
discussion in Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sketches.base import Sketch
from repro.utils.deprecation import deprecated_entry_point


@dataclass(frozen=True)
class HeavyHitter:
    """A reported heavy hitter."""

    index: int
    estimate: float
    score: float


def _heavy_hitters(
    sketch: Sketch,
    threshold: Optional[float] = None,
    phi: Optional[float] = None,
    total_mass: Optional[float] = None,
    relative_to_bias: bool = False,
    top_k: Optional[int] = None,
) -> List[HeavyHitter]:
    """Report coordinates whose estimate exceeds a threshold.

    Parameters
    ----------
    sketch:
        Any sketch supporting :meth:`recover`.
    threshold:
        Absolute threshold on the (possibly de-biased) estimate.
    phi:
        Relative threshold: report coordinates whose estimate exceeds
        ``phi · total_mass``.  ``total_mass`` defaults to the sum of the
        recovered estimates.
    relative_to_bias:
        When True and the sketch exposes ``estimate_bias()``, the bias is
        subtracted before thresholding (detect "outliers above the bias"
        instead of "large absolute counts").
    top_k:
        When given, return only the ``top_k`` highest-scoring hitters.

    Exactly one of ``threshold`` and ``phi`` must be provided.
    """
    if (threshold is None) == (phi is None):
        raise ValueError("provide exactly one of threshold and phi")

    estimates = sketch.recover()
    scores = estimates.copy()
    if relative_to_bias and hasattr(sketch, "estimate_bias"):
        scores = scores - float(sketch.estimate_bias())

    if phi is not None:
        if not (0.0 < phi < 1.0):
            raise ValueError(f"phi must lie in (0, 1), got {phi}")
        if total_mass is None:
            total_mass = float(np.sum(np.abs(estimates)))
        threshold = phi * total_mass

    hot = np.flatnonzero(scores > threshold)
    hitters = [
        HeavyHitter(index=int(i), estimate=float(estimates[i]), score=float(scores[i]))
        for i in hot
    ]
    hitters.sort(key=lambda h: h.score, reverse=True)
    if top_k is not None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        hitters = hitters[:top_k]
    return hitters


@deprecated_entry_point("repro.api.SketchSession.query(kind='heavy_hitters', ...)")
def heavy_hitters(
    sketch: Sketch,
    threshold: Optional[float] = None,
    phi: Optional[float] = None,
    total_mass: Optional[float] = None,
    relative_to_bias: bool = False,
    top_k: Optional[int] = None,
) -> List[HeavyHitter]:
    """Report coordinates whose estimate exceeds a threshold.

    .. deprecated::
        Use ``SketchSession.query(kind="heavy_hitters", threshold=... |
        phi=..., top_k=..., relative_to_bias=...)`` instead.
    """
    return _heavy_hitters(
        sketch,
        threshold=threshold,
        phi=phi,
        total_mass=total_mass,
        relative_to_bias=relative_to_bias,
        top_k=top_k,
    )
