"""Sketch-assisted streaming top-k tracking.

A common deployment of point-query sketches (the "frequent elements"
application of the paper's introduction): while the stream is being ingested,
maintain a small candidate set of the items with the largest *estimated*
values, so that the top-k can be reported at any time without recovering the
whole vector.

The tracker is sketch-agnostic: it forwards every update to the wrapped
sketch, re-estimates the updated item, and keeps the best ``capacity``
candidates in a dictionary (re-scoring lazily on report).  With a bias-aware
sketch the scores can optionally be measured *relative to the bias*, which
turns the tracker into a streaming outlier monitor.

Because the candidate set is maintained while streaming, the tracker also
serves as the key source for candidate-driven heavy-hitter queries on
unbounded (``dimension=None``) sketches: pass :meth:`StreamingTopK.candidates`
as the ``candidates`` of
:func:`~repro.queries.heavy_hitters.heavy_hitters`, which cannot scan an
unbounded universe itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.sketches.base import Sketch
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class TopKEntry:
    """One reported item."""

    index: int
    estimate: float
    score: float


class StreamingTopK:
    """Track the items with the largest estimated values while streaming.

    Parameters
    ----------
    sketch:
        Any sketch implementing ``update`` and ``query``; the tracker owns the
        ingestion path, so route all updates through :meth:`update`.
    k:
        How many items to report.
    capacity:
        How many candidates to retain between reports (default ``4·k``; a
        larger buffer makes it harder for a true top-k item to be evicted by
        a temporary overestimate of another item).
    relative_to_bias:
        When True and the sketch exposes ``estimate_bias()``, candidates are
        scored by ``estimate - bias`` (outliers above the bias).
    """

    def __init__(
        self,
        sketch: Sketch,
        k: int,
        capacity: int = None,
        relative_to_bias: bool = False,
    ) -> None:
        self.sketch = sketch
        self.k = require_positive_int(k, "k")
        if capacity is None:
            capacity = 4 * self.k
        self.capacity = require_positive_int(capacity, "capacity")
        if self.capacity < self.k:
            raise ValueError(
                f"capacity ({self.capacity}) must be >= k ({self.k})"
            )
        self.relative_to_bias = bool(relative_to_bias)
        self._candidates: Dict[int, float] = {}

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        """Forward the update to the sketch and refresh the candidate set."""
        self.sketch.update(index, delta)
        self._candidates[index] = self._score(index)
        if len(self._candidates) > self.capacity:
            self._evict()

    def update_batch(self, indices, deltas=None) -> "StreamingTopK":
        """Forward a batch through the sketch's vectorised path, then refresh.

        The batch is ingested with one :meth:`Sketch.update_batch` call and
        only the *distinct* touched keys are re-scored (one batched point
        query), so the tracker rides the same vectorised ingestion engine as
        everything else.  The candidate set it reaches is the same one the
        scalar replay would reach whenever scores are current at eviction
        time (both keep the ``capacity`` best-scoring keys).
        """
        self.sketch.update_batch(indices, deltas)
        touched = np.unique(np.asarray(indices, dtype=np.int64))
        if touched.size:
            scores = np.asarray(self.sketch.query_batch(touched), dtype=float)
            if self.relative_to_bias and hasattr(self.sketch, "estimate_bias"):
                scores = scores - float(self.sketch.estimate_bias())
            for index, score in zip(touched.tolist(), scores.tolist()):
                self._candidates[index] = score
            if len(self._candidates) > self.capacity:
                self._evict()
        return self

    def _score(self, index: int) -> float:
        estimate = self.sketch.query(index)
        if self.relative_to_bias and hasattr(self.sketch, "estimate_bias"):
            return estimate - float(self.sketch.estimate_bias())
        return estimate

    def _evict(self) -> None:
        """Drop the lowest-scoring candidates down to the capacity."""
        keep = sorted(self._candidates, key=self._candidates.get, reverse=True)
        for index in keep[self.capacity:]:
            del self._candidates[index]

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def top(self) -> List[TopKEntry]:
        """Report the current top-k candidates, re-scored against the sketch."""
        rescored = {index: self._score(index) for index in self._candidates}
        best = sorted(rescored, key=rescored.get, reverse=True)[: self.k]
        entries = []
        for index in best:
            estimate = self.sketch.query(index)
            entries.append(
                TopKEntry(index=int(index), estimate=float(estimate),
                          score=float(rescored[index]))
            )
        return entries

    def top_indices(self) -> List[int]:
        """Just the indices of the current top-k."""
        return [entry.index for entry in self.top()]

    def candidates(self) -> np.ndarray:
        """All currently tracked keys (sorted) — the candidate set to hand to
        :func:`~repro.queries.heavy_hitters.heavy_hitters` on unbounded
        sketches."""
        return np.array(sorted(self._candidates), dtype=np.int64)

    @property
    def candidate_count(self) -> int:
        """Number of candidates currently retained."""
        return len(self._candidates)
