"""Point queries: estimate a single coordinate of the frequency vector."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.sketches.base import Sketch
from repro.utils.deprecation import deprecated_entry_point


@dataclass(frozen=True)
class PointQueryResult:
    """A point-query answer with optional ground truth for error reporting."""

    index: int
    estimate: float
    truth: Optional[float] = None

    @property
    def absolute_error(self) -> Optional[float]:
        """|estimate - truth| when the truth is known."""
        if self.truth is None:
            return None
        return abs(self.estimate - self.truth)


def _point_query(
    sketch: Sketch,
    index: int,
    truth: Optional[Sequence[float]] = None,
) -> PointQueryResult:
    """Answer a single point query, optionally attaching the true value."""
    estimate = sketch.query(index)
    true_value = None if truth is None else float(np.asarray(truth)[index])
    return PointQueryResult(index=int(index), estimate=estimate, truth=true_value)


@deprecated_entry_point("repro.api.SketchSession.query(kind='point', index=...)")
def point_query(
    sketch: Sketch,
    index: int,
    truth: Optional[Sequence[float]] = None,
) -> PointQueryResult:
    """Answer a single point query, optionally attaching the true value.

    .. deprecated::
        Use ``SketchSession.query(kind="point", index=...)`` instead.
    """
    return _point_query(sketch, index, truth)


@deprecated_entry_point("repro.api.SketchSession.query(kind='point', index=[...])")
def batch_point_query(
    sketch: Sketch,
    indices: Sequence[int],
    truth: Optional[Sequence[float]] = None,
) -> list:
    """Answer many point queries at once.

    .. deprecated::
        Use ``SketchSession.query(kind="point", index=[...])`` instead.
    """
    return [_point_query(sketch, int(index), truth) for index in indices]
