"""Inner-product estimation between a sketched vector and an explicit vector."""

from __future__ import annotations

import numpy as np

from repro.sketches.base import Sketch
from repro.utils.validation import ensure_1d_float_array


def inner_product_estimate(sketch: Sketch, y) -> float:
    """Estimate ``⟨x, y⟩`` where ``x`` is the sketched vector and ``y`` is given.

    The estimator is ``⟨x̂, y⟩`` with ``x̂`` the sketch's recovered vector; by
    Hölder its error is bounded by ``‖x - x̂‖_∞ · ‖y‖_1``, so the bias-aware
    sketches' tighter ℓ∞ guarantee carries over directly.
    """
    arr = ensure_1d_float_array(y, "y")
    if arr.size != sketch.dimension:
        raise ValueError(
            f"y has dimension {arr.size}, sketch expects {sketch.dimension}"
        )
    return float(np.dot(sketch.recover(), arr))
