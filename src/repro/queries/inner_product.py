"""Inner-product estimation between a sketched vector and an explicit vector."""

from __future__ import annotations

import numpy as np

from repro.sketches.base import Sketch
from repro.utils.deprecation import deprecated_entry_point
from repro.utils.validation import ensure_1d_float_array


def _inner_product_estimate(sketch: Sketch, y) -> float:
    """Estimate ``⟨x, y⟩`` where ``x`` is the sketched vector and ``y`` is given.

    The estimator is ``⟨x̂, y⟩`` with ``x̂`` the sketch's recovered vector; by
    Hölder its error is bounded by ``‖x - x̂‖_∞ · ‖y‖_1``, so the bias-aware
    sketches' tighter ℓ∞ guarantee carries over directly.
    """
    arr = ensure_1d_float_array(y, "y")
    if arr.size != sketch.dimension:
        raise ValueError(
            f"y has dimension {arr.size}, sketch expects {sketch.dimension}"
        )
    return float(np.dot(sketch.recover(), arr))


@deprecated_entry_point("repro.api.SketchSession.query(kind='inner_product', vector=...)")
def inner_product_estimate(sketch: Sketch, y) -> float:
    """Estimate ``⟨x, y⟩`` for an explicit vector ``y``.

    .. deprecated::
        Use ``SketchSession.query(kind="inner_product", vector=y)`` instead.
    """
    return _inner_product_estimate(sketch, y)
