"""Inner-product estimation between a sketched vector and an explicit vector."""

from __future__ import annotations

import numpy as np

from repro.sketches.base import SCAN_BLOCK, Sketch
from repro.utils.deprecation import deprecated_entry_point
from repro.utils.validation import ensure_1d_float_array


def _inner_product_estimate(sketch: Sketch, y) -> float:
    """Estimate ``⟨x, y⟩`` where ``x`` is the sketched vector and ``y`` is given.

    The estimator is ``⟨x̂, y⟩`` with ``x̂`` the sketch's recovered vector; by
    Hölder its error is bounded by ``‖x - x̂‖_∞ · ‖y‖_1``, so the bias-aware
    sketches' tighter ℓ∞ guarantee carries over directly.  The dot product
    is accumulated over blocks of batched point queries, so no dense
    ``(n,)`` recovery is materialised.
    """
    if sketch.dimension is None:
        raise ValueError(
            "inner-product estimation requires a bounded dimension; an "
            "unbounded (dimension=None) sketch has no fixed-length vector "
            "to pair y with"
        )
    arr = ensure_1d_float_array(y, "y")
    if arr.size != sketch.dimension:
        raise ValueError(
            f"y has dimension {arr.size}, sketch expects {sketch.dimension}"
        )
    total = 0.0
    for start in range(0, arr.size, SCAN_BLOCK):
        stop = min(start + SCAN_BLOCK, arr.size)
        block = np.arange(start, stop)
        total += float(np.dot(sketch.query_batch(block), arr[start:stop]))
    return total


@deprecated_entry_point("repro.api.SketchSession.query(kind='inner_product', vector=...)")
def inner_product_estimate(sketch: Sketch, y) -> float:
    """Estimate ``⟨x, y⟩`` for an explicit vector ``y``.

    .. deprecated::
        Use ``SketchSession.query(kind="inner_product", vector=y)`` instead.
    """
    return _inner_product_estimate(sketch, y)
