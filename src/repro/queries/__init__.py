"""Statistical queries built on top of recovering sketches.

The paper motivates the point-query primitive as the building block for the
standard repertoire of frequency-vector queries (Section 1: "point query,
frequent elements, range query, etc.").  This package provides those derived
queries over any sketch implementing the :class:`~repro.sketches.base.Sketch`
interface — in particular over the bias-aware sketches, whose improved point
estimates translate directly into better heavy-hitter and range answers on
biased data.
"""

from repro.queries.point import PointQueryResult, batch_point_query, point_query
from repro.queries.heavy_hitters import HeavyHitter, heavy_hitters
from repro.queries.range_query import range_sum
from repro.queries.inner_product import inner_product_estimate
from repro.queries.quantiles import approximate_quantile
from repro.queries.dyadic import DyadicRangeSketch
from repro.queries.topk import StreamingTopK, TopKEntry

__all__ = [
    "PointQueryResult",
    "batch_point_query",
    "point_query",
    "HeavyHitter",
    "heavy_hitters",
    "range_sum",
    "inner_product_estimate",
    "approximate_quantile",
    "DyadicRangeSketch",
    "StreamingTopK",
    "TopKEntry",
]
