"""Range-sum queries on top of point queries.

A range query asks for ``Σ_{i ∈ [low, high)} x_i``.  With only a point-query
sketch available the natural estimator sums the point estimates over the
range; its error grows with the range length, which is acceptable for the
short ranges typical of time-windowed count vectors (the WorldCup / Wiki
workloads).  For a bias-aware sketch the estimate decomposes into
``(range length)·β̂`` plus the sum of the de-biased estimates, so the bias is
accounted for exactly rather than once per coordinate.
"""

from __future__ import annotations

import numpy as np

from repro.sketches.base import SCAN_BLOCK, Sketch
from repro.utils.deprecation import deprecated_entry_point
from repro.utils.validation import require_index

#: widest key range an unbounded (dimension=None) sketch will evaluate —
#: every key in the range costs one point query, and a sparse 64-bit key
#: space makes arbitrarily wide ranges a near-infinite loop of hash noise
MAX_UNBOUNDED_RANGE = 1 << 24


def _range_sum(sketch: Sketch, low: int, high: int) -> float:
    """Estimate ``Σ_{i=low}^{high-1} x_i`` by summing batched point estimates.

    ``low`` is inclusive, ``high`` exclusive; both must address coordinates of
    the sketch's vector, and ``high`` may equal the dimension.  The range is
    evaluated in blocks of batched point queries rather than one python-loop
    query per coordinate, so long ranges run at numpy speed in O(block)
    memory — which also makes key-range queries usable in hashed-key mode
    (``dimension=None``), for ranges up to :data:`MAX_UNBOUNDED_RANGE` keys
    (every key costs one point query; a wider span over a sparse 64-bit key
    space would sum hash noise for hours).
    """
    low = require_index(low, sketch.dimension, "low")
    if sketch.dimension is None or high != sketch.dimension:
        high = require_index(high, sketch.dimension, "high")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    if sketch.dimension is None and high - low > MAX_UNBOUNDED_RANGE:
        raise ValueError(
            f"range [{low}, {high}) spans {high - low} keys; an unbounded "
            f"(dimension=None) sketch evaluates ranges of at most "
            f"{MAX_UNBOUNDED_RANGE} keys — query narrower ranges or "
            "candidate key sets instead"
        )
    total = 0.0
    for start in range(low, high, SCAN_BLOCK):
        block = np.arange(start, min(start + SCAN_BLOCK, high))
        total += float(np.sum(sketch.query_batch(block)))
    return total


@deprecated_entry_point("repro.api.SketchSession.query(kind='range', low=..., high=...)")
def range_sum(sketch: Sketch, low: int, high: int) -> float:
    """Estimate ``Σ_{i=low}^{high-1} x_i`` by summing point estimates.

    .. deprecated::
        Use ``SketchSession.query(kind="range", low=..., high=...)`` instead.
    """
    return _range_sum(sketch, low, high)
