"""Range-sum queries on top of point queries.

A range query asks for ``Σ_{i ∈ [low, high)} x_i``.  With only a point-query
sketch available the natural estimator sums the point estimates over the
range; its error grows with the range length, which is acceptable for the
short ranges typical of time-windowed count vectors (the WorldCup / Wiki
workloads).  For a bias-aware sketch the estimate decomposes into
``(range length)·β̂`` plus the sum of the de-biased estimates, so the bias is
accounted for exactly rather than once per coordinate.
"""

from __future__ import annotations

from repro.sketches.base import Sketch
from repro.utils.deprecation import deprecated_entry_point
from repro.utils.validation import require_index


def _range_sum(sketch: Sketch, low: int, high: int) -> float:
    """Estimate ``Σ_{i=low}^{high-1} x_i`` by summing point estimates.

    ``low`` is inclusive, ``high`` exclusive; both must address coordinates of
    the sketch's vector, and ``high`` may equal the dimension.
    """
    low = require_index(low, sketch.dimension, "low")
    if high != sketch.dimension:
        high = require_index(high, sketch.dimension, "high")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    return float(sum(sketch.query(index) for index in range(low, high)))


@deprecated_entry_point("repro.api.SketchSession.query(kind='range', low=..., high=...)")
def range_sum(sketch: Sketch, low: int, high: int) -> float:
    """Estimate ``Σ_{i=low}^{high-1} x_i`` by summing point estimates.

    .. deprecated::
        Use ``SketchSession.query(kind="range", low=..., high=...)`` instead.
    """
    return _range_sum(sketch, low, high)
