"""Dyadic range sketches: O(log n)-cost range queries over a sketched vector.

Summing point estimates over a range (``repro.queries.range_query``) costs one
query per coordinate and accumulates one sketch-error per coordinate.  The
classical remedy is a *dyadic* structure: keep one sketch per dyadic level,
where level ``ℓ`` summarises the vector of ``2^ℓ``-aligned block sums; any
range ``[low, high)`` decomposes into at most ``2·log n`` dyadic blocks, so a
range query touches O(log n) point queries and accumulates O(log n) errors.

The structure is generic over the underlying sketch: pass any registry name,
including the bias-aware ones — for a biased vector the level-ℓ vector has
bias ``2^ℓ·β``, still a single common bias, so the bias-aware guarantee keeps
paying off at every level.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.sketches.registry import get_spec
from repro.utils.rng import RandomSource, derive_seed
from repro.utils.validation import ensure_1d_float_array, require_positive_int


class DyadicRangeSketch:
    """A stack of sketches over dyadic aggregations of the input vector.

    Parameters
    ----------
    dimension:
        Dimension ``n`` of the base vector (padded internally to a power of 2).
    width, depth:
        Sketch configuration shared by every level.
    algorithm:
        Registry name of the underlying sketch (default: the ℓ2 bias-aware
        sketch).
    max_levels:
        Cap on the number of levels above the base one (default: all the way
        to a single block).
    seed:
        Base seed; each level derives its own child seed.
    """

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        algorithm: str = "l2_sr",
        max_levels: Optional[int] = None,
        seed: RandomSource = None,
    ) -> None:
        self.dimension = require_positive_int(dimension, "dimension")
        self.width = require_positive_int(width, "width")
        self.depth = require_positive_int(depth, "depth")
        self.algorithm = algorithm
        self.seed = seed

        self._padded = 1 << max(1, math.ceil(math.log2(self.dimension)))
        total_levels = int(math.log2(self._padded)) + 1
        if max_levels is not None:
            total_levels = min(total_levels, require_positive_int(
                max_levels, "max_levels") + 1)
        self.levels = total_levels

        spec = get_spec(algorithm)
        self._sketches = []
        for level in range(self.levels):
            level_dimension = max(1, self._padded >> level)
            level_width = min(self.width, max(4, level_dimension))
            self._sketches.append(
                spec.build(
                    level_dimension,
                    level_width,
                    depth,
                    seed=derive_seed(seed, 7_000 + level),
                )
            )

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        """Apply ``x[index] += delta`` to every level."""
        if not (0 <= index < self.dimension):
            raise IndexError(
                f"index must be in [0, {self.dimension}), got {index}"
            )
        for level, sketch in enumerate(self._sketches):
            sketch.update(index >> level, float(delta))

    def fit(self, x) -> "DyadicRangeSketch":
        """Ingest a whole vector (each level sketches its block-sum vector)."""
        arr = ensure_1d_float_array(x, "x")
        if arr.size != self.dimension:
            raise ValueError(
                f"vector has dimension {arr.size}, structure expects "
                f"{self.dimension}"
            )
        padded = np.zeros(self._padded, dtype=np.float64)
        padded[: self.dimension] = arr
        current = padded
        for sketch in self._sketches:
            sketch.fit(current[: sketch.dimension])
            if current.size > 1:
                current = current.reshape(-1, 2).sum(axis=1)
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def point_query(self, index: int) -> float:
        """Point query from the base level."""
        if not (0 <= index < self.dimension):
            raise IndexError(
                f"index must be in [0, {self.dimension}), got {index}"
            )
        return self._sketches[0].query(index)

    def range_sum(self, low: int, high: int) -> float:
        """Estimate ``Σ_{i in [low, high)} x_i`` from O(log n) point queries.

        The blocks of each level are estimated with one batched point query
        per level instead of a python loop of scalar queries.
        """
        if not (0 <= low <= high <= self.dimension):
            raise ValueError(
                f"range [{low}, {high}) must lie within [0, {self.dimension}]"
            )
        blocks_per_level = {}
        for level, start, end in self._decompose(low, high):
            blocks_per_level.setdefault(level, []).append(np.arange(start, end))
        total = 0.0
        for level, pieces in blocks_per_level.items():
            blocks = np.concatenate(pieces)
            total += float(np.sum(self._sketches[level].query_batch(blocks)))
        return float(total)

    def _decompose(self, low: int, high: int) -> List[tuple]:
        """Split [low, high) into maximal dyadic blocks: (level, start, end)."""
        pieces = []
        level = 0
        while low < high and level < self.levels - 1:
            if low % 2 == 1:
                pieces.append((level, low, low + 1))
                low += 1
            if high % 2 == 1:
                high -= 1
                pieces.append((level, high, high + 1))
            low //= 2
            high //= 2
            level += 1
        if low < high:
            pieces.append((level, low, high))
        return pieces

    def size_in_words(self) -> int:
        """Total counter words across all levels."""
        return sum(sketch.size_in_words() for sketch in self._sketches)

    def queries_per_range(self, low: int, high: int) -> int:
        """Number of point queries a range decomposes into (for tests/benches)."""
        return sum(end - start for _, start, end in self._decompose(low, high))
