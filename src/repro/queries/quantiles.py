"""Approximate quantiles of the recovered frequency vector.

Given the recovered vector x̂, the q-quantile of its coordinate values is a
useful summary of a biased workload (e.g. "the median requests-per-second").
The error of the returned value is bounded by the ℓ∞ recovery error, since
the empirical CDF of x̂ is within that distance of the CDF of x horizontally.
"""

from __future__ import annotations

import numpy as np

from repro.sketches.base import Sketch


def approximate_quantile(sketch: Sketch, q: float) -> float:
    """Return the q-quantile of the recovered coordinate values.

    ``q`` must lie in [0, 1]; ``q = 0.5`` gives the (approximate) median
    coordinate value, which for a strongly biased vector is essentially the
    bias itself.
    """
    q = float(q)
    if not (0.0 <= q <= 1.0):
        raise ValueError(f"q must lie in [0, 1], got {q}")
    return float(np.quantile(sketch.recover(), q))
