"""Exceptions of the :mod:`repro.server` front door.

Three failure families are distinguished, mirroring where the fault lies:

* :class:`ProtocolError` — the *bytes* are wrong: a frame with a bad magic,
  an unsupported protocol version, a header that is not valid JSON, or a
  frame larger than the negotiated cap (:class:`FrameTooLargeError`).
  Subclasses :class:`~repro.serialization.SerializationError`, so callers
  (and the CLI's one-line error path) that already handle malformed wire
  payloads handle malformed frames without new plumbing.
* :class:`ConnectionFailedError` — the *transport* is wrong: the server is
  not listening, refused the connection, or hung up mid-request (e.g. a
  drain closed the socket under the client).
* :class:`RemoteOperationError` — the bytes and transport are fine but the
  *server* rejected the operation, answering an error frame; carries the
  server's machine-readable ``code`` next to its message.
"""

from __future__ import annotations

from repro.serialization import SerializationError


class ServeError(Exception):
    """Base class for every :mod:`repro.server` failure."""


class ProtocolError(ServeError, SerializationError):
    """A malformed frame: bad magic, bad version, or an unparseable header."""


class FrameTooLargeError(ProtocolError):
    """A frame exceeding the connection's maximum frame size."""


class ConnectionFailedError(ServeError, ConnectionError):
    """The server cannot be reached, or it hung up mid-conversation."""


class RemoteOperationError(ServeError, ValueError):
    """The server answered an error frame for a well-formed request.

    Attributes
    ----------
    code:
        The server's machine-readable error code (``"capability"``,
        ``"config"``, ``"protocol"``, ``"shutting-down"``, ``"server"``).
    """

    def __init__(self, message: str, code: str = "server") -> None:
        super().__init__(message)
        self.code = code
