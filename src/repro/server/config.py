"""Validated configuration of one :class:`~repro.server.ReproServer`.

A :class:`ServerConfig` binds the network surface (host/port, frame cap,
queue depth) to the sketch the writer owns (a
:class:`~repro.api.SketchConfig`), the read-replica refresh cadence, and
the optional :mod:`repro.store` URI the server boots from and checkpoints
to.  ``repro serve --config server.json`` builds one from a JSON mapping
via :meth:`ServerConfig.from_mapping`; flags override file keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.api.config import SketchConfig
from repro.api.errors import ConfigError
from repro.server.protocol import DEFAULT_MAX_FRAME_BYTES
from repro.store.uri import is_store_uri
from repro.utils.validation import require_positive_int

#: JSON keys that describe the sketch (forwarded to :class:`SketchConfig`)
_SKETCH_KEYS = ("algorithm", "dimension", "width", "depth", "seed")

#: JSON keys that describe the server itself
_SERVER_KEYS = (
    "host", "port", "store", "shards", "snapshot_interval",
    "snapshot_updates", "queue_depth", "max_frame_bytes",
)


@dataclass(frozen=True)
class ServerConfig:
    """Everything one server process needs, validated eagerly.

    Parameters
    ----------
    sketch:
        The writer session's sketch configuration.  Ignored on boot when
        ``store`` names an existing catalog entry (the restored payload
        carries its own config); used to create the sketch otherwise.
    host, port:
        TCP bind address.  ``port=0`` binds an ephemeral port (the bound
        port is reported by :attr:`ReproServer.port` once started).
    store:
        Optional ``store://PATH#NAME`` URI: restore the newest snapshot on
        boot when the entry exists, and append a checkpoint snapshot on
        graceful shutdown.
    shards:
        Apply ingest batches through the multi-core sharded engine with
        this many shards (``1`` = single-process; linear sketches only).
    snapshot_interval:
        Refresh the read replica at most this many seconds after the first
        un-snapshotted update (bounded staleness, in seconds).
    snapshot_updates:
        Also refresh once this many updates accumulate since the last
        snapshot, so heavy ingest cannot stretch staleness in *update*
        terms either.
    queue_depth:
        Bound of the ingest queue, in batches; a full queue backpressures
        ingest connections instead of growing without limit.
    max_frame_bytes:
        Per-connection cap on one frame's total size, both directions.
    """

    sketch: SketchConfig = field(default=None)  # type: ignore[assignment]
    host: str = "127.0.0.1"
    port: int = 0
    store: Optional[str] = None
    shards: int = 1
    snapshot_interval: float = 0.25
    snapshot_updates: int = 100_000
    queue_depth: int = 64
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.sketch is not None and not isinstance(self.sketch, SketchConfig):
            raise ConfigError(
                f"sketch must be a SketchConfig, got "
                f"{type(self.sketch).__name__}"
            )
        if self.sketch is None and self.store is None:
            raise ConfigError(
                "a server needs a sketch to own: pass a SketchConfig, or a "
                "store:// URI naming an existing snapshot to restore"
            )
        if self.store is not None and not is_store_uri(self.store):
            raise ConfigError(
                f"store must be a store://PATH#NAME URI, got {self.store!r}"
            )
        if not isinstance(self.port, int) or not (0 <= self.port <= 65535):
            raise ConfigError(f"port must be in [0, 65535], got {self.port!r}")
        require_positive_int(self.shards, "shards")
        require_positive_int(self.queue_depth, "queue_depth")
        require_positive_int(self.snapshot_updates, "snapshot_updates")
        require_positive_int(self.max_frame_bytes, "max_frame_bytes")
        if not (isinstance(self.snapshot_interval, (int, float))
                and self.snapshot_interval > 0):
            raise ConfigError(
                f"snapshot_interval must be a positive number of seconds, "
                f"got {self.snapshot_interval!r}"
            )
        if self.sketch is not None and self.shards > 1:
            if self.sketch.window is None and not self.sketch.spec.linear:
                raise ConfigError(
                    f"sketch {self.sketch.name!r} is not linear and cannot "
                    "apply ingest batches with shards > 1"
                )

    def replace(self, **changes: Any) -> "ServerConfig":
        """A new config with the given fields overridden (re-validated)."""
        return replace(self, **changes)

    @classmethod
    def from_mapping(
        cls,
        mapping: Mapping[str, Any],
        *,
        sketch: Optional[SketchConfig] = None,
        **overrides: Any,
    ) -> "ServerConfig":
        """Build a config from a JSON-style mapping (``repro serve --config``).

        Recognised keys: the sketch description (``algorithm``,
        ``dimension``, ``width``, ``depth``, ``seed``, plus ``window`` as a
        :meth:`~repro.streaming.windows.WindowSpec.to_dict` mapping and an
        ``options`` mapping of algorithm kwargs) and the server fields of
        this class.  ``sketch``/keyword ``overrides`` win over file keys;
        unknown keys are rejected so a typo cannot silently fall back to a
        default.
        """
        if not isinstance(mapping, Mapping):
            raise ConfigError(
                f"server config must be a JSON object, got "
                f"{type(mapping).__name__}"
            )
        known = set(_SKETCH_KEYS) | set(_SERVER_KEYS) | {"window", "options"}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ConfigError(
                f"unknown server config key(s) {unknown}; known keys: "
                f"{sorted(known)}"
            )
        fields: Dict[str, Any] = {
            key: mapping[key] for key in _SERVER_KEYS if key in mapping
        }
        fields.update(overrides)
        if sketch is None and "algorithm" in mapping:
            sketch = SketchConfig(
                mapping["algorithm"],
                dimension=mapping.get("dimension"),
                width=mapping.get("width", 2_048),
                depth=mapping.get("depth", 9),
                seed=mapping.get("seed", 0),
                window=mapping.get("window"),
                **dict(mapping.get("options") or {}),
            )
        return cls(sketch=sketch, **fields)
