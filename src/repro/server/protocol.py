"""Length-prefixed framing for the ingest/query front door.

One frame is one request or one response::

    offset  size       field
    0       4          magic  b"RPRQ" (request) / b"RPRS" (response)
    4       2          protocol version, uint16 little-endian
    6       4          header length H, uint32 little-endian
    10      4          payload length P, uint32 little-endian
    14      H          header, UTF-8 JSON (sorted keys)
    14+H    P          payload, raw bytes

The preamble deliberately mirrors the sketch wire format of
:mod:`repro.serialization` (magic + version + length-prefixed JSON header),
and the payload **is** an existing versioned encoding — no new
serialization is invented:

* ``snapshot`` responses carry a verbatim ``RPSK`` / ``RPWD`` payload
  (:meth:`repro.api.SketchSession.to_bytes`), restorable anywhere with
  :meth:`~repro.api.SketchSession.from_bytes`;
* ``ingest`` requests and ``inner_product`` queries carry raw
  little-endian arrays in exactly the convention of the wire format's
  array payloads (``int64`` indices followed by ``float64`` deltas);
* everything else travels in the JSON header.

The header's ``op`` field names the operation; see :data:`REQUEST_OPS`.
Responses answer with ``ok`` (bool), the operation's result fields, and —
on every query — the ``epoch`` of the read replica that answered, so
clients always know the staleness of what they read.

Both sides enforce a maximum frame size (:data:`DEFAULT_MAX_FRAME_BYTES`);
an oversized frame raises :class:`~repro.server.errors.FrameTooLargeError`
before any allocation is attempted.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.server.errors import FrameTooLargeError, ProtocolError

#: 4-byte magics distinguishing the two frame directions
REQUEST_MAGIC = b"RPRQ"
RESPONSE_MAGIC = b"RPRS"

#: current protocol version (the ``uint16`` following the magic)
PROTOCOL_VERSION = 1

#: magic, version, header length, payload length
FRAME_PREAMBLE = struct.Struct("<4sHII")

#: default cap on one frame's total size (preamble + header + payload)
DEFAULT_MAX_FRAME_BYTES = 64 << 20

#: the operations a request frame may carry
REQUEST_OPS = frozenset(
    {"ping", "ingest", "query", "stats", "snapshot", "flush"}
)


def encode_frame(
    magic: bytes,
    header: Dict[str, Any],
    payload: bytes = b"",
    *,
    max_frame_bytes: Optional[int] = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Encode one frame; raises :class:`FrameTooLargeError` over the cap."""
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    total = FRAME_PREAMBLE.size + len(header_bytes) + len(payload)
    if max_frame_bytes is not None and total > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {total} bytes exceeds the maximum frame size of "
            f"{max_frame_bytes} bytes; split the batch into smaller frames"
        )
    return b"".join((
        FRAME_PREAMBLE.pack(
            magic, PROTOCOL_VERSION, len(header_bytes), len(payload)
        ),
        header_bytes,
        payload,
    ))


def decode_preamble(
    data: bytes,
    expected_magic: bytes,
    *,
    max_frame_bytes: Optional[int] = DEFAULT_MAX_FRAME_BYTES,
) -> Tuple[int, int]:
    """Validate a 14-byte preamble; returns ``(header_len, payload_len)``."""
    if len(data) != FRAME_PREAMBLE.size:
        raise ProtocolError(
            f"frame preamble is {FRAME_PREAMBLE.size} bytes, got {len(data)}"
        )
    magic, version, header_len, payload_len = FRAME_PREAMBLE.unpack(data)
    if magic != expected_magic:
        raise ProtocolError(
            f"bad frame magic {magic!r}; expected {expected_magic!r}"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version}; this build speaks "
            f"version {PROTOCOL_VERSION}"
        )
    total = FRAME_PREAMBLE.size + header_len + payload_len
    if max_frame_bytes is not None and total > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {total} bytes exceeds the maximum frame size of "
            f"{max_frame_bytes} bytes"
        )
    return int(header_len), int(payload_len)


def parse_frame_header(raw: bytes) -> Dict[str, Any]:
    """Decode a frame's JSON header; malformed JSON is a protocol error."""
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got "
            f"{type(header).__name__}"
        )
    return header


async def read_frame(
    reader: asyncio.StreamReader,
    expected_magic: bytes,
    *,
    max_frame_bytes: Optional[int] = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[Tuple[Dict[str, Any], bytes]]:
    """Read one frame from an asyncio stream.

    Returns ``(header, payload)``, or ``None`` on a clean end-of-stream at
    a frame boundary (the peer closed between frames).  A connection that
    dies *inside* a frame raises :class:`ProtocolError`.
    """
    try:
        preamble = await reader.readexactly(FRAME_PREAMBLE.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-preamble ({len(exc.partial)} of "
            f"{FRAME_PREAMBLE.size} bytes)"
        ) from exc
    header_len, payload_len = decode_preamble(
        preamble, expected_magic, max_frame_bytes=max_frame_bytes
    )
    try:
        raw_header = await reader.readexactly(header_len)
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return parse_frame_header(raw_header), payload


# --------------------------------------------------------------------------- #
# update-batch payloads
# --------------------------------------------------------------------------- #
def pack_updates(indices: Any, deltas: Any = None) -> Tuple[bytes, int]:
    """Encode an update batch as raw little-endian arrays.

    The payload is ``count`` ``int64`` indices followed by ``count``
    ``float64`` deltas (unit increments when ``deltas`` is ``None``), the
    exact array convention of the sketch wire format.  Returns
    ``(payload, count)``.
    """
    indices = np.ascontiguousarray(np.asarray(indices, dtype=np.int64))
    if indices.ndim != 1:
        raise ProtocolError(
            f"update indices must be one-dimensional, got shape "
            f"{indices.shape}"
        )
    if deltas is None:
        deltas = np.ones(indices.size, dtype=np.float64)
    elif np.isscalar(deltas):
        deltas = np.full(indices.size, float(deltas), dtype=np.float64)
    else:
        deltas = np.ascontiguousarray(np.asarray(deltas, dtype=np.float64))
        if deltas.shape != indices.shape:
            raise ProtocolError(
                f"deltas shape {deltas.shape} does not match indices shape "
                f"{indices.shape}"
            )
    little = "<i8", "<f8"
    payload = (
        indices.astype(little[0], copy=False).tobytes()
        + deltas.astype(little[1], copy=False).tobytes()
    )
    return payload, int(indices.size)


def unpack_updates(payload: bytes, count: int) -> Tuple[np.ndarray, np.ndarray]:
    """Decode a :func:`pack_updates` payload back into ``(indices, deltas)``."""
    count = int(count)
    if count < 0:
        raise ProtocolError(f"update count must be non-negative, got {count}")
    expected = count * 16
    if len(payload) != expected:
        raise ProtocolError(
            f"update payload of {len(payload)} bytes does not match "
            f"count={count} (expected {expected} bytes)"
        )
    indices = np.frombuffer(payload, dtype="<i8", count=count).astype(
        np.int64, copy=True
    )
    deltas = np.frombuffer(payload, dtype="<f8", count=count,
                           offset=count * 8).astype(np.float64, copy=True)
    return indices, deltas


def pack_vector(vector: Any) -> Tuple[bytes, int]:
    """Encode a dense float64 vector (the ``inner_product`` query payload)."""
    vector = np.ascontiguousarray(np.asarray(vector, dtype=np.float64))
    if vector.ndim != 1:
        raise ProtocolError(
            f"query vectors must be one-dimensional, got shape {vector.shape}"
        )
    return vector.astype("<f8", copy=False).tobytes(), int(vector.size)


def unpack_vector(payload: bytes, count: int) -> np.ndarray:
    """Decode a :func:`pack_vector` payload."""
    count = int(count)
    if len(payload) != count * 8:
        raise ProtocolError(
            f"vector payload of {len(payload)} bytes does not match "
            f"count={count} (expected {count * 8} bytes)"
        )
    return np.frombuffer(payload, dtype="<f8", count=count).astype(
        np.float64, copy=True
    )


def error_header(message: str, code: str = "server") -> Dict[str, Any]:
    """The header of an error response frame."""
    return {"ok": False, "error": str(message), "code": code}
