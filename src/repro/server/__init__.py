"""The asyncio ingest/query front door (``repro serve``).

An HTAP-style split over one :class:`~repro.api.SketchSession`:

* the **writer** owns the live session (warm sharded-ingest pool, windowed
  panes) and applies batched updates from a bounded queue, in order;
* **readers** answer point / heavy-hitter / range / inner-product queries
  from read replicas restored via ``from_bytes`` and refreshed on a
  configurable snapshot cadence — every answer carries the replica's
  ``epoch``, so staleness is always explicit, and the ``snapshot``
  operation returns the verbatim payload behind the current epoch.

>>> from repro.server import Client, ServerConfig, ServerHandle
>>> handle = ServerHandle.start(ServerConfig(sketch=config))
>>> with Client(handle.host, handle.port) as client:
...     client.ingest([3, 5, 3])
...     client.flush()
...     client.point(3).value
>>> handle.stop()
"""

from repro.server.client import AsyncClient, Client, QueryAnswer
from repro.server.config import ServerConfig
from repro.server.errors import (
    ConnectionFailedError,
    FrameTooLargeError,
    ProtocolError,
    RemoteOperationError,
    ServeError,
)
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_MAGIC,
    REQUEST_OPS,
    RESPONSE_MAGIC,
)
from repro.server.service import (
    ReproServer,
    ServerHandle,
    serve_until_signalled,
)

__all__ = [
    "AsyncClient",
    "Client",
    "ConnectionFailedError",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameTooLargeError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryAnswer",
    "REQUEST_MAGIC",
    "REQUEST_OPS",
    "RESPONSE_MAGIC",
    "RemoteOperationError",
    "ReproServer",
    "ServeError",
    "ServerConfig",
    "ServerHandle",
    "serve_until_signalled",
]
