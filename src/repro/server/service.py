"""The asyncio ingest/query front door, split HTAP-style.

One :class:`ReproServer` owns exactly one **writer** and any number of
**readers**:

* the writer path owns the live :class:`~repro.api.SketchSession` (with its
  warm sharded-ingest pool and windowed pane ring, when configured) and is
  the *only* code that mutates it — ingest frames are validated on the
  event loop, enqueued on a **bounded** queue (a full queue backpressures
  the ingesting connection instead of buffering without limit), and applied
  by a single writer task on a dedicated executor thread;
* the reader path answers every query from a **read replica**: a session
  restored via :meth:`~repro.api.SketchSession.from_bytes` from the
  writer's latest snapshot payload and refreshed on a configurable cadence
  (every ``snapshot_interval`` seconds of dirtiness, or every
  ``snapshot_updates`` applied updates, whichever comes first).  Queries
  therefore **never touch the ingest session**; every query response
  carries the replica's ``epoch`` so clients know exactly how stale their
  read is, and the ``snapshot`` operation returns the verbatim payload the
  current replica was restored from — answers are bit-identical to a local
  ``from_bytes`` restore of that payload.

Per-connection traffic is accounted through the
:class:`~repro.distributed.network.CommunicationLog` (declared words next
to true serialized bytes — the same reconciliation discipline the
simulated distributed layer uses), surfaced by the ``stats`` operation.

Graceful shutdown (:meth:`ReproServer.drain`, wired to ``SIGTERM`` by
``repro serve``): stop accepting connections, reject new operations with a
``shutting-down`` error, apply every batch already accepted, take a final
snapshot, checkpoint to the configured ``store://`` URI, release the
writer session's worker pool, and close every connection.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.api.config import SketchConfig
from repro.api.errors import CapabilityError, ConfigError
from repro.api.session import SketchSession
from repro.distributed.network import CommunicationLog
from repro.serialization import SerializationError
from repro.server.config import ServerConfig
from repro.server.errors import (
    FrameTooLargeError,
    ProtocolError,
)
from repro.server.protocol import (
    REQUEST_MAGIC,
    REQUEST_OPS,
    RESPONSE_MAGIC,
    encode_frame,
    error_header,
    read_frame,
    unpack_updates,
    unpack_vector,
)
from repro.store import SketchStore, format_store_uri
from repro.store.uri import parse_store_uri


class _Published(NamedTuple):
    """One immutable read-replica publication (swapped atomically)."""

    epoch: int
    replica: SketchSession
    payload: bytes
    items: int


class _Drain(NamedTuple):
    """Writer-queue sentinel: apply nothing further, settle and stop."""

    future: asyncio.Future


class _Flush(NamedTuple):
    """Writer-queue sentinel: refresh the replica now, resolve with epoch."""

    future: asyncio.Future


class _Batch(NamedTuple):
    """One accepted ingest batch, in arrival order."""

    indices: np.ndarray
    deltas: np.ndarray


class ReproServer:
    """The asyncio TCP service over one writer session and its replicas.

    >>> server = ReproServer(ServerConfig(sketch=config, port=0))
    >>> await server.start()
    >>> server.port                      # the bound port
    >>> ...
    >>> summary = await server.drain()   # graceful shutdown

    The server is single-writer by construction: every mutation of the
    ingest session happens on one executor thread, in arrival order.
    """

    def __init__(self, config: ServerConfig) -> None:
        self._config = config
        self._session: Optional[SketchSession] = None
        self._restored_from_store = False
        self._published: Optional[_Published] = None
        self._epoch = 0
        self._queue: Optional[asyncio.Queue] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-writer"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._drain_summary: Optional[Dict[str, Any]] = None
        self._drain_lock: Optional[asyncio.Lock] = None

        # accounting
        self._accepted_updates = 0
        self._applied_updates = 0
        self._applied_batches = 0
        self._rejected_batches = 0
        self._last_reject: Optional[str] = None
        self._pending_updates = 0
        self._dirty_since: Optional[float] = None
        self._conn_serial = 0
        self._conn_logs: Dict[str, CommunicationLog] = {}
        self._conn_writers: set = set()
        self._lifetime: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def host(self) -> str:
        return self._config.host

    @property
    def port(self) -> int:
        """The actually-bound TCP port (resolves ``port=0``)."""
        if self._server is None:
            return self._config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def epoch(self) -> int:
        """The epoch of the currently-published read replica."""
        return self._published.epoch if self._published else 0

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def restored_from_store(self) -> bool:
        """Whether the writer session was restored from the store on boot."""
        return self._restored_from_store

    @property
    def sketch_config(self) -> Optional[SketchConfig]:
        """The writer session's (possibly store-restored) sketch config."""
        return self._session.config if self._session is not None else None

    async def start(self) -> "ReproServer":
        """Boot the writer session, publish epoch 0, and start listening."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._session = self._boot_session()
        if not self._session.config.portable:
            raise ConfigError(
                "serving requires an explicit integer seed: the read "
                "replicas are restored from snapshot payloads, which only "
                "seeded sketches can produce"
            )
        if self._config.shards > 1 and not self._session.spec.linear:
            raise ConfigError(
                f"sketch {self._session.config.name!r} is not linear and "
                "cannot apply ingest batches with shards > 1"
            )
        self._drain_lock = asyncio.Lock()
        self._queue = asyncio.Queue(maxsize=self._config.queue_depth)
        await self._refresh_replica(force=True, first=True)
        self._writer_task = asyncio.create_task(
            self._writer_loop(), name="repro-server-writer"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self._config.host, self._config.port
        )
        return self

    def _boot_session(self) -> SketchSession:
        """The writer session: store-restored when possible, fresh otherwise."""
        if self._config.store is not None:
            reference = parse_store_uri(self._config.store)
            if Path(reference.path).exists():
                with SketchStore(reference.path) as store:
                    names = {entry.name for entry in store.list()}
                if reference.name in names:
                    session = SketchSession.open(self._config.store)
                    self._restored_from_store = True
                    return session
            if self._config.sketch is None:
                raise ConfigError(
                    f"store URI {self._config.store!r} names no existing "
                    "snapshot and no sketch config was given; pass the "
                    "sketch to create on first boot"
                )
        return SketchSession.from_config(self._config.sketch)

    async def drain(self) -> Dict[str, Any]:
        """Gracefully shut down; returns a summary (idempotent).

        Ordering: stop accepting connections → reject new operations →
        apply every already-accepted batch → final snapshot → checkpoint to
        the store (when configured) → release the writer session (worker
        pool, shared memory) → close every connection.
        """
        async with self._drain_lock:
            if self._drain_summary is not None:
                return self._drain_summary
            self._draining = True
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            if self._writer_task is not None and not self._writer_task.done():
                future: asyncio.Future = (
                    asyncio.get_running_loop().create_future()
                )
                await self._queue.put(_Drain(future))
                await future
                await self._writer_task
            checkpoint = await self._checkpoint()
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._session.close)
            self._executor.shutdown(wait=True)
            for writer in list(self._conn_writers):
                writer.close()
            self._drain_summary = {
                "updates_accepted": self._accepted_updates,
                "updates_applied": self._applied_updates,
                "batches_applied": self._applied_batches,
                "batches_rejected": self._rejected_batches,
                "final_epoch": self._epoch,
                "items_processed": (
                    self._published.items if self._published else 0
                ),
                "checkpoint": checkpoint,
            }
            return self._drain_summary

    async def _checkpoint(self) -> Optional[str]:
        if self._config.store is None:
            return None
        reference = parse_store_uri(self._config.store)
        destination = format_store_uri(reference.path, reference.name)
        loop = asyncio.get_running_loop()
        return str(
            await loop.run_in_executor(
                self._executor, self._session.save, destination
            )
        )

    # ------------------------------------------------------------------ #
    # writer path
    # ------------------------------------------------------------------ #
    async def _writer_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            timeout = None
            if self._dirty_since is not None:
                due = self._dirty_since + self._config.snapshot_interval
                timeout = max(0.005, due - loop.time())
            try:
                if timeout is None:
                    item = await self._queue.get()
                else:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
            except asyncio.TimeoutError:
                await self._refresh_replica()
                continue
            if isinstance(item, _Drain):
                await self._refresh_replica()
                item.future.set_result(self._epoch)
                return
            if isinstance(item, _Flush):
                await self._refresh_replica()
                item.future.set_result(self._epoch)
                continue
            applied = await loop.run_in_executor(
                self._executor, self._apply_batch, item.indices, item.deltas
            )
            if applied:
                self._applied_batches += 1
                self._applied_updates += applied
                self._pending_updates += applied
                if self._dirty_since is None:
                    self._dirty_since = loop.time()
                if self._pending_updates >= self._config.snapshot_updates:
                    await self._refresh_replica()

    def _apply_batch(self, indices: np.ndarray, deltas: np.ndarray) -> int:
        """Apply one batch on the writer thread; never raises into the loop."""
        try:
            self._session.ingest(
                indices,
                deltas,
                shards=self._config.shards if self._config.shards > 1 else None,
            )
            return int(indices.size)
        except Exception as exc:  # noqa: BLE001 - keep the writer alive
            self._rejected_batches += 1
            self._last_reject = f"{type(exc).__name__}: {exc}"
            return 0

    async def _refresh_replica(self, *, force: bool = False,
                               first: bool = False) -> None:
        """Snapshot the writer session and swap in a fresh read replica."""
        if not force and self._pending_updates == 0:
            self._dirty_since = None
            return
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            self._executor, self._session.to_bytes
        )
        items = await loop.run_in_executor(
            self._executor, lambda: int(self._session.items_processed)
        )
        replica = await loop.run_in_executor(
            self._executor, SketchSession.from_bytes, payload
        )
        if not first:
            self._epoch += 1
        self._published = _Published(self._epoch, replica, payload, items)
        self._pending_updates = 0
        self._dirty_since = None

    # ------------------------------------------------------------------ #
    # reader path (one handler per connection)
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        self._conn_serial += 1
        conn_id = (
            f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) and len(peer) >= 2
            else f"conn-{self._conn_serial}"
        )
        log = CommunicationLog()
        self._conn_logs[conn_id] = log
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    frame = await read_frame(
                        reader, REQUEST_MAGIC,
                        max_frame_bytes=self._config.max_frame_bytes,
                    )
                except FrameTooLargeError as exc:
                    await self._respond(
                        writer, error_header(str(exc), "frame-too-large")
                    )
                    return
                except ProtocolError as exc:
                    await self._respond(
                        writer, error_header(str(exc), "protocol")
                    )
                    return
                if frame is None:
                    return
                header, payload = frame
                response_header, response_payload, words = (
                    await self._dispatch(header, payload)
                )
                sent = await self._respond(
                    writer, response_header, response_payload
                )
                if sent is None:
                    return
                op = header.get("op")
                log.record(
                    sender=conn_id,
                    payload_words=words,
                    description=op if isinstance(op, str) else "?",
                    payload_bytes=len(payload) + sent,
                )
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._fold_connection(conn_id, log)
            self._conn_writers.discard(writer)
            writer.close()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        header: Dict[str, Any],
        payload: bytes = b"",
    ) -> Optional[int]:
        """Send one response frame; returns its size, or ``None`` if gone."""
        try:
            frame = encode_frame(
                RESPONSE_MAGIC, header, payload,
                max_frame_bytes=self._config.max_frame_bytes,
            )
        except FrameTooLargeError as exc:
            frame = encode_frame(
                RESPONSE_MAGIC, error_header(str(exc), "frame-too-large")
            )
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return None
        return len(frame)

    async def _dispatch(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes, int]:
        """Route one request; returns ``(header, payload, declared_words)``."""
        op = header.get("op")
        if op not in REQUEST_OPS:
            return (
                error_header(
                    f"unknown operation {op!r}; known operations: "
                    f"{sorted(REQUEST_OPS)}",
                    "protocol",
                ),
                b"",
                0,
            )
        if self._draining and op not in ("stats", "ping"):
            return (
                error_header(
                    "server is shutting down; no further "
                    f"{op} operations are accepted",
                    "shutting-down",
                ),
                b"",
                0,
            )
        handler = getattr(self, f"_op_{op}")
        try:
            return await handler(header, payload)
        except ProtocolError as exc:
            return error_header(str(exc), "protocol"), b"", 0
        except CapabilityError as exc:
            return error_header(str(exc), "capability"), b"", 0
        except (ConfigError, SerializationError, ValueError, KeyError) as exc:
            detail = exc.args[0] if exc.args else exc
            return error_header(str(detail), "config"), b"", 0
        except Exception as exc:  # noqa: BLE001 - never kill the connection
            return (
                error_header(f"{type(exc).__name__}: {exc}", "server"),
                b"",
                0,
            )

    async def _op_ping(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes, int]:
        return {"ok": True, "op": "ping", "epoch": self.epoch}, b"", 0

    async def _op_ingest(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes, int]:
        if "count" not in header:
            raise ProtocolError("ingest frames must carry a 'count' field")
        indices, deltas = unpack_updates(payload, header["count"])
        self._validate_keys(indices)
        if indices.size:
            await self._queue.put(_Batch(indices, deltas))
            self._accepted_updates += indices.size
        return (
            {
                "ok": True,
                "op": "ingest",
                "accepted": int(indices.size),
                "epoch": self.epoch,
                "queued_batches": self._queue.qsize(),
            },
            b"",
            2 * int(indices.size),  # one index word + one delta word each
        )

    def _validate_keys(self, indices: np.ndarray) -> None:
        """Reject out-of-range keys eagerly, on the submitting connection."""
        if not indices.size:
            return
        low = int(indices.min())
        if low < 0:
            raise ConfigError(f"update keys must be non-negative, got {low}")
        dimension = self._session.dimension
        if dimension is not None:
            high = int(indices.max())
            if high >= dimension:
                raise ConfigError(
                    f"update key {high} is out of range for dimension "
                    f"{dimension}"
                )

    async def _op_query(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes, int]:
        published = self._published
        kind = header.get("kind", "point")
        params = dict(header.get("params") or {})
        if kind == "inner_product":
            if "vector_length" not in header:
                raise ProtocolError(
                    "inner_product queries carry the vector as the frame "
                    "payload and must declare 'vector_length'"
                )
            params["vector"] = unpack_vector(
                payload, header["vector_length"]
            )
        result = self._run_query(published.replica, kind, params)
        return (
            {
                "ok": True,
                "op": "query",
                "kind": kind,
                "epoch": published.epoch,
                "items": published.items,
                "result": result,
            },
            b"",
            0,
        )

    @staticmethod
    def _run_query(replica: SketchSession, kind: str, params: Dict[str, Any]):
        """Answer one query on the replica, JSON-safe result out."""
        if kind == "point":
            index = params.get("index")
            if index is None:
                raise ProtocolError("point queries need params.index")
            if isinstance(index, list):
                estimates = replica.query(
                    kind="point", index=np.asarray(index, dtype=np.int64)
                )
                return [float(value) for value in estimates]
            return float(replica.query(kind="point", index=int(index)))
        if kind == "heavy_hitters":
            allowed = {
                "threshold", "phi", "total_mass", "relative_to_bias",
                "top_k", "candidates",
            }
            unknown = sorted(set(params) - allowed)
            if unknown:
                raise ProtocolError(
                    f"unknown heavy_hitters parameter(s) {unknown}"
                )
            if params.get("candidates") is not None:
                params["candidates"] = np.asarray(
                    params["candidates"], dtype=np.int64
                )
            hitters = replica.query(kind="heavy_hitters", **params)
            return [
                [int(h.index), float(h.estimate), float(h.score)]
                for h in hitters
            ]
        if kind == "range":
            if "low" not in params or "high" not in params:
                raise ProtocolError("range queries need params.low and .high")
            return float(
                replica.query(
                    kind="range",
                    low=int(params["low"]),
                    high=int(params["high"]),
                )
            )
        if kind == "inner_product":
            return float(
                replica.query(kind="inner_product", vector=params["vector"])
            )
        raise ProtocolError(
            f"unknown query kind {kind!r}; known kinds: point, "
            "heavy_hitters, range, inner_product"
        )

    async def _op_snapshot(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes, int]:
        published = self._published
        from repro.serialization import payload_word_count
        from repro.streaming.windows import is_window_payload

        words = (
            0 if is_window_payload(published.payload)
            else payload_word_count(published.payload)
        )
        return (
            {
                "ok": True,
                "op": "snapshot",
                "epoch": published.epoch,
                "items": published.items,
            },
            published.payload,
            words,
        )

    async def _op_flush(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes, int]:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Flush(future))
        epoch = await future
        published = self._published
        return (
            {
                "ok": True,
                "op": "flush",
                "epoch": int(epoch),
                "items": published.items,
            },
            b"",
            0,
        )

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @staticmethod
    def _summarize_log(log: CommunicationLog) -> Dict[str, int]:
        summary = {
            "messages": log.message_count,
            "ingest_bytes": 0,
            "ingest_updates": 0,
            "query_bytes": 0,
            "queries": 0,
            "other_bytes": 0,
        }
        for message in log.messages:
            if message.description == "ingest":
                summary["ingest_bytes"] += message.payload_bytes
                summary["ingest_updates"] += message.payload_words // 2
            elif message.description == "query":
                summary["query_bytes"] += message.payload_bytes
                summary["queries"] += 1
            else:
                summary["other_bytes"] += message.payload_bytes
        return summary

    def _fold_connection(self, conn_id: str, log: CommunicationLog) -> None:
        self._conn_logs.pop(conn_id, None)
        self._lifetime[conn_id] = self._summarize_log(log)

    async def _op_stats(
        self, header: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes, int]:
        live = {
            conn_id: self._summarize_log(log)
            for conn_id, log in self._conn_logs.items()
        }
        connections = dict(self._lifetime)
        connections.update(live)
        totals = {
            "ingest_bytes": 0, "ingest_updates": 0, "query_bytes": 0,
            "queries": 0, "other_bytes": 0, "messages": 0,
        }
        for summary in connections.values():
            for key in totals:
                totals[key] += summary.get(key, 0)
        return (
            {
                "ok": True,
                "op": "stats",
                "epoch": self.epoch,
                "draining": self._draining,
                "updates_accepted": self._accepted_updates,
                "updates_applied": self._applied_updates,
                "batches_applied": self._applied_batches,
                "batches_rejected": self._rejected_batches,
                "last_reject": self._last_reject,
                "queued_batches": self._queue.qsize(),
                "snapshot_items": (
                    self._published.items if self._published else 0
                ),
                "connections": connections,
                "totals": totals,
            },
            b"",
            0,
        )


# --------------------------------------------------------------------------- #
# running a server
# --------------------------------------------------------------------------- #
async def serve_until_signalled(
    config: ServerConfig,
    *,
    on_ready=None,
    signals: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> Dict[str, Any]:
    """Run a server until SIGTERM/SIGINT, then drain; returns the summary.

    ``on_ready`` (if given) is called with the started :class:`ReproServer`
    once it is accepting connections — ``repro serve`` prints its boot
    banner from there.
    """
    server = ReproServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed: List[int] = []
    for signum in signals:
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        if on_ready is not None:
            on_ready(server)
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
    return await server.drain()


class ServerHandle:
    """A server running on its own event-loop thread, for synchronous callers.

    The sync :class:`~repro.server.Client`, the load-generator benchmark and
    the examples need a live TCP server without owning an event loop;
    :meth:`start` boots one on a daemon thread and :meth:`stop` drains it::

        handle = ServerHandle.start(ServerConfig(sketch=config))
        with Client(handle.host, handle.port) as client:
            ...
        summary = handle.stop()
    """

    def __init__(self) -> None:
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._server: Optional[ReproServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._summary: Optional[Dict[str, Any]] = None
        self._port: Optional[int] = None

    @classmethod
    def start(cls, config: ServerConfig, *, timeout: float = 30.0) -> "ServerHandle":
        handle = cls()
        handle._thread = threading.Thread(
            target=handle._run, args=(config,), daemon=True,
            name="repro-server",
        )
        handle._thread.start()
        if not handle._ready.wait(timeout):
            raise RuntimeError("server thread did not come up in time")
        if handle._boot_error is not None:
            raise handle._boot_error
        return handle

    def _run(self, config: ServerConfig) -> None:
        asyncio.run(self._main(config))

    async def _main(self, config: ServerConfig) -> None:
        try:
            server = await ReproServer(config).start()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._boot_error = exc
            self._ready.set()
            return
        self._server = server
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._port = server.port
        self._ready.set()
        await self._stop_event.wait()
        self._summary = await server.drain()

    @property
    def server(self) -> ReproServer:
        return self._server

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._port

    def begin_drain(self) -> None:
        """Initiate a graceful drain without waiting for it to finish."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    def stop(self, *, timeout: float = 30.0) -> Optional[Dict[str, Any]]:
        """Drain the server and join its thread; returns the drain summary."""
        self.begin_drain()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():  # pragma: no cover - stuck drain
                raise RuntimeError("server thread did not drain in time")
        return self._summary
