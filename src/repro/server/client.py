"""Thin clients for the ingest/query front door.

:class:`Client` is synchronous (plain sockets — usable from scripts, the
CLI, tests, and thread-based load generators); :class:`AsyncClient` is the
same surface over asyncio streams.  Both speak the frame protocol of
:mod:`repro.server.protocol` and translate the three failure families into
the typed errors of :mod:`repro.server.errors`:

* transport failures (refused, reset, closed mid-frame) →
  :class:`~repro.server.errors.ConnectionFailedError`;
* malformed frames (including a response over the frame cap) →
  :class:`~repro.server.errors.ProtocolError` /
  :class:`~repro.server.errors.FrameTooLargeError`;
* server-side rejections (error frames) →
  :class:`~repro.server.errors.RemoteOperationError` with the server's
  machine-readable ``code``.

Every query answer carries the ``epoch`` of the read replica that answered
(:class:`QueryAnswer`), so callers always know the staleness of what they
read.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.queries.heavy_hitters import HeavyHitter
from repro.server.errors import (
    ConnectionFailedError,
    FrameTooLargeError,
    ProtocolError,
    RemoteOperationError,
)
from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_PREAMBLE,
    REQUEST_MAGIC,
    RESPONSE_MAGIC,
    decode_preamble,
    encode_frame,
    pack_updates,
    pack_vector,
    parse_frame_header,
    read_frame,
)


@dataclass(frozen=True)
class QueryAnswer:
    """One query result, stamped with the answering replica's staleness.

    Attributes
    ----------
    value:
        The estimate — a float for ``point``/``range``/``inner_product``
        (a list of floats for a vectorized point query), a list of
        :class:`~repro.queries.heavy_hitters.HeavyHitter` records for
        ``heavy_hitters``.
    epoch:
        Snapshot epoch of the read replica that answered.  Two answers
        with the same epoch came from bit-identical replica state.
    items:
        Items the replica had absorbed when its snapshot was taken.
    """

    value: Any
    epoch: int
    items: int


def _raise_for_error(header: Dict[str, Any]) -> None:
    if header.get("ok", False):
        return
    message = str(header.get("error", "unspecified server error"))
    code = str(header.get("code", "server"))
    if code == "frame-too-large":
        raise FrameTooLargeError(message)
    raise RemoteOperationError(message, code)


def _decode_query(header: Dict[str, Any]) -> QueryAnswer:
    value = header.get("result")
    if header.get("kind") == "heavy_hitters" and isinstance(value, list):
        value = [
            HeavyHitter(index=int(i), estimate=float(e), score=float(s))
            for i, e, s in value
        ]
    return QueryAnswer(
        value=value,
        epoch=int(header.get("epoch", 0)),
        items=int(header.get("items", 0)),
    )


class _RequestMixin:
    """The op surface shared by the sync and async clients.

    Subclasses implement ``_request(header, payload)`` (sync) or
    ``_request_async`` (async); everything else is shared shaping of the
    request headers and decoding of the answers.
    """

    @staticmethod
    def _ingest_request(indices: Any, deltas: Any) -> Tuple[Dict[str, Any], bytes]:
        payload, count = pack_updates(indices, deltas)
        return {"op": "ingest", "count": count}, payload

    @staticmethod
    def _query_request(
        kind: str, params: Optional[Dict[str, Any]]
    ) -> Tuple[Dict[str, Any], bytes]:
        params = dict(params or {})
        payload = b""
        header: Dict[str, Any] = {"op": "query", "kind": kind}
        if kind == "inner_product":
            vector = params.pop("vector", None)
            if vector is None:
                raise ProtocolError("inner_product queries need a vector")
            payload, length = pack_vector(vector)
            header["vector_length"] = length
        if isinstance(params.get("candidates"), np.ndarray):
            params["candidates"] = [int(v) for v in params["candidates"]]
        if isinstance(params.get("index"), np.ndarray):
            params["index"] = [int(v) for v in params["index"]]
        if params:
            header["params"] = params
        return header, payload


class Client(_RequestMixin):
    """Synchronous client over a plain TCP socket.

    >>> with Client(host, port) as client:
    ...     client.ingest([3, 5, 3])
    ...     client.flush()
    ...     answer = client.point(3)
    ...     answer.value, answer.epoch

    One socket, one request in flight at a time (guarded by a lock — the
    client may be shared across threads; each request/response exchange is
    atomic).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._max_frame_bytes = max_frame_bytes
        self._lock = threading.Lock()
        self._address = (host, int(port))
        try:
            self._socket = socket.create_connection(
                self._address, timeout=timeout
            )
        except OSError as exc:
            raise ConnectionFailedError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc

    # -- context management ------------------------------------------------
    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - best-effort close
            pass

    # -- transport ---------------------------------------------------------
    def _read_exactly(self, size: int) -> bytes:
        chunks: List[bytes] = []
        remaining = size
        while remaining:
            try:
                chunk = self._socket.recv(min(remaining, 1 << 20))
            except OSError as exc:
                raise ConnectionFailedError(
                    f"connection to {self._address[0]}:{self._address[1]} "
                    f"failed mid-response: {exc}"
                ) from exc
            if not chunk:
                raise ConnectionFailedError(
                    f"server {self._address[0]}:{self._address[1]} closed "
                    f"the connection mid-response ({size - remaining} of "
                    f"{size} bytes read)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _request(
        self, header: Dict[str, Any], payload: bytes = b""
    ) -> Tuple[Dict[str, Any], bytes]:
        frame = encode_frame(
            REQUEST_MAGIC, header, payload,
            max_frame_bytes=self._max_frame_bytes,
        )
        with self._lock:
            try:
                self._socket.sendall(frame)
            except OSError as exc:
                raise ConnectionFailedError(
                    f"cannot send to {self._address[0]}:{self._address[1]}: "
                    f"{exc}"
                ) from exc
            preamble = self._read_exactly(FRAME_PREAMBLE.size)
            header_len, payload_len = decode_preamble(
                preamble, RESPONSE_MAGIC,
                max_frame_bytes=self._max_frame_bytes,
            )
            raw_header = self._read_exactly(header_len)
            response_payload = self._read_exactly(payload_len)
        response_header = parse_frame_header(raw_header)
        _raise_for_error(response_header)
        return response_header, response_payload

    # -- operations --------------------------------------------------------
    def ping(self) -> int:
        """Round-trip liveness check; returns the current replica epoch."""
        header, _ = self._request({"op": "ping"})
        return int(header["epoch"])

    def ingest(self, indices: Any, deltas: Any = None) -> int:
        """Submit one update batch; returns the number accepted.

        The batch is applied asynchronously by the writer; it becomes
        visible to queries at the next snapshot epoch (use :meth:`flush`
        to force one).
        """
        request, payload = self._ingest_request(indices, deltas)
        header, _ = self._request(request, payload)
        return int(header["accepted"])

    def query(
        self, kind: str = "point", **params: Any
    ) -> QueryAnswer:
        """Run one query; the answer carries the replica's epoch."""
        request, payload = self._query_request(kind, params)
        header, _ = self._request(request, payload)
        return _decode_query(header)

    def point(self, index: Union[int, Any]) -> QueryAnswer:
        return self.query("point", index=index)

    def heavy_hitters(self, **params: Any) -> QueryAnswer:
        return self.query("heavy_hitters", **params)

    def range(self, low: int, high: int) -> QueryAnswer:
        return self.query("range", low=low, high=high)

    def inner_product(self, vector: Any) -> QueryAnswer:
        return self.query("inner_product", vector=vector)

    def flush(self) -> int:
        """Apply every queued batch and refresh the replica; returns epoch."""
        header, _ = self._request({"op": "flush"})
        return int(header["epoch"])

    def snapshot(self) -> Tuple[int, bytes]:
        """The current replica's ``(epoch, verbatim RPSK/RPWD payload)``.

        ``SketchSession.from_bytes(payload)`` restores exactly the state
        that answers queries at this epoch.
        """
        header, payload = self._request({"op": "snapshot"})
        return int(header["epoch"]), payload

    def stats(self) -> Dict[str, Any]:
        """Server counters and per-connection ingest/query byte accounting."""
        header, _ = self._request({"op": "stats"})
        return header


class AsyncClient(_RequestMixin):
    """The same surface as :class:`Client`, over asyncio streams.

    >>> client = await AsyncClient.connect(host, port)
    >>> await client.ingest([3, 5, 3])
    >>> answer = await client.point(3)
    >>> await client.close()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncClient":
        try:
            reader, writer = await asyncio.open_connection(host, int(port))
        except OSError as exc:
            raise ConnectionFailedError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, asyncio.CancelledError):  # pragma: no cover
            pass

    async def _request(
        self, header: Dict[str, Any], payload: bytes = b""
    ) -> Tuple[Dict[str, Any], bytes]:
        frame = encode_frame(
            REQUEST_MAGIC, header, payload,
            max_frame_bytes=self._max_frame_bytes,
        )
        async with self._lock:
            try:
                self._writer.write(frame)
                await self._writer.drain()
                response = await read_frame(
                    self._reader, RESPONSE_MAGIC,
                    max_frame_bytes=self._max_frame_bytes,
                )
            except ProtocolError:
                raise
            except OSError as exc:
                raise ConnectionFailedError(
                    f"connection failed mid-request: {exc}"
                ) from exc
        if response is None:
            raise ConnectionFailedError(
                "server closed the connection before answering"
            )
        response_header, response_payload = response
        _raise_for_error(response_header)
        return response_header, response_payload

    async def ping(self) -> int:
        header, _ = await self._request({"op": "ping"})
        return int(header["epoch"])

    async def ingest(self, indices: Any, deltas: Any = None) -> int:
        request, payload = self._ingest_request(indices, deltas)
        header, _ = await self._request(request, payload)
        return int(header["accepted"])

    async def query(self, kind: str = "point", **params: Any) -> QueryAnswer:
        request, payload = self._query_request(kind, params)
        header, _ = await self._request(request, payload)
        return _decode_query(header)

    async def point(self, index: Union[int, Any]) -> QueryAnswer:
        return await self.query("point", index=index)

    async def heavy_hitters(self, **params: Any) -> QueryAnswer:
        return await self.query("heavy_hitters", **params)

    async def range(self, low: int, high: int) -> QueryAnswer:
        return await self.query("range", low=low, high=high)

    async def inner_product(self, vector: Any) -> QueryAnswer:
        return await self.query("inner_product", vector=vector)

    async def flush(self) -> int:
        header, _ = await self._request({"op": "flush"})
        return int(header["epoch"])

    async def snapshot(self) -> Tuple[int, bytes]:
        header, payload = await self._request({"op": "snapshot"})
        return int(header["epoch"]), payload

    async def stats(self) -> Dict[str, Any]:
        header, _ = await self._request({"op": "stats"})
        return header
