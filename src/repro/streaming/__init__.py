"""Streaming-model substrate.

The paper's streaming model (Section 1) delivers items one at a time: an
arriving item ``i`` corresponds to the update ``x ← x + e_i``; the turnstile
generalisation allows weighted and negative updates ``x ← x + Δ·e_i``.  This
package provides:

* :class:`StreamUpdate` / :class:`UpdateStream` — typed update streams with
  cash-register / turnstile validation,
* generators turning frequency vectors, item sequences or edge streams into
  update streams,
* :class:`StreamRunner` — replays a stream into one or more sketches while
  measuring per-update and per-query cost, which is what the Figure 6 timing
  comparison uses,
* :func:`ingest_stream_sharded` — multi-core sharded ingestion: the stream
  is partitioned across worker processes, each replays its shard into a
  local sketch via the batched path, and the serialized results are merged
  (linearity makes the partition lossless).
"""

from repro.streaming.stream import StreamKind, StreamUpdate, UpdateStream
from repro.streaming.generators import (
    stream_from_edges,
    stream_from_items,
    stream_from_vector,
)
from repro.streaming.runner import StreamReport, StreamRunner
from repro.streaming.sharded import (
    ShardedIngestReport,
    ingest_stream_sharded,
    shard_arrays,
)
from repro.streaming.trace import (
    read_csv_trace,
    read_npz_trace,
    write_csv_trace,
    write_npz_trace,
)

__all__ = [
    "StreamKind",
    "StreamUpdate",
    "UpdateStream",
    "stream_from_edges",
    "stream_from_items",
    "stream_from_vector",
    "StreamReport",
    "StreamRunner",
    "ShardedIngestReport",
    "ingest_stream_sharded",
    "shard_arrays",
    "read_csv_trace",
    "read_npz_trace",
    "write_csv_trace",
    "write_npz_trace",
]
