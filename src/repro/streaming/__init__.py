"""Streaming-model substrate.

The paper's streaming model (Section 1) delivers items one at a time: an
arriving item ``i`` corresponds to the update ``x ← x + e_i``; the turnstile
generalisation allows weighted and negative updates ``x ← x + Δ·e_i``.  This
package provides:

* :class:`StreamUpdate` / :class:`UpdateStream` — typed update streams with
  cash-register / turnstile validation,
* generators turning frequency vectors, item sequences or edge streams into
  update streams,
* :class:`StreamRunner` — replays a stream into one or more sketches while
  measuring per-update and per-query cost, which is what the Figure 6 timing
  comparison uses,
* :class:`ShardedIngestPool` — multi-core sharded ingestion over a
  persistent pool of worker processes sharing counter memory with the
  parent: the stream is partitioned into contiguous slices, each worker
  scatter-adds its slices into a shared-memory counter block via the
  batched path, and the parent folds the blocks with vectorized ``+=``
  (linearity makes the partition lossless; no counters are serialized),
* :class:`WindowSpec` / :class:`SlidingWindowSketch` — sliding-window
  sketching over the pane-merge algebra (see below).

The pane-ring model
-------------------
The whole-stream model above summarises everything since time zero; the
windowing layer in :mod:`repro.streaming.windows` bounds queries to *recent*
updates instead.  The stream is chopped into **panes** — fixed-size chunks,
by update count or by timestamp span — and each pane is summarised by its
own sketch.  A :class:`SlidingWindowSketch` keeps a **ring** of the ``k``
most recent panes (one open pane receiving updates plus up to ``k - 1``
closed ones); crossing a pane boundary rotates the ring and evicts the
oldest pane, which is how updates age out of the window in O(1) sketch
operations.  Queries are answered from a **lazily-rebuilt merged view**:
the live panes merged through ``LinearSketch.merge``, recomputed only when
the window changed since the last query.  Three modes ride the same ring:

* ``tumbling`` — one pane; the window resets at every boundary;
* ``sliding`` — ``k`` panes; the window covers between ``(k-1)`` and ``k``
  panes' worth of the most recent updates;
* ``decay`` — one pane scaled by a constant factor at every boundary
  (``LinearSketch.scale``), so history fades exponentially instead of
  being evicted.

Everything rests on linearity — a sketch of a stream equals the merge of
sketches of its panes — so the conservative-update sketches are rejected
with :class:`~repro.api.CapabilityError`.  Window state (spec, ring
bookkeeping, every live pane) serializes to a versioned binary container
via ``SlidingWindowSketch.to_bytes`` and reopens anywhere, exactly like a
bare sketch.
"""

from repro.streaming.stream import StreamKind, StreamUpdate, UpdateStream
from repro.streaming.generators import (
    stream_from_edges,
    stream_from_items,
    stream_from_vector,
)
from repro.streaming.runner import StreamReport, StreamRunner
from repro.streaming.sharded import (
    ShardedIngestPool,
    ShardedIngestReport,
    ingest_stream_sharded,
    shard_arrays,
)
from repro.streaming.trace import (
    read_csv_trace,
    read_npz_trace,
    write_csv_trace,
    write_npz_trace,
)
# windows must come after sharded/stream: it participates in an import cycle
# with repro.api (api.config/api.session import those siblings lazily)
from repro.streaming.windows import (
    SlidingWindowSketch,
    WindowSpec,
    is_window_payload,
)

__all__ = [
    "StreamKind",
    "StreamUpdate",
    "UpdateStream",
    "stream_from_edges",
    "stream_from_items",
    "stream_from_vector",
    "StreamReport",
    "StreamRunner",
    "ShardedIngestPool",
    "ShardedIngestReport",
    "ingest_stream_sharded",
    "shard_arrays",
    "read_csv_trace",
    "read_npz_trace",
    "write_csv_trace",
    "write_npz_trace",
    "SlidingWindowSketch",
    "WindowSpec",
    "is_window_payload",
]
