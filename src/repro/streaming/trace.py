"""Reading and writing update-stream traces.

Real deployments replay recorded traces (access logs, edge lists) rather than
synthetic generators.  This module defines a minimal, dependency-free trace
format and the corresponding reader/writer:

* **CSV traces** — one ``index,delta`` pair per line, with an optional header
  line ``# dimension=<n> kind=<cash_register|turnstile>``.  Human-readable,
  diff-able, good for small traces and examples.
* **NPZ traces** — the indices and deltas as two numpy arrays plus metadata;
  compact and fast for large traces.

Both round-trip exactly through :class:`~repro.streaming.stream.UpdateStream`.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.streaming.stream import StreamKind, StreamUpdate, UpdateStream

PathLike = Union[str, pathlib.Path]


def write_csv_trace(stream: UpdateStream, path: PathLike) -> None:
    """Write a stream as a CSV trace with a metadata header line."""
    path = pathlib.Path(path)
    lines = [f"# dimension={stream.dimension} kind={stream.kind.value}"]
    for update in stream:
        delta = update.delta
        rendered = str(int(delta)) if float(delta).is_integer() else repr(delta)
        lines.append(f"{update.index},{rendered}")
    path.write_text("\n".join(lines) + "\n")


def read_csv_trace(path: PathLike) -> UpdateStream:
    """Read a CSV trace written by :func:`write_csv_trace`."""
    path = pathlib.Path(path)
    lines = path.read_text().splitlines()
    if not lines or not lines[0].startswith("#"):
        raise ValueError(
            f"trace {path} is missing the '# dimension=... kind=...' header"
        )
    header = dict(
        part.split("=", 1) for part in lines[0].lstrip("# ").split() if "=" in part
    )
    if "dimension" not in header:
        raise ValueError(f"trace {path} header does not declare a dimension")
    dimension = int(header["dimension"])
    kind = StreamKind(header.get("kind", "cash_register"))

    stream = UpdateStream(dimension, kind=kind)
    for line_number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            index_text, delta_text = line.split(",", 1)
            stream.append(StreamUpdate(int(index_text), float(delta_text)))
        except (ValueError, IndexError) as error:
            raise ValueError(
                f"malformed trace line {line_number} in {path}: {line!r}"
            ) from error
    return stream


def write_npz_trace(stream: UpdateStream, path: PathLike) -> None:
    """Write a stream as a compressed ``.npz`` trace."""
    path = pathlib.Path(path)
    np.savez_compressed(
        path,
        indices=stream.indices(),
        deltas=stream.deltas(),
        dimension=np.int64(stream.dimension),
        kind=np.array(stream.kind.value),
    )


def read_npz_trace(path: PathLike) -> UpdateStream:
    """Read an ``.npz`` trace written by :func:`write_npz_trace`."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        indices = data["indices"]
        deltas = data["deltas"]
        dimension = int(data["dimension"])
        kind = StreamKind(str(data["kind"]))
    stream = UpdateStream(dimension, kind=kind)
    for index, delta in zip(indices, deltas):
        stream.append(StreamUpdate(int(index), float(delta)))
    return stream
