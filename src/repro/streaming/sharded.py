"""Multi-core sharded ingestion: a persistent worker pool over shared memory.

This is the single-machine incarnation of the paper's distributed model: a
linear sketch of a stream equals the merge of linear sketches of any
partition of that stream, so ingestion parallelises perfectly.  The engine
exploits that algebra **zero-copy**:

1. a :class:`ShardedIngestPool` spawns its worker processes **once**; each
   worker builds a compatible sketch (same ``(dimension, width, depth,
   seed)``, hence the same hash functions) and binds its counter arrays to a
   per-worker :class:`~repro.sketches._tables.SharedCounterBlock` — disjoint
   memory, no locks;
2. per call, the ``(index, delta)`` arrays are written into a shared updates
   segment and split into ``shards`` contiguous slices; workers receive only
   ``(offset, length)`` descriptors over a pipe and scatter-add their slices
   in place via the vectorised
   :meth:`~repro.sketches.base.Sketch.update_batch` path;
3. the parent folds the shard blocks into the target sketch with vectorized
   ``+=`` (:meth:`~repro.sketches.base.LinearSketch.fold_state`) — no
   pickling of counters in either direction, in contrast to the original
   fork-per-call engine that serialized every shard sketch with ``to_bytes``
   and paid more in round-trips than the parallelism bought.

For linear sketches on integer-weighted streams the folded state is
bit-identical to single-process ingestion (integer scatter-adds are exact in
float64, so summation order cannot matter); for real-weighted streams it
agrees up to floating-point summation order.  Non-linear sketches (CM-CU,
CML-CU) cannot be sharded — their state is order-dependent and unmergeable —
and are rejected up front.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.sketches._tables import SharedCounterBlock
from repro.sketches.base import LinearSketch
from repro.sketches.registry import get_spec
from repro.streaming.stream import UpdateStream
from repro.utils.deprecation import deprecated_entry_point
from repro.utils.validation import ensure_batch_arrays, require_positive_int

#: default update_batch chunk size inside each worker (matches StreamRunner
#: batched-replay sweet spot from the PR-1 benchmark)
DEFAULT_BATCH_SIZE = 8_192

#: smallest capacity (in updates) of the shared updates segment; grows
#: geometrically, so a session streaming ever-larger batches re-maps rarely
MIN_UPDATES_CAPACITY = 1 << 16

#: sentinel distinguishing "dimension not provided" from an explicit
#: ``dimension=None`` (hashed-key mode over an unbounded universe)
_DIMENSION_NOT_PROVIDED = object()

#: reserved field names appended to every worker block: the sketch's scalar
#: state (in sorted name order) and its items-processed counter
_SCALAR_FIELD = "__scalars__"
_ITEMS_FIELD = "__items__"


@dataclass
class ShardedIngestReport:
    """Outcome of one sharded ingestion run.

    Attributes
    ----------
    sketch:
        The sketch the run folded into (a :class:`LinearSketch`).
    sketch_name:
        Registry name of the algorithm.
    shards:
        Number of shards requested for the split.
    workers:
        Worker processes that actually received work (1 means inline).
    updates:
        Total updates ingested across all shards.
    shard_updates:
        Updates per non-empty shard slice, in stream order.
    payload_bytes:
        Serialized counter bytes that crossed the process boundary per
        shard.  Always 0 on the shared-memory engine (workers and parent
        share the counter storage); kept so report consumers written
        against the fork-per-call engine keep working.
    batch_size:
        ``update_batch`` chunk size used inside the workers.
    elapsed_seconds:
        Wall-clock time of the whole operation (split + workers + fold).
    split_seconds:
        Time spent validating, staging the update arrays into shared
        memory, and dispatching slice descriptors.
    worker_seconds:
        Per participating worker, the in-worker scatter-add time summed
        over its slices (workers run concurrently, so the wall-clock cost
        is their max, not their sum).
    fold_seconds:
        Time the parent spent folding worker blocks into the target.
    bytes_crossed:
        Total counter bytes serialized across the process boundary — ~0 by
        construction on this engine (only slice descriptors travel).
    """

    sketch: LinearSketch
    sketch_name: str
    shards: int
    workers: int
    updates: int
    shard_updates: List[int]
    payload_bytes: List[int]
    batch_size: int
    elapsed_seconds: float
    split_seconds: float = 0.0
    worker_seconds: List[float] = field(default_factory=list)
    fold_seconds: float = 0.0
    bytes_crossed: int = 0


def shard_arrays(
    indices: np.ndarray, deltas: np.ndarray, shards: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split parallel update arrays into at most ``shards`` contiguous slices.

    Contiguity preserves stream order within each shard; for linear sketches
    the partition boundaries are immaterial (merging is exact), contiguous
    slices just avoid any shuffling cost.  Zero-length slices (``shards >
    updates``) are dropped — an empty shard would dispatch a worker task
    that contributes nothing.
    """
    return [
        (indices[start:stop], deltas[start:stop])
        for start, stop in _shard_bounds(indices.size, shards)
    ]


def _shard_bounds(size: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` slice bounds, empty slices dropped."""
    shards = require_positive_int(shards, "shards")
    boundaries = np.linspace(0, size, shards + 1).astype(np.int64)
    return [
        (int(start), int(stop))
        for start, stop in zip(boundaries[:-1], boundaries[1:])
        if stop > start
    ]


def _preferred_context():
    """Fork when available (cheap on Linux); the default context otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _block_layout(sketch: LinearSketch) -> Tuple[Tuple, Tuple[str, ...]]:
    """The worker-block layout for a sketch: state arrays + scalars + items.

    Derived deterministically from the sketch config on both sides of the
    pool, so parent and workers agree byte-for-byte without a header.
    """
    layout = [
        (name, shape, "float64") for name, shape in sketch.shared_state_layout()
    ]
    scalar_names = tuple(sorted(sketch._state_scalars()))
    layout.append((_SCALAR_FIELD, (max(1, len(scalar_names)),), "float64"))
    layout.append((_ITEMS_FIELD, (1,), "int64"))
    return tuple(layout), scalar_names


def _updates_layout(capacity: int) -> Tuple:
    return (("indices", (capacity,), "int64"), ("deltas", (capacity,), "float64"))


def _pool_worker(
    name: str,
    dimension: Optional[int],
    width: int,
    depth: int,
    seed: int,
    options: dict,
    block_name: str,
    block_layout: Tuple,
    scalar_names: Tuple[str, ...],
    task_conn,
    ack_conn,
) -> None:
    """Worker loop: attach once, then scatter-add slices until told to close.

    Module-level (not a closure) so it pickles under every multiprocessing
    start method.  The worker's sketch state lives in its shared block: at
    the first task of a new round it rebuilds a fresh sketch and rebinds
    (which zeroes the block), then accumulates every slice of that round in
    place.  After each slice it publishes its scalar state and item count
    into the block's reserved fields, so by the time the parent has
    collected the round's acks the block holds the complete shard state and
    nothing needs to be sent back.
    """
    spec = get_spec(name)
    block = SharedCounterBlock.attach(block_name, block_layout)
    sketch: Optional[LinearSketch] = None
    last_round = None
    updates_block: Optional[SharedCounterBlock] = None
    updates_name: Optional[str] = None
    try:
        while True:
            message = task_conn.recv()
            if message[0] == "close":
                break
            (_, round_id, seg_name, seg_layout, offset, length,
             batch_size) = message
            started = time.perf_counter()
            try:
                if round_id != last_round:
                    sketch = spec.build(
                        dimension, width, depth, seed=seed, **options
                    )
                    sketch.bind_state_buffers({
                        field_name: block.arrays[field_name]
                        for field_name, _ in sketch.shared_state_layout()
                    })
                    last_round = round_id
                if seg_name != updates_name:
                    if updates_block is not None:
                        updates_block.close()
                    updates_block = SharedCounterBlock.attach(
                        seg_name, seg_layout
                    )
                    updates_name = seg_name
                idx = updates_block.arrays["indices"][offset:offset + length]
                deltas = updates_block.arrays["deltas"][offset:offset + length]
                for start in range(0, length, batch_size):
                    stop = start + batch_size
                    sketch.update_batch(idx[start:stop], deltas[start:stop])
                scalars = sketch._state_scalars()
                if scalar_names:
                    block.arrays[_SCALAR_FIELD][: len(scalar_names)] = [
                        scalars[key] for key in scalar_names
                    ]
                block.arrays[_ITEMS_FIELD][0] = sketch.items_processed
                ack_conn.send(
                    ("done", round_id, time.perf_counter() - started)
                )
            except Exception:  # noqa: BLE001 - report, stay alive
                ack_conn.send(("error", round_id, traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away; nothing left to do
    finally:
        # Drop every reference into the mapped buffers (the bound sketch and
        # the update slices) before closing, so the mmaps actually release
        # instead of deferring to a noisy interpreter-exit retry.
        sketch = None
        idx = deltas = None
        del sketch, idx, deltas
        if updates_block is not None:
            updates_block.close()
        block.close()


def _release_pool_resources(segment_names: List[str], processes: List) -> None:
    """Last-resort cleanup (gc / interpreter exit): kill workers, unlink shm.

    Module-level so the :func:`weakref.finalize` callback holds no reference
    to the pool itself.
    """
    for process in processes:
        try:
            if process.is_alive():
                process.terminate()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
    for segment_name in segment_names:
        try:
            segment = shared_memory.SharedMemory(name=segment_name)
        except Exception:
            continue
        try:
            segment.unlink()
        finally:
            segment.close()


class ShardedIngestPool:
    """A persistent pool of sketching workers over shared-memory counters.

    Spawn once, ingest many times: each worker owns a
    :class:`~repro.sketches._tables.SharedCounterBlock` holding the state
    arrays of one shard sketch, updates are staged in a shared segment and
    described to workers as ``(offset, length)`` slices, and every
    :meth:`ingest` folds the shard blocks into the caller's target sketch
    with vectorized ``+=`` — no counter ever crosses a process boundary.

    Parameters
    ----------
    name:
        Registry name of the sketch algorithm; must be linear.
    dimension:
        Vector dimension, or ``None`` for hashed-key mode (any non-negative
        64-bit key).
    width, depth, seed:
        Sketch geometry; ``seed`` must be an explicit integer so every
        worker derives the same hash functions.
    workers:
        Worker process count (default ``os.cpu_count()``).  A call may
        request more ``shards`` than workers — slices are then assigned
        round-robin, each worker accumulating several slices into its block.
    batch_size:
        Default ``update_batch`` chunk size inside the workers.
    options:
        Algorithm-specific constructor kwargs (the ``options`` of a
        :class:`repro.api.SketchConfig`), forwarded to every worker.

    The pool is a context manager; :meth:`close` (idempotent) terminates the
    workers and unlinks every shared segment.  A :func:`weakref.finalize`
    backstop releases the segments even if the pool is leaked.
    """

    def __init__(
        self,
        name: str,
        dimension: Optional[int],
        width: int,
        depth: int,
        seed: int,
        *,
        workers: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        options: Optional[dict] = None,
    ) -> None:
        spec = get_spec(name)
        if not spec.linear:
            raise ValueError(
                f"sketch {name!r} is not linear; sharded ingestion requires "
                "a mergeable sketch (the conservative-update variants are "
                "order-dependent and cannot be sharded)"
            )
        if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
            raise ValueError(
                "sharded ingestion requires an explicit integer seed so all "
                "workers build compatible sketches"
            )
        self.sketch_name = name
        self.dimension = dimension
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.batch_size = require_positive_int(batch_size, "batch_size")
        self.options = dict(options or {})
        self.workers = max(
            1, int(workers) if workers is not None else (os.cpu_count() or 1)
        )

        # the template never ingests; it anchors compatibility checks and
        # the block layout both sides derive independently
        self._template = spec.build(
            dimension, self.width, self.depth, seed=self.seed, **self.options
        )
        self._layout, self._scalar_names = _block_layout(self._template)
        self._state_fields = [
            field_name
            for field_name, _ in self._template.shared_state_layout()
        ]

        self._round = 0
        self._closed = False
        # cross-thread close coordination: a close() racing an in-flight
        # ingest round must abort the round and only release the shared
        # segments once the round's thread has stopped touching them
        self._state_lock = threading.Lock()
        self._close_requested = False
        self._round_active = False
        self._round_thread: Optional[int] = None
        self._round_done = threading.Event()
        self._round_done.set()
        self._updates: Optional[SharedCounterBlock] = None
        self._updates_capacity = 0
        self._blocks: List[SharedCounterBlock] = []
        self._processes: List = []
        self._task_conns: List = []
        self._ack_conns: List = []
        # mutated in place so the finalizer always sees the live inventory
        self._finalizer_segments: List[str] = []
        self._finalizer = weakref.finalize(
            self, _release_pool_resources,
            self._finalizer_segments, self._processes,
        )

        context = _preferred_context()
        try:
            for _ in range(self.workers):
                block = SharedCounterBlock.create(self._layout)
                self._blocks.append(block)
                self._finalizer_segments.append(block.name)
                task_recv, task_send = context.Pipe(duplex=False)
                ack_recv, ack_send = context.Pipe(duplex=False)
                process = context.Process(
                    target=_pool_worker,
                    args=(
                        name, dimension, self.width, self.depth, self.seed,
                        self.options, block.name, self._layout,
                        self._scalar_names, task_recv, ack_send,
                    ),
                    daemon=True,
                )
                process.start()
                task_recv.close()
                ack_send.close()
                self._processes.append(process)
                self._task_conns.append(task_send)
                self._ack_conns.append(ack_recv)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def segment_names(self) -> List[str]:
        """Names of every live shared-memory segment the pool owns."""
        names = [block.name for block in self._blocks]
        if self._updates is not None:
            names.append(self._updates.name)
        return names

    def close(self) -> None:
        """Terminate the workers and unlink every shared segment.

        Idempotent and safe to call from any thread, including while
        another thread has an ingest round in flight: the round is aborted
        (its :meth:`ingest` call raises ``RuntimeError``), and by the time
        ``close`` returns every worker is gone and every shared-memory
        segment has been released.  The round's own thread performs the
        actual teardown — the shared blocks stay mapped until it has
        stopped touching them.
        """
        while True:
            with self._state_lock:
                if self._closed:
                    return
                if (self._round_active
                        and threading.get_ident() != self._round_thread):
                    # a round is in flight on another thread: ask it to
                    # abort (it checks between ack polls) and wait for its
                    # teardown rather than unlinking memory under it
                    self._close_requested = True
                    waiter = self._round_done
                else:
                    self._closed = True
                    force = self._close_requested
                    waiter = None
            if waiter is None:
                self._teardown(force=force)
                return
            waiter.wait(timeout=60.0)

    def _teardown(self, *, force: bool = False) -> None:
        """Release workers, pipes and segments (callers mark ``_closed``).

        ``force`` skips the polite close handshake and terminates the
        workers outright — used when aborting an in-flight round, where a
        busy worker would not read its task pipe for a while.
        """
        self._finalizer.detach()
        if not force:
            for conn in self._task_conns:
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
        for process in self._processes:
            if force:
                process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        for conn in self._task_conns + self._ack_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for block in self._blocks:
            block.unlink()
            block.close()
        self._blocks = []
        if self._updates is not None:
            self._updates.unlink()
            self._updates.close()
            self._updates = None
        self._finalizer_segments.clear()

    def __enter__(self) -> "ShardedIngestPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _abort(self, reason: str) -> RuntimeError:
        """Shut the pool down and return the error for the caller to raise."""
        self.close()
        return RuntimeError(
            f"sharded ingest pool broken: {reason}; the pool has been shut "
            "down and its shared memory released"
        )

    # ------------------------------------------------------------------ #
    # staging
    # ------------------------------------------------------------------ #
    def _ensure_updates_capacity(self, needed: int) -> None:
        if self._updates is not None and self._updates_capacity >= needed:
            return
        capacity = max(MIN_UPDATES_CAPACITY, self._updates_capacity or 1)
        while capacity < needed:
            capacity *= 2
        old = self._updates
        self._updates = SharedCounterBlock.create(_updates_layout(capacity))
        self._updates_capacity = capacity
        self._finalizer_segments.append(self._updates.name)
        if old is not None:
            # workers drop their stale mapping on the next task (the segment
            # name travels in every descriptor); unlinking now is safe — the
            # memory is reclaimed once the last mapping closes
            try:
                self._finalizer_segments.remove(old.name)
            except ValueError:  # pragma: no cover
                pass
            old.unlink()
            old.close()

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        indices,
        deltas=None,
        *,
        target: LinearSketch,
        shards: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> ShardedIngestReport:
        """Shard one update batch across the pool and fold into ``target``.

        ``target`` must be compatible with the pool's configuration (same
        algorithm, geometry and integer seed); it is mutated in place — on
        return it holds exactly the state single-process
        ``target.update_batch(indices, deltas)`` would have produced
        (bit-identical for integer weights, up to summation order
        otherwise).
        """
        with self._state_lock:
            if self._closed or self._close_requested:
                raise ValueError("cannot ingest through a closed pool")
            self._round_active = True
            self._round_thread = threading.get_ident()
            self._round_done.clear()
        try:
            return self._ingest_round(
                indices, deltas, target=target, shards=shards,
                batch_size=batch_size,
            )
        finally:
            with self._state_lock:
                self._round_active = False
                self._round_thread = None
                teardown_needed = self._close_requested and not self._closed
                if teardown_needed:
                    self._closed = True
            if teardown_needed:
                self._teardown(force=True)
            self._round_done.set()

    def _ingest_round(
        self,
        indices,
        deltas,
        *,
        target: LinearSketch,
        shards: Optional[int],
        batch_size: Optional[int],
    ) -> ShardedIngestReport:
        if not isinstance(target, LinearSketch):
            raise TypeError(
                "sharded ingestion folds into a LinearSketch target, got "
                f"{type(target).__name__}"
            )
        self._template._check_compatible(target)
        shards = require_positive_int(
            shards if shards is not None else self.workers, "shards"
        )
        batch_size = require_positive_int(
            batch_size if batch_size is not None else self.batch_size,
            "batch_size",
        )
        started = time.perf_counter()
        indices, deltas = ensure_batch_arrays(indices, deltas, self.dimension)

        bounds = _shard_bounds(indices.size, shards)
        if not bounds:
            return ShardedIngestReport(
                sketch=target, sketch_name=self.sketch_name, shards=shards,
                workers=0, updates=0, shard_updates=[], payload_bytes=[],
                batch_size=batch_size,
                elapsed_seconds=time.perf_counter() - started,
            )

        self._round += 1
        self._ensure_updates_capacity(indices.size)
        staging = self._updates.arrays
        staging["indices"][: indices.size] = indices
        staging["deltas"][: indices.size] = deltas
        seg_name = self._updates.name
        seg_layout = self._updates.layout

        # round-robin slice assignment over the first min(workers, slices)
        # workers; a worker accumulates its slices into one block, so the
        # parent folds once per participating worker, not once per slice
        participating = min(self.workers, len(bounds))
        expected = [0] * participating
        for slice_id, (start, stop) in enumerate(bounds):
            worker_id = slice_id % participating
            try:
                self._task_conns[worker_id].send((
                    "ingest", self._round, seg_name, seg_layout,
                    start, stop - start, batch_size,
                ))
            except (BrokenPipeError, OSError):
                raise self._abort(f"worker {worker_id} pipe closed") from None
            expected[worker_id] += 1
        split_seconds = time.perf_counter() - started

        worker_seconds = self._collect_acks(expected)

        fold_started = time.perf_counter()
        for worker_id in range(participating):
            arrays = self._blocks[worker_id].arrays
            scalars = {
                key: float(arrays[_SCALAR_FIELD][slot])
                for slot, key in enumerate(self._scalar_names)
            }
            target.fold_state(
                {name: arrays[name] for name in self._state_fields},
                scalars,
                int(arrays[_ITEMS_FIELD][0]),
            )
        fold_seconds = time.perf_counter() - fold_started

        return ShardedIngestReport(
            sketch=target,
            sketch_name=self.sketch_name,
            shards=shards,
            workers=participating,
            updates=int(indices.size),
            shard_updates=[stop - start for start, stop in bounds],
            payload_bytes=[0] * len(bounds),
            batch_size=batch_size,
            elapsed_seconds=time.perf_counter() - started,
            split_seconds=split_seconds,
            worker_seconds=worker_seconds,
            fold_seconds=fold_seconds,
            bytes_crossed=0,
        )

    def _collect_acks(self, expected: List[int]) -> List[float]:
        """Wait for every participating worker's acks for the current round."""
        seconds = [0.0] * len(expected)
        for worker_id, count in enumerate(expected):
            received = 0
            while received < count:
                connection = self._ack_conns[worker_id]
                while True:
                    if self._close_requested:
                        raise self._abort(
                            "the pool was closed while a round was in "
                            "flight"
                        )
                    try:
                        if connection.poll(0.1):
                            break
                    except (OSError, ValueError):
                        raise self._abort(
                            f"worker {worker_id} ack pipe closed mid-round"
                        ) from None
                    if not self._processes[worker_id].is_alive():
                        raise self._abort(
                            f"worker {worker_id} died (exit code "
                            f"{self._processes[worker_id].exitcode})"
                        )
                try:
                    kind, round_id, payload = connection.recv()
                except (EOFError, OSError):
                    raise self._abort(
                        f"worker {worker_id} hung up mid-round"
                    ) from None
                if round_id != self._round:
                    continue  # stale ack from an errored round
                if kind == "error":
                    raise RuntimeError(
                        f"sharded ingest worker {worker_id} failed:\n{payload}"
                    )
                seconds[worker_id] += float(payload)
                received += 1
        return seconds


def _ingest_stream_sharded(
    stream,
    name: str,
    width: int,
    depth: int,
    seed: int,
    shards: int,
    dimension=_DIMENSION_NOT_PROVIDED,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_workers: Optional[int] = None,
    options: Optional[dict] = None,
    pool: Optional[ShardedIngestPool] = None,
    target: Optional[LinearSketch] = None,
) -> ShardedIngestReport:
    """Ingest a stream into a linear sketch using the sharded engine.

    Parameters
    ----------
    stream:
        An :class:`~repro.streaming.stream.UpdateStream`, or a tuple of
        parallel ``(indices, deltas)`` arrays (``deltas`` may be ``None``
        for unit increments, in which case ``dimension`` is required).
    name, width, depth, seed:
        Sketch algorithm (must be linear) and geometry; ``seed`` must be an
        explicit integer so every worker derives the same hash functions.
    shards:
        Number of sub-streams.  ``shards=1`` runs inline (no worker
        processes, no shared memory) through the identical ``update_batch``
        path.
    dimension:
        Vector dimension; inferred from an :class:`UpdateStream` input.
        An explicit ``dimension=None`` selects hashed-key mode (unbounded
        universe), in which case raw ``(indices, deltas)`` arrays may carry
        any non-negative 64-bit keys.
    batch_size:
        ``update_batch`` chunk size inside each worker.
    max_workers:
        Cap on worker processes (default: ``min(shards, cpu_count)``);
        ignored when ``pool`` is supplied.
    options:
        Algorithm-specific constructor kwargs, forwarded to every worker.
    pool:
        A warm :class:`ShardedIngestPool` to run on.  When omitted an
        ephemeral pool is created and torn down around the call (session
        code keeps a pool alive instead — that is where the engine pays).
    target:
        Fold into this existing sketch instead of building a fresh one.

    Returns
    -------
    ShardedIngestReport
        With the folded sketch in ``.sketch``.
    """
    spec = get_spec(name)
    if not spec.linear:
        raise ValueError(
            f"sketch {name!r} is not linear; sharded ingestion requires a "
            "mergeable sketch (the conservative-update variants are "
            "order-dependent and cannot be sharded)"
        )
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise ValueError(
            "sharded ingestion requires an explicit integer seed so all "
            "workers build compatible sketches"
        )
    shards = require_positive_int(shards, "shards")
    batch_size = require_positive_int(batch_size, "batch_size")

    if isinstance(stream, UpdateStream):
        dimension = stream.dimension
        indices, deltas = stream.indices(), stream.deltas()
    else:
        if dimension is _DIMENSION_NOT_PROVIDED:
            raise ValueError(
                "dimension is required when ingesting raw (indices, deltas) "
                "arrays; for hashed-key mode use "
                "SketchSession.ingest (the deprecated ingest_stream_sharded "
                "entry point predates unbounded universes)"
            )
        indices, deltas = ensure_batch_arrays(stream[0], stream[1], dimension)

    started = time.perf_counter()
    if target is None:
        target = spec.build(
            dimension, width, depth, seed=int(seed), **(options or {})
        )

    if shards == 1:
        for start in range(0, indices.size, batch_size):
            stop = start + batch_size
            target.update_batch(indices[start:stop], deltas[start:stop])
        elapsed = time.perf_counter() - started
        return ShardedIngestReport(
            sketch=target, sketch_name=name, shards=1, workers=1,
            updates=int(indices.size),
            shard_updates=[int(indices.size)] if indices.size else [],
            payload_bytes=[0] if indices.size else [],
            batch_size=batch_size, elapsed_seconds=elapsed,
            worker_seconds=[elapsed],
        )

    own_pool = pool is None
    if own_pool:
        workers = min(shards, max_workers or (os.cpu_count() or 1))
        pool = ShardedIngestPool(
            name, dimension, width, depth, int(seed),
            workers=max(1, workers), batch_size=batch_size, options=options,
        )
    try:
        return pool.ingest(
            indices, deltas, target=target, shards=shards,
            batch_size=batch_size,
        )
    finally:
        if own_pool:
            pool.close()


@deprecated_entry_point("repro.api.SketchSession.ingest(stream, shards=N)")
def ingest_stream_sharded(
    stream,
    name: str,
    width: int,
    depth: int,
    seed: int,
    shards: int,
    dimension: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_workers: Optional[int] = None,
) -> ShardedIngestReport:
    """Ingest a stream into a linear sketch using sharded worker processes.

    .. deprecated::
        Use ``SketchSession.ingest(stream, shards=N)`` — the session facade
        keeps a warm :class:`ShardedIngestPool` across calls and folds each
        run straight into its sketch (``session.last_shard_report`` carries
        the run's report).
    """
    return _ingest_stream_sharded(
        stream,
        name,
        width,
        depth,
        seed=seed,
        shards=shards,
        # the deprecated entry point keeps its original contract: None means
        # "not provided" (required for raw arrays), not hashed-key mode
        dimension=_DIMENSION_NOT_PROVIDED if dimension is None else dimension,
        batch_size=batch_size,
        max_workers=max_workers,
    )
