"""Multi-core sharded ingestion: partition a stream, sketch shards in
parallel worker processes, merge the serialized results.

This is the single-machine incarnation of the paper's distributed model: a
linear sketch of a stream equals the merge of linear sketches of any
partition of that stream, so ingestion parallelises perfectly —

1. the ``(index, delta)`` arrays of an
   :class:`~repro.streaming.stream.UpdateStream` are split into ``shards``
   contiguous sub-streams;
2. each worker process builds a *compatible* sketch (same
   ``(dimension, width, depth, seed)``, hence the same hash functions),
   replays its shard through the vectorised
   :meth:`~repro.sketches.base.Sketch.update_batch` path, and returns the
   sketch **serialized** with :meth:`~repro.sketches.base.Sketch.to_bytes`
   — workers and parent exchange only wire payloads, exactly like sites and
   coordinator in :mod:`repro.distributed`;
3. the parent decodes the payloads and merges them in shard order.

For linear sketches on integer-weighted streams the merged state is
bit-identical to single-process ingestion (integer scatter-adds are exact in
float64, so summation order cannot matter); for real-weighted streams it
agrees up to floating-point summation order.  Non-linear sketches (CM-CU,
CML-CU) cannot be sharded — their state is order-dependent and unmergeable —
and are rejected up front.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.serialization import sketch_from_bytes
from repro.sketches.base import LinearSketch
from repro.sketches.registry import get_spec
from repro.streaming.stream import UpdateStream
from repro.utils.deprecation import deprecated_entry_point
from repro.utils.validation import ensure_batch_arrays, require_positive_int

#: default update_batch chunk size inside each worker (matches StreamRunner
#: batched-replay sweet spot from the PR-1 benchmark)
DEFAULT_BATCH_SIZE = 8_192

#: sentinel distinguishing "dimension not provided" from an explicit
#: ``dimension=None`` (hashed-key mode over an unbounded universe)
_DIMENSION_NOT_PROVIDED = object()


@dataclass
class ShardedIngestReport:
    """Outcome of one sharded ingestion run.

    Attributes
    ----------
    sketch:
        The merged global sketch (a :class:`LinearSketch`).
    sketch_name:
        Registry name of the algorithm.
    shards:
        Number of shards the stream was split into.
    workers:
        Worker processes actually used (1 means the run was inline).
    updates:
        Total updates ingested across all shards.
    shard_updates:
        Updates per shard, in shard order.
    payload_bytes:
        Serialized size of each shard's sketch payload, in shard order —
        the bytes that crossed the process boundary.
    batch_size:
        ``update_batch`` chunk size used inside the workers.
    elapsed_seconds:
        Wall-clock time of the whole operation (split + workers + merge).
    """

    sketch: LinearSketch
    sketch_name: str
    shards: int
    workers: int
    updates: int
    shard_updates: List[int]
    payload_bytes: List[int]
    batch_size: int
    elapsed_seconds: float


def shard_arrays(
    indices: np.ndarray, deltas: np.ndarray, shards: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split parallel update arrays into ``shards`` contiguous slices.

    Contiguity preserves stream order within each shard; for linear sketches
    the partition boundaries are immaterial (merging is exact), contiguous
    slices just avoid any shuffling cost.
    """
    shards = require_positive_int(shards, "shards")
    boundaries = np.linspace(0, indices.size, shards + 1).astype(np.int64)
    return [
        (indices[start:stop], deltas[start:stop])
        for start, stop in zip(boundaries[:-1], boundaries[1:])
    ]


def _replay_shard(
    name: str,
    dimension: Optional[int],
    width: int,
    depth: int,
    seed: int,
    indices: np.ndarray,
    deltas: np.ndarray,
    batch_size: int,
    options: Optional[dict] = None,
) -> bytes:
    """Worker entry point: sketch one shard, return the serialized state.

    Module-level (not a closure) so it pickles under every multiprocessing
    start method; returns bytes so the parent merges exactly what a remote
    site would have shipped.
    """
    sketch = get_spec(name).build(
        dimension, width, depth, seed=seed, **(options or {})
    )
    for start in range(0, indices.size, batch_size):
        stop = start + batch_size
        sketch.update_batch(indices[start:stop], deltas[start:stop])
    return sketch.to_bytes()


def _preferred_context():
    """Fork when available (cheap on Linux); the default context otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _ingest_stream_sharded(
    stream,
    name: str,
    width: int,
    depth: int,
    seed: int,
    shards: int,
    dimension=_DIMENSION_NOT_PROVIDED,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_workers: Optional[int] = None,
    options: Optional[dict] = None,
) -> ShardedIngestReport:
    """Ingest a stream into a linear sketch using sharded worker processes.

    Parameters
    ----------
    stream:
        An :class:`~repro.streaming.stream.UpdateStream`, or a tuple of
        parallel ``(indices, deltas)`` arrays (``deltas`` may be ``None``
        for unit increments, in which case ``dimension`` is required).
    name:
        Registry name of the sketch algorithm; must be linear.
    width, depth, seed:
        Sketch parameters; ``seed`` must be an explicit integer so every
        worker derives the same hash functions and the results can be
        serialized and merged.
    shards:
        Number of sub-streams.  ``shards=1`` runs inline (no process pool)
        but still round-trips the result through the wire format, so the
        code path is identical.
    dimension:
        Vector dimension; inferred from an :class:`UpdateStream` input.
        An explicit ``dimension=None`` selects hashed-key mode (unbounded
        universe), in which case raw ``(indices, deltas)`` arrays may carry
        any non-negative 64-bit keys.
    batch_size:
        ``update_batch`` chunk size inside each worker.
    max_workers:
        Cap on worker processes (default: ``min(shards, cpu_count)``).
    options:
        Algorithm-specific constructor kwargs (the ``options`` of a
        :class:`repro.api.SketchConfig`), forwarded to every worker so the
        shard sketches are built identically to the parent's.

    Returns
    -------
    ShardedIngestReport
        With the merged sketch in ``.sketch``.
    """
    spec = get_spec(name)
    if not spec.linear:
        raise ValueError(
            f"sketch {name!r} is not linear; sharded ingestion requires a "
            "mergeable sketch (the conservative-update variants are "
            "order-dependent and cannot be sharded)"
        )
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise ValueError(
            "sharded ingestion requires an explicit integer seed so all "
            "workers build compatible sketches"
        )
    shards = require_positive_int(shards, "shards")
    batch_size = require_positive_int(batch_size, "batch_size")

    if isinstance(stream, UpdateStream):
        dimension = stream.dimension
        indices, deltas = stream.indices(), stream.deltas()
    else:
        if dimension is _DIMENSION_NOT_PROVIDED:
            raise ValueError(
                "dimension is required when ingesting raw (indices, deltas) "
                "arrays; for hashed-key mode use "
                "SketchSession.ingest (the deprecated ingest_stream_sharded "
                "entry point predates unbounded universes)"
            )
        indices, deltas = ensure_batch_arrays(stream[0], stream[1], dimension)

    start_time = time.perf_counter()
    pieces = shard_arrays(indices, deltas, shards)
    tasks = [
        (name, dimension, width, depth, int(seed), idx, d, batch_size,
         dict(options or {}))
        for idx, d in pieces
    ]

    if shards == 1:
        workers = 1
        payloads = [_replay_shard(*tasks[0])]
    else:
        workers = min(shards, max_workers or (os.cpu_count() or 1))
        workers = max(workers, 1)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=_preferred_context()
        ) as pool:
            futures = [pool.submit(_replay_shard, *task) for task in tasks]
            payloads = [future.result() for future in futures]

    merged = sketch_from_bytes(payloads[0])
    for payload in payloads[1:]:
        merged.merge(sketch_from_bytes(payload))
    elapsed = time.perf_counter() - start_time

    return ShardedIngestReport(
        sketch=merged,
        sketch_name=name,
        shards=shards,
        workers=workers,
        updates=int(indices.size),
        shard_updates=[int(idx.size) for idx, _ in pieces],
        payload_bytes=[len(p) for p in payloads],
        batch_size=batch_size,
        elapsed_seconds=elapsed,
    )


@deprecated_entry_point("repro.api.SketchSession.ingest(stream, shards=N)")
def ingest_stream_sharded(
    stream,
    name: str,
    width: int,
    depth: int,
    seed: int,
    shards: int,
    dimension: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_workers: Optional[int] = None,
) -> ShardedIngestReport:
    """Ingest a stream into a linear sketch using sharded worker processes.

    .. deprecated::
        Use ``SketchSession.ingest(stream, shards=N)`` — the session facade
        dispatches to this engine and folds the merged result into its
        sketch (``session.last_shard_report`` carries the run's report).
    """
    return _ingest_stream_sharded(
        stream,
        name,
        width,
        depth,
        seed=seed,
        shards=shards,
        # the deprecated entry point keeps its original contract: None means
        # "not provided" (required for raw arrays), not hashed-key mode
        dimension=_DIMENSION_NOT_PROVIDED if dimension is None else dimension,
        batch_size=batch_size,
        max_workers=max_workers,
    )
