"""Sliding-window sketching over the pane-merge algebra.

The paper's streaming model summarises the whole stream since time zero, but
recency-bounded workloads — last-hour heavy hitters, last-N-updates frequency
estimates — need a summary of *recent* updates only.  Because the library's
sketches are **linear**, a windowed summary falls out of existing machinery:

* the stream is chopped into **panes** (fixed-size chunks, by update count or
  by timestamp span), each summarised by its own pane sketch;
* the window is a **ring** of the ``k`` most recent panes — one open pane
  receiving updates plus up to ``k - 1`` closed ones; closing the open pane
  rotates the ring and evicts the oldest pane, which is how updates age out;
* queries are answered against a **lazily-rebuilt merged view** — the panes
  merged through :meth:`~repro.sketches.base.LinearSketch.merge`, rebuilt
  only when the window has changed since the last query;
* **exponential decay** rides
  :meth:`~repro.sketches.base.LinearSketch.scale`: a single sketch is scaled
  by a constant factor at every pane boundary, so old updates fade instead of
  being evicted.

Sliding and decay windows rest on linearity (a sketch of a stream equals the
merge of sketches of its panes), so they reject the conservative-update
sketches — whose state is order-dependent and unmergeable — with
:class:`~repro.api.CapabilityError` up front.  **Tumbling** windows do not:
their single pane resets at every boundary and never merges, so any
*exact-batchable* sketch (``SketchSpec.exact_batch`` — including CM-CU and
CML-CU via segmented conservative-update batching) can tumble; only the
pane-granular sharded path stays linear-only, because folding shard results
into the open pane is itself a merge.

Window state is a first-class portable artifact: :meth:`SlidingWindowSketch.
to_bytes` encodes the window spec, the ring bookkeeping and every live pane
in a versioned container (magic ``RPWD``) whose pane payloads are exactly
the ``RPSK`` sketch payloads of :mod:`repro.serialization`, so a window can
be persisted, shipped and reopened anywhere like a bare sketch.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api.errors import CapabilityError, ConfigError
from repro.serialization import (
    SerializationError,
    decode_state,
    encode_state,
    reconstruction_errors,
    sketch_from_state,
)
from repro.streaming.sharded import (
    DEFAULT_BATCH_SIZE,
    ShardedIngestReport,
    _ingest_stream_sharded,
)
from repro.utils.validation import require_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> windows)
    from repro.api.config import SketchConfig
    from repro.sketches.base import LinearSketch

#: 4-byte magic prefixing every serialized window (vs ``RPSK`` for a sketch)
WINDOW_MAGIC = b"RPWD"
#: current window wire-format version (the ``uint16`` following the magic)
WINDOW_WIRE_VERSION = 1

_WINDOW_PREAMBLE = struct.Struct("<4sHI")  # magic, version, header length

#: the supported window modes
WINDOW_MODES = ("tumbling", "sliding", "decay")
#: the supported pane extents
PANE_UNITS = ("count", "time")


@dataclass(frozen=True)
class WindowSpec:
    """An immutable, validated description of one window.

    Parameters
    ----------
    mode:
        ``"sliding"`` — the window covers the ``panes`` most recent panes
        (the open one plus up to ``panes - 1`` closed ones); closing a pane
        evicts the oldest.  ``"tumbling"`` — a single pane that resets at
        every boundary (equivalent to ``sliding`` with ``panes=1``).
        ``"decay"`` — a single sketch scaled by ``decay`` at every pane
        boundary, so history fades exponentially instead of being evicted.
    panes:
        Number of live panes ``k`` in the ring (sliding mode only; tumbling
        and decay windows keep exactly one pane).
    pane_size:
        Extent of one pane: a positive update count (``by="count"``) or a
        positive timestamp span (``by="time"``, floats allowed).  Pane ``p``
        of a time-based window covers timestamps
        ``[p·pane_size, (p+1)·pane_size)``.
    by:
        ``"count"`` — panes close after ``pane_size`` updates; updates carry
        no timestamps.  ``"time"`` — every update carries a non-decreasing
        timestamp and panes close when it crosses a pane boundary.
    decay:
        Scale factor in ``(0, 1)`` applied at each pane boundary (decay mode
        only; forbidden otherwise).
    """

    mode: str = "sliding"
    panes: int = 1
    pane_size: float = 1
    by: str = "count"
    decay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in WINDOW_MODES:
            raise ConfigError(
                f"unknown window mode {self.mode!r}; supported modes: "
                f"{', '.join(WINDOW_MODES)}"
            )
        if self.by not in PANE_UNITS:
            raise ConfigError(
                f"panes are sized by {', '.join(PANE_UNITS)!s}; got "
                f"by={self.by!r}"
            )
        object.__setattr__(
            self, "panes", require_positive_int(self.panes, "panes")
        )
        if self.mode != "sliding" and self.panes != 1:
            raise ConfigError(
                f"{self.mode} windows keep exactly one pane; panes={self.panes} "
                "only applies to sliding windows"
            )
        if self.by == "count":
            if (
                isinstance(self.pane_size, bool)
                or not isinstance(self.pane_size, (int, np.integer))
                or int(self.pane_size) < 1
            ):
                raise ConfigError(
                    "count-based panes need a positive integer pane_size "
                    f"(updates per pane), got {self.pane_size!r}"
                )
            object.__setattr__(self, "pane_size", int(self.pane_size))
        else:
            size = self.pane_size
            if isinstance(size, bool) or not isinstance(
                size, (int, float, np.integer, np.floating)
            ):
                raise ConfigError(
                    "time-based panes need a positive timestamp span as "
                    f"pane_size, got {size!r}"
                )
            size = float(size)
            if not math.isfinite(size) or size <= 0.0:
                raise ConfigError(
                    "time-based panes need a positive finite timestamp span, "
                    f"got {size!r}"
                )
            object.__setattr__(self, "pane_size", size)
        if self.mode == "decay":
            decay = self.decay
            if isinstance(decay, (int, np.integer)) and not isinstance(decay, bool):
                decay = float(decay)
            if not isinstance(decay, (float, np.floating)):
                raise ConfigError(
                    "decay windows need a decay factor in (0, 1), got "
                    f"{self.decay!r}"
                )
            decay = float(decay)
            if not (0.0 < decay < 1.0):
                raise ConfigError(
                    f"decay factor must be in (0, 1), got {decay}"
                )
            object.__setattr__(self, "decay", decay)
        elif self.decay is not None:
            raise ConfigError(
                f"decay={self.decay!r} only applies to decay windows, not "
                f"{self.mode!r}"
            )

    @property
    def span(self) -> float:
        """The window's maximum extent: ``panes × pane_size``."""
        return self.panes * self.pane_size

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-able form (inverse of :meth:`from_dict`)."""
        return {
            "mode": self.mode,
            "panes": self.panes,
            "pane_size": self.pane_size,
            "by": self.by,
            "decay": self.decay,
        }

    @classmethod
    def from_dict(cls, mapping: Dict[str, Any]) -> "WindowSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(mapping)
        unknown = set(data) - {"mode", "panes", "pane_size", "by", "decay"}
        if unknown:
            raise ConfigError(
                f"unknown window spec fields {sorted(unknown)}"
            )
        return cls(**data)


def is_window_payload(data: bytes) -> bool:
    """Whether ``data`` starts like a serialized window (vs a bare sketch)."""
    return bytes(data[: len(WINDOW_MAGIC)]) == WINDOW_MAGIC


def decode_window_container(data: bytes) -> Tuple[Dict[str, Any], List[bytes]]:
    """Split an ``RPWD`` container into its header and raw pane payloads.

    Validates the preamble and header without deserializing any pane, so
    callers that only need metadata (the sketch store's ``put`` indexing,
    ``repro store list``) never pay for sketch reconstruction.  Every
    failure mode names what it read: a version mismatch reports the
    payload's embedded wire version next to the supported one, and a
    payload whose header cannot be parsed reports the embedded version it
    claims instead of a bare "corrupt payload" message.
    """
    data = bytes(data)
    if len(data) < _WINDOW_PREAMBLE.size:
        raise SerializationError(
            f"payload of {len(data)} bytes is too short to be a "
            "serialized window"
        )
    magic, version, header_len = _WINDOW_PREAMBLE.unpack_from(data, 0)
    if magic != WINDOW_MAGIC:
        raise SerializationError(
            f"bad magic {magic!r}; not a serialized window payload"
        )
    if version != WINDOW_WIRE_VERSION:
        raise SerializationError(
            f"unsupported window wire-format version {version}; this "
            f"build reads version {WINDOW_WIRE_VERSION} — re-save the "
            "window with a matching build"
        )
    start = _WINDOW_PREAMBLE.size
    end = start + header_len
    if len(data) < end:
        raise SerializationError(
            f"truncated window payload (wire version {version}): header is "
            "incomplete"
        )
    try:
        header = json.loads(data[start:end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"corrupt window header in a payload written as wire version "
            f"{version}: {exc}"
        ) from exc
    payloads = []
    offset = end
    for length in header.get("panes", []):
        length = int(length)
        chunk = data[offset:offset + length]
        if len(chunk) != length:
            raise SerializationError(
                f"truncated window payload (wire version {version}): pane "
                f"expects {length} bytes, got {len(chunk)}"
            )
        payloads.append(chunk)
        offset += length
    return header, payloads


class SlidingWindowSketch:
    """A pane-ring windowing engine over one linear sketch configuration.

    Maintains up to ``spec.panes`` per-pane sketches — one *open* pane
    receiving updates plus the most recent *closed* panes — and answers
    queries from a lazily-rebuilt merged view.  Built from a
    :class:`~repro.api.SketchConfig` whose ``window`` field carries the
    :class:`WindowSpec` (or pass ``spec`` explicitly).

    Sliding and decay modes require a **linear** algorithm (pane merging and
    decay ride ``merge``/``scale``); tumbling mode also accepts
    **exact-batchable** non-linear algorithms (the conservative-update
    kinds), whose single pane never merges.  Every mode requires an
    **explicit integer seed** (panes must share hash functions, and window
    state must be reconstructible).
    """

    def __init__(
        self,
        config: "SketchConfig",
        spec: Optional[WindowSpec] = None,
        *,
        _panes: Optional[List["LinearSketch"]] = None,
    ) -> None:
        from repro.api.config import SketchConfig  # local: import cycle

        if not isinstance(config, SketchConfig):
            raise ConfigError(
                f"SlidingWindowSketch needs a SketchConfig, got "
                f"{type(config).__name__}"
            )
        if spec is None:
            spec = config.window
        if spec is None:
            raise ConfigError(
                "SlidingWindowSketch needs a WindowSpec: pass spec=... or a "
                "config constructed with window=WindowSpec(...)"
            )
        if not isinstance(spec, WindowSpec):
            raise ConfigError(
                f"window spec must be a WindowSpec, got {type(spec).__name__}"
            )
        if not config.spec.linear and not (
            spec.mode == "tumbling" and config.spec.exact_batch
        ):
            raise CapabilityError(
                f"sketch {config.name!r} is not a linear sketch and cannot "
                f"use a {spec.mode} window: "
                + (
                    "decay windows fade history through scale()"
                    if spec.mode == "decay"
                    else "the sliding pane ring relies on the pane-merge "
                    "algebra (merge/scale)"
                )
                + ", which the conservative-update sketches do not support"
                + (
                    "; tumbling windows (panes are independent and never "
                    "merge) accept exact-batchable sketches"
                    if config.spec.exact_batch
                    else ""
                )
            )
        if not config.portable:
            raise ConfigError(
                "windowed sketching requires an explicit integer seed: panes "
                "share hash functions so they can be merged, and window "
                "state must be reconstructible on restore"
            )
        self._config = config if config.window is spec else config.replace(window=spec)
        self._spec = spec
        if _panes is None:
            self._closed: List["LinearSketch"] = []
            self._current: "LinearSketch" = self._new_pane()
        else:
            # restore path: adopt already-deserialized panes instead of
            # building a throwaway open pane
            self._closed = list(_panes[:-1])
            self._current = _panes[-1]
        self._fill = 0                    # updates in the open pane
        self._pane_index = 0              # ordinal of the open pane
        self._time_started = False        # time mode: first timestamp seen?
        self._last_timestamp: Optional[float] = None
        self._pane_closes = 0
        self._evictions = 0
        self._items_total = 0
        self._merged: Optional["LinearSketch"] = None

    def _new_pane(self) -> "LinearSketch":
        return self._config.build()  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> "SketchConfig":
        """The windowed configuration (``config.window`` is the spec)."""
        return self._config

    @property
    def spec(self) -> WindowSpec:
        """The window specification."""
        return self._spec

    @property
    def dimension(self) -> Optional[int]:
        return self._config.dimension

    @property
    def items_processed(self) -> int:
        """Total updates ever ingested (in or out of the current window)."""
        return self._items_total

    @property
    def items_in_window(self) -> int:
        """Updates the live panes currently summarise.

        For decay windows this counts every update ever applied (history
        fades by scaling; it is never dropped).
        """
        return self._current.items_processed + sum(
            pane.items_processed for pane in self._closed
        )

    @property
    def pane_count(self) -> int:
        """Live panes right now (open pane plus retained closed panes)."""
        return 1 + len(self._closed)

    @property
    def pane_closes(self) -> int:
        """Pane boundaries crossed since construction."""
        return self._pane_closes

    @property
    def evictions(self) -> int:
        """Panes dropped from the ring (aged out of the window)."""
        return self._evictions

    @property
    def current_fill(self) -> int:
        """Updates in the open pane."""
        return self._fill

    @property
    def last_timestamp(self) -> Optional[float]:
        """Most recent timestamp seen (time-based panes only)."""
        return self._last_timestamp

    def size_in_words(self) -> int:
        """Counter words across every live pane."""
        return self._current.size_in_words() + sum(
            pane.size_in_words() for pane in self._closed
        )

    # ------------------------------------------------------------------ #
    # pane rotation
    # ------------------------------------------------------------------ #
    def _close_pane(self) -> None:
        """Cross one pane boundary."""
        self._pane_closes += 1
        self._pane_index += 1
        self._fill = 0
        self._merged = None
        if self._spec.mode == "decay":
            self._current.scale(self._spec.decay)
            return
        self._closed.append(self._current)
        self._current = self._new_pane()
        keep = self._spec.panes - 1
        while len(self._closed) > keep:
            self._closed.pop(0)
            self._evictions += 1

    def _advance_to_pane(self, pane: int) -> None:
        """Close panes until the open pane is ``pane`` (time mode)."""
        steps = pane - self._pane_index
        if steps <= 0:
            return
        if self._spec.mode == "decay":
            # small gaps replay boundary-by-boundary (bit-exact with the
            # scalar path); a gap of thousands of panes collapses into one
            # scale by decay**steps, equal up to float rounding
            if steps <= 64:
                for _ in range(steps):
                    self._close_pane()
            else:
                self._current.scale(self._spec.decay ** steps)
                self._pane_closes += steps
                self._pane_index = pane
                self._fill = 0
                self._merged = None
            return
        if steps <= self._spec.panes:
            for _ in range(steps):
                self._close_pane()
            return
        # a gap wider than the ring ages every live pane out; rotating
        # `panes` times reaches the same (empty) state without building one
        # throwaway pane per skipped boundary
        for _ in range(self._spec.panes):
            self._close_pane()
        self._pane_closes += steps - self._spec.panes
        self._pane_index = pane

    def _advance_time(self, timestamp: Any) -> float:
        if timestamp is None:
            raise ConfigError(
                "time-based panes require a timestamp for every update; "
                "pass timestamps=... to ingest"
            )
        if isinstance(timestamp, bool) or not isinstance(
            timestamp, (int, float, np.integer, np.floating)
        ):
            raise ConfigError(
                f"timestamps must be numbers, got {type(timestamp).__name__}"
            )
        ts = float(timestamp)
        if not math.isfinite(ts):
            raise ConfigError(f"timestamps must be finite, got {ts!r}")
        if self._last_timestamp is not None and ts < self._last_timestamp:
            raise ConfigError(
                f"timestamps must be non-decreasing; got {ts} after "
                f"{self._last_timestamp}"
            )
        pane = math.floor(ts / self._spec.pane_size)
        if not self._time_started:
            self._pane_index = pane
            self._time_started = True
        else:
            self._advance_to_pane(pane)
        self._last_timestamp = ts
        return ts

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0, timestamp: Any = None) -> None:
        """Apply one streaming update, routing it into the open pane."""
        if self._spec.by == "time":
            self._advance_time(timestamp)
        elif timestamp is not None:
            raise ConfigError(
                "count-based panes take no timestamps; use "
                "WindowSpec(by='time', ...) for timestamp-driven panes"
            )
        self._current.update(index, delta)
        self._fill += 1
        self._items_total += 1
        self._merged = None
        if self._spec.by == "count" and self._fill >= self._spec.pane_size:
            self._close_pane()

    def _check_batch(self, indices, deltas) -> Tuple[np.ndarray, np.ndarray]:
        return self._current._check_batch(indices, deltas)

    def _check_timestamps(self, timestamps: Any, count: int) -> np.ndarray:
        if timestamps is None:
            raise ConfigError(
                "time-based panes require a timestamp for every update; "
                "pass timestamps=... to ingest"
            )
        ts = np.asarray(timestamps, dtype=np.float64)
        if ts.ndim == 0:
            ts = np.full(count, float(ts))
        if ts.ndim != 1 or ts.size != count:
            raise ConfigError(
                f"timestamps must be a scalar or a 1-D array matching the "
                f"{count} updates, got shape {np.asarray(timestamps).shape}"
            )
        if ts.size and not np.all(np.isfinite(ts)):
            raise ConfigError("timestamps must be finite")
        if ts.size > 1 and np.any(np.diff(ts) < 0):
            raise ConfigError("timestamps must be non-decreasing")
        if (
            ts.size
            and self._last_timestamp is not None
            and float(ts[0]) < self._last_timestamp
        ):
            raise ConfigError(
                f"timestamps must be non-decreasing; got {float(ts[0])} "
                f"after {self._last_timestamp}"
            )
        return ts

    def update_batch(
        self,
        indices,
        deltas=None,
        timestamps=None,
        *,
        shards: Optional[int] = None,
        batch_size: Optional[int] = None,
        shard_resolver=None,
        pool_factory=None,
    ) -> Optional[ShardedIngestReport]:
        """Apply a batch of updates in stream order, splitting it at pane
        boundaries and feeding each segment to the then-open pane.

        ``shards > 1`` sketches each segment through the multi-core sharded
        engine, folding the shard state straight into the open pane —
        sharding happens *within* a pane, and shard results meet the ring
        only at pane granularity, so the window semantics are identical to
        the single-process path.  ``shard_resolver`` (used when ``shards``
        is ``None``) maps a segment's update count to a worker count, so
        auto-sharding decisions are made per within-pane segment rather than
        for the whole batch.  ``pool_factory`` maps a shard count to a warm
        :class:`~repro.streaming.sharded.ShardedIngestPool` (the session
        keeps one alive across calls); without it each sharded segment pays
        for an ephemeral pool.  Returns the last segment's
        :class:`~repro.streaming.sharded.ShardedIngestReport` (or ``None``
        when no segment was sharded).
        """
        idx, d = self._check_batch(indices, deltas)
        if batch_size is not None:
            batch_size = require_positive_int(batch_size, "batch_size")
        if shards is not None:
            shards = require_positive_int(shards, "shards")
        report: Optional[ShardedIngestReport] = None
        if self._spec.by == "time":
            ts = self._check_timestamps(timestamps, idx.size)
            if not idx.size:
                return None
            panes = np.floor(ts / self._spec.pane_size).astype(np.int64)
            cuts = np.flatnonzero(np.diff(panes)) + 1
            for start, stop in zip(
                np.concatenate(([0], cuts)), np.concatenate((cuts, [idx.size]))
            ):
                self._advance_time(float(ts[start]))
                segment = self._apply_segment(
                    idx[start:stop], d[start:stop], shards, batch_size,
                    shard_resolver, pool_factory,
                )
                report = segment if segment is not None else report
                self._last_timestamp = float(ts[stop - 1])
            return report
        if timestamps is not None:
            raise ConfigError(
                "count-based panes take no timestamps; use "
                "WindowSpec(by='time', ...) for timestamp-driven panes"
            )
        position = 0
        while position < idx.size:
            room = self._spec.pane_size - self._fill
            if room <= 0:  # unreachable via public paths; never spin
                self._close_pane()
                continue
            take = int(min(room, idx.size - position))
            segment = self._apply_segment(
                idx[position:position + take],
                d[position:position + take],
                shards,
                batch_size,
                shard_resolver,
                pool_factory,
            )
            report = segment if segment is not None else report
            position += take
        return report

    def _apply_segment(
        self,
        indices: np.ndarray,
        deltas: np.ndarray,
        shards: Optional[int],
        batch_size: Optional[int],
        shard_resolver=None,
        pool_factory=None,
    ) -> Optional[ShardedIngestReport]:
        """Feed one within-pane segment to the open pane, then close it if full."""
        if not indices.size:
            return None
        report: Optional[ShardedIngestReport] = None
        if shards is None and shard_resolver is not None:
            resolved = shard_resolver(int(indices.size))
            shards = resolved if resolved > 1 else None
        if shards is not None and shards > 1 and not self._config.spec.linear:
            # tumbling panes admit exact-batchable non-linear sketches, but
            # folding shard results into the open pane is itself a merge
            raise CapabilityError(
                f"sketch {self._config.name!r} is not a linear sketch and "
                "cannot be sharded; merging shard results requires linearity"
            )
        if shards is not None and shards > 1:
            # the shard state folds straight into the open pane through
            # shared memory — no serialization at pane close
            report = _ingest_stream_sharded(
                (indices, deltas),
                self._config.name,
                self._config.width,
                self._config.depth,
                seed=self._config.seed,
                shards=shards,
                dimension=self._config.dimension,
                batch_size=batch_size or DEFAULT_BATCH_SIZE,
                options=self._config.options,
                pool=pool_factory(shards) if pool_factory is not None else None,
                target=self._current,
            )
        elif batch_size is not None:
            for start in range(0, indices.size, batch_size):
                stop = start + batch_size
                self._current.update_batch(indices[start:stop], deltas[start:stop])
        else:
            self._current.update_batch(indices, deltas)
        self._fill += int(indices.size)
        self._items_total += int(indices.size)
        self._merged = None
        if self._spec.by == "count" and self._fill >= self._spec.pane_size:
            self._close_pane()
        return report

    # ------------------------------------------------------------------ #
    # queries (via the merged view)
    # ------------------------------------------------------------------ #
    def view(self) -> "LinearSketch":
        """The merged window sketch, rebuilt lazily.

        The view is a sketch of exactly the in-window updates: the live
        panes merged oldest-to-newest (linearity makes the order
        irrelevant).  Treat it as **read-only** — when only one pane is
        live it *is* the open pane.
        """
        if self._merged is not None:
            return self._merged
        if not self._closed:
            merged = self._current
        else:
            merged = self._closed[0].copy()
            for pane in self._closed[1:]:
                merged.merge(pane)
            merged.merge(self._current)
        self._merged = merged
        return merged

    def query(self, index: int) -> float:
        """Point estimate of ``index`` restricted to the current window."""
        return float(self.view().query(index))

    def query_batch(self, indices) -> np.ndarray:
        """Windowed point estimates for a batch of coordinates."""
        return self.view().query_batch(indices)

    def recover(self) -> np.ndarray:
        """The recovered in-window frequency vector (bounded universes)."""
        return self.view().recover()

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def fold_closed_panes(self) -> int:
        """Merge every closed pane into one, leaving the view unchanged.

        The merged window view is the merge of all live panes, so folding
        the closed panes into a single combined pane preserves **every
        query answer exactly** (linearity makes the grouping irrelevant)
        while dropping the ring from ``1 + len(closed)`` sketches to at
        most two.  What it gives up is pane-granular *aging*: the folded
        pane ages out of a live ring as one unit instead of pane by pane,
        which is why the sketch store only compacts historical snapshots —
        archives whose eviction future is never replayed.

        Returns the number of panes folded away (``0`` when fewer than two
        panes are closed — tumbling and decay windows always return 0).
        """
        if len(self._closed) < 2:
            return 0
        folded = self._closed[0].copy()
        for pane in self._closed[1:]:
            folded.merge(pane)
        removed = len(self._closed) - 1
        self._closed = [folded]
        self._merged = None
        return removed

    # ------------------------------------------------------------------ #
    # state protocol (versioned RPWD container over RPSK pane payloads)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Any]:
        """The complete window state as a plain dict.

        ``panes`` holds one sketch state dict per live pane, oldest first,
        the open pane last; ``meta`` carries the ring bookkeeping that makes
        a restore continue exactly where the original left off.
        """
        return {
            "kind": "window",
            "window_version": WINDOW_WIRE_VERSION,
            "spec": self._spec.to_dict(),
            "meta": {
                "fill": int(self._fill),
                "pane_index": int(self._pane_index),
                "time_started": bool(self._time_started),
                "last_timestamp": self._last_timestamp,
                "pane_closes": int(self._pane_closes),
                "evictions": int(self._evictions),
                "items_total": int(self._items_total),
            },
            "panes": [pane.state_dict() for pane in self._closed]
            + [self._current.state_dict()],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "SlidingWindowSketch":
        """Reconstruct a window from a :meth:`state_dict` snapshot."""
        from repro.api.config import SketchConfig  # local: import cycle

        if state.get("kind") != "window":
            raise SerializationError(
                f"state of kind {state.get('kind')!r} is not a window snapshot"
            )
        recorded = int(state.get("window_version", 1))
        if recorded != WINDOW_WIRE_VERSION:
            raise SerializationError(
                f"window snapshot has window_version {recorded}, but this "
                f"build reads version {WINDOW_WIRE_VERSION}"
            )
        spec = WindowSpec.from_dict(state["spec"])
        pane_states = state.get("panes", [])
        if not pane_states:
            raise SerializationError("window snapshot carries no panes")
        max_live = 1 if spec.mode == "decay" else spec.panes
        if len(pane_states) > max_live:
            raise SerializationError(
                f"window snapshot carries {len(pane_states)} panes, but a "
                f"{spec.mode} window of {spec.panes} pane(s) holds at most "
                f"{max_live}"
            )
        config = SketchConfig.from_state(pane_states[-1]).replace(window=spec)
        meta = state.get("meta", {})
        fill = int(meta.get("fill", 0))
        if fill < 0 or (spec.by == "count" and fill >= spec.pane_size):
            # an out-of-range fill can only come from a corrupt or crafted
            # payload; restoring it would break the open-pane invariant
            # (count-mode panes close the moment they reach pane_size)
            raise SerializationError(
                f"window snapshot carries fill={fill}, outside the open-pane "
                f"range [0, {spec.pane_size}) of its count-based panes"
                if spec.by == "count"
                else f"window snapshot carries a negative fill ({fill})"
            )
        panes = [sketch_from_state(pane) for pane in pane_states]
        window = cls(config, spec, _panes=panes)
        window._fill = fill
        window._pane_index = int(meta.get("pane_index", 0))
        window._time_started = bool(meta.get("time_started", False))
        last = meta.get("last_timestamp")
        window._last_timestamp = None if last is None else float(last)
        window._pane_closes = int(meta.get("pane_closes", 0))
        window._evictions = int(meta.get("evictions", 0))
        window._items_total = int(meta.get("items_total", 0))
        window._merged = None
        return window

    def to_bytes(self) -> bytes:
        """Encode the full window state in the versioned binary container.

        Layout mirrors the sketch wire format of :mod:`repro.serialization`::

            offset  size   field
            0       4      magic  b"RPWD"
            4       2      window wire version, uint16 LE
            6       4      header length H, uint32 LE
            10      H      header, UTF-8 JSON (sorted keys): spec, meta,
                           pane payload lengths
            10+H    ...    pane payloads (RPSK sketch wire format),
                           oldest pane first, the open pane last

        Encoding is deterministic, so equal window states produce identical
        bytes (the golden-wire regression suite pins this).
        """
        state = self.state_dict()
        payloads = [encode_state(pane) for pane in state["panes"]]
        header = {
            "window_version": WINDOW_WIRE_VERSION,
            "spec": state["spec"],
            "meta": state["meta"],
            "panes": [len(payload) for payload in payloads],
        }
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        parts = [
            _WINDOW_PREAMBLE.pack(
                WINDOW_MAGIC, WINDOW_WIRE_VERSION, len(header_bytes)
            ),
            header_bytes,
        ]
        parts.extend(payloads)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SlidingWindowSketch":
        """Decode a container produced by :meth:`to_bytes`."""
        header, payloads = decode_window_container(data)
        pane_states = [decode_state(chunk) for chunk in payloads]
        with reconstruction_errors("window container"):
            return cls.from_state({
                "kind": "window",
                "window_version": int(header.get("window_version", 1)),
                "spec": header.get("spec", {}),
                "meta": header.get("meta", {}),
                "panes": pane_states,
            })

    def size_in_bytes(self) -> int:
        """Exact size of the serialized window container."""
        return len(self.to_bytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlidingWindowSketch({self._config.name!r}, mode="
            f"{self._spec.mode!r}, panes={self.pane_count}/{self._spec.panes}, "
            f"items_in_window={self.items_in_window})"
        )
