"""Update streams: the data model of the streaming setting.

An :class:`UpdateStream` is an ordered sequence of ``(index, delta)`` updates
over a frequency vector of known dimension, tagged with the stream *kind*:

* ``CASH_REGISTER`` — all deltas are positive (arrivals only); this is the
  model of the paper's experiments (every real dataset is a count vector).
* ``TURNSTILE`` — deltas may be negative (arrivals and departures); all the
  *linear* sketches in the library support it, the conservative-update
  baselines do not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.utils.validation import ensure_batch_arrays, require_positive_int


class StreamKind(enum.Enum):
    """The update model of a stream."""

    CASH_REGISTER = "cash_register"
    TURNSTILE = "turnstile"


@dataclass(frozen=True)
class StreamUpdate:
    """A single streaming update ``x[index] += delta``."""

    index: int
    delta: float = 1.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"index must be non-negative, got {self.index}")


class UpdateStream:
    """An ordered sequence of updates over a vector of known dimension.

    Parameters
    ----------
    dimension:
        Dimension ``n`` of the underlying frequency vector.
    updates:
        The updates, as :class:`StreamUpdate` objects or ``(index, delta)``
        pairs.
    kind:
        Declared stream kind; validated against the updates.
    """

    def __init__(
        self,
        dimension: int,
        updates: Iterable = (),
        kind: StreamKind = StreamKind.CASH_REGISTER,
    ) -> None:
        self.dimension = require_positive_int(dimension, "dimension")
        self.kind = StreamKind(kind)
        self._updates: List[StreamUpdate] = []
        self._indices_cache: Optional[np.ndarray] = None
        self._deltas_cache: Optional[np.ndarray] = None
        for update in updates:
            self.append(update)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        dimension: int,
        indices,
        deltas=None,
        kind: StreamKind = StreamKind.CASH_REGISTER,
    ) -> "UpdateStream":
        """Build a stream from parallel ``indices`` / ``deltas`` arrays.

        ``deltas`` may be ``None`` (unit increments) or a matching 1-D float
        array-like.  Validation is vectorised, so this is the fast way to
        construct large streams (e.g. when loading traces).
        """
        stream = cls(dimension, kind=kind)
        idx, d = ensure_batch_arrays(indices, deltas, stream.dimension)
        if stream.kind is StreamKind.CASH_REGISTER and idx.size and np.any(d < 0):
            raise ValueError(
                "negative delta in a cash-register stream; declare the stream "
                "as StreamKind.TURNSTILE to allow deletions"
            )
        stream._updates = [
            StreamUpdate(index, delta)
            for index, delta in zip(idx.tolist(), d.tolist())
        ]
        stream._indices_cache = idx
        stream._deltas_cache = d
        return stream

    def append(self, update) -> None:
        """Append one update (a :class:`StreamUpdate` or an ``(index, delta)`` pair)."""
        if not isinstance(update, StreamUpdate):
            index, delta = update
            update = StreamUpdate(int(index), float(delta))
        if update.index >= self.dimension:
            raise IndexError(
                f"update index {update.index} out of range "
                f"[0, {self.dimension})"
            )
        if self.kind is StreamKind.CASH_REGISTER and update.delta < 0:
            raise ValueError(
                "negative delta in a cash-register stream; declare the stream "
                "as StreamKind.TURNSTILE to allow deletions"
            )
        self._updates.append(update)
        self._indices_cache = None
        self._deltas_cache = None

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[StreamUpdate]:
        return iter(self._updates)

    def __getitem__(self, position: int) -> StreamUpdate:
        return self._updates[position]

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The (cached) parallel index/delta arrays; treated as read-only."""
        if self._indices_cache is None:
            self._indices_cache = np.array(
                [u.index for u in self._updates], dtype=np.int64
            )
            self._deltas_cache = np.array(
                [u.delta for u in self._updates], dtype=np.float64
            )
        return self._indices_cache, self._deltas_cache

    def indices(self) -> np.ndarray:
        """All update indices, in stream order."""
        return self._arrays()[0].copy()

    def deltas(self) -> np.ndarray:
        """All update deltas, in stream order."""
        return self._arrays()[1].copy()

    def iter_batches(
        self, batch_size: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(indices, deltas)`` array chunks of at most ``batch_size``.

        Chunks partition the stream in order, so feeding every chunk to
        :meth:`~repro.sketches.base.Sketch.update_batch` replays the stream
        with the same semantics as update-at-a-time ingestion.  The yielded
        arrays are views of an internal cache and must not be mutated.
        """
        batch_size = require_positive_int(batch_size, "batch_size")
        all_indices, all_deltas = self._arrays()
        for start in range(0, len(self._updates), batch_size):
            stop = start + batch_size
            yield all_indices[start:stop], all_deltas[start:stop]

    def accumulate(self) -> np.ndarray:
        """Materialise the frequency vector the stream accumulates to."""
        vector = np.zeros(self.dimension, dtype=np.float64)
        if self._updates:
            all_indices, all_deltas = self._arrays()
            np.add.at(vector, all_indices, all_deltas)
        return vector

    def prefix(self, count: int) -> "UpdateStream":
        """The stream truncated to its first ``count`` updates."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        stream = UpdateStream(self.dimension, kind=self.kind)
        stream._updates = list(self._updates[:count])
        return stream

    def split(self, parts: int) -> List["UpdateStream"]:
        """Split the stream into ``parts`` contiguous sub-streams (for sites)."""
        parts = require_positive_int(parts, "parts")
        boundaries = np.linspace(0, len(self._updates), parts + 1).astype(int)
        streams = []
        for start, end in zip(boundaries[:-1], boundaries[1:]):
            piece = UpdateStream(self.dimension, kind=self.kind)
            piece._updates = list(self._updates[start:end])
            streams.append(piece)
        return streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UpdateStream(dimension={self.dimension}, updates={len(self)}, "
            f"kind={self.kind.value})"
        )
