"""Builders turning vectors, item sequences and edge lists into update streams."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.streaming.stream import StreamKind, StreamUpdate, UpdateStream
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import ensure_1d_float_array, require_positive_int


def stream_from_vector(
    x,
    shuffle: bool = False,
    seed: RandomSource = None,
) -> UpdateStream:
    """Turn a frequency vector into one weighted update per non-zero coordinate.

    With ``shuffle=True`` the update order is randomised (useful for testing
    order-sensitivity of the non-linear baselines).  Negative coordinates
    produce a turnstile stream.
    """
    arr = ensure_1d_float_array(x, "x")
    indices = np.flatnonzero(arr)
    if shuffle:
        indices = as_rng(seed).permutation(indices)
    kind = StreamKind.TURNSTILE if np.any(arr < 0) else StreamKind.CASH_REGISTER
    stream = UpdateStream(arr.size, kind=kind)
    for index in indices:
        stream.append(StreamUpdate(int(index), float(arr[index])))
    return stream


def stream_from_items(
    items: Sequence[int],
    dimension: int,
) -> UpdateStream:
    """Turn a sequence of item arrivals into unit updates (the paper's model)."""
    dimension = require_positive_int(dimension, "dimension")
    stream = UpdateStream(dimension, kind=StreamKind.CASH_REGISTER)
    for item in items:
        stream.append(StreamUpdate(int(item), 1.0))
    return stream


def stream_from_edges(
    edges: Iterable[Tuple[int, int]],
    dimension: int,
) -> UpdateStream:
    """Turn an edge stream into out-degree updates (the Hudong experiment).

    Each edge ``(a, b)`` increments the out-degree of article ``a``; the
    destination is ignored for the degree vector but kept in the signature to
    mirror the dataset's structure.
    """
    dimension = require_positive_int(dimension, "dimension")
    stream = UpdateStream(dimension, kind=StreamKind.CASH_REGISTER)
    for source, _destination in edges:
        stream.append(StreamUpdate(int(source), 1.0))
    return stream
