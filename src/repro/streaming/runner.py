"""Stream replay with timing: the machinery behind the Figure 6 experiment.

:class:`StreamRunner` feeds an :class:`~repro.streaming.stream.UpdateStream`
into a sketch, measures the average per-update cost, then issues point queries
and measures the average per-query cost.  The accuracy of the final state is
measured against the vector the stream accumulates to.

Two replay modes are supported:

* **scalar** (``batch_size=None``) — one :meth:`~repro.sketches.base.Sketch.update`
  call per stream update, exactly the paper's streaming model; this is what
  the Figure 6 per-update timings mean.
* **batched** (``batch_size=k``) — the stream is replayed in order through
  :meth:`~repro.sketches.base.Sketch.update_batch` in chunks of ``k`` updates,
  and queries go through :meth:`~repro.sketches.base.Sketch.query_batch`.
  The final state is equivalent (bit-identical for the linear sketches on
  integer-valued streams), but the replay runs at numpy speed — typically
  10-100× faster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.sketches.base import Sketch
from repro.streaming.stream import UpdateStream
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


@dataclass
class StreamReport:
    """Result of replaying a stream into one sketch.

    Attributes
    ----------
    sketch_name:
        The ``name`` attribute of the sketch class.
    updates:
        Number of updates replayed.
    queries:
        Number of point queries issued.
    update_seconds:
        Average wall-clock seconds per update.
    query_seconds:
        Average wall-clock seconds per point query.
    average_error / maximum_error:
        Recovery errors of the final sketch state against the accumulated
        vector (``1/n·‖x - x̂‖_1`` and ``‖x - x̂‖_∞``).
    batch_size:
        Chunk size of the batched replay, or ``None`` for the scalar
        update-at-a-time replay.
    """

    sketch_name: str
    updates: int
    queries: int
    update_seconds: float
    query_seconds: float
    average_error: float
    maximum_error: float
    batch_size: Optional[int] = None


class StreamRunner:
    """Replays update streams into sketches and reports timing and accuracy."""

    def __init__(self, stream: UpdateStream) -> None:
        self.stream = stream
        self._truth = stream.accumulate()

    @property
    def truth(self) -> np.ndarray:
        """The frequency vector the stream accumulates to."""
        return self._truth

    def run(
        self,
        sketch: Sketch,
        query_count: int = 1_000,
        query_indices: Optional[Sequence[int]] = None,
        seed: RandomSource = None,
        batch_size: Optional[int] = None,
    ) -> StreamReport:
        """Replay the stream into ``sketch`` and measure update/query cost.

        Parameters
        ----------
        sketch:
            A freshly constructed sketch with the stream's dimension.
        query_count:
            Number of point queries to time (ignored when ``query_indices``
            is given).
        query_indices:
            Specific coordinates to query; defaults to a uniform sample.
        seed:
            Randomness for choosing the query coordinates.
        batch_size:
            When given, replay the stream through ``update_batch`` in order,
            in chunks of this many updates, and issue the point queries
            through ``query_batch``; ``None`` keeps the scalar
            update-at-a-time replay of the paper's streaming model.
        """
        if sketch.dimension != self.stream.dimension:
            raise ValueError(
                f"sketch dimension {sketch.dimension} does not match stream "
                f"dimension {self.stream.dimension}"
            )
        if batch_size is not None:
            batch_size = require_positive_int(batch_size, "batch_size")

        start = time.perf_counter()
        if batch_size is None:
            for update in self.stream:
                sketch.update(update.index, update.delta)
        else:
            for indices, deltas in self.stream.iter_batches(batch_size):
                sketch.update_batch(indices, deltas)
        update_elapsed = time.perf_counter() - start
        update_count = len(self.stream)

        if query_indices is None:
            rng = as_rng(seed)
            query_count = max(1, min(query_count, self.stream.dimension))
            query_indices = rng.integers(0, self.stream.dimension, size=query_count)
        query_indices = [int(i) for i in query_indices]

        start = time.perf_counter()
        if batch_size is None:
            for index in query_indices:
                sketch.query(index)
        else:
            sketch.query_batch(np.asarray(query_indices, dtype=np.int64))
        query_elapsed = time.perf_counter() - start

        recovered = sketch.recover()
        # computed inline (rather than via repro.eval.metrics) to keep the
        # layering acyclic: eval builds on streaming, not the other way round
        absolute_errors = np.abs(self._truth - recovered)
        return StreamReport(
            sketch_name=getattr(sketch, "name", type(sketch).__name__),
            updates=update_count,
            queries=len(query_indices),
            update_seconds=update_elapsed / max(update_count, 1),
            query_seconds=query_elapsed / max(len(query_indices), 1),
            average_error=float(np.mean(absolute_errors)),
            maximum_error=float(np.max(absolute_errors)),
            batch_size=batch_size,
        )
