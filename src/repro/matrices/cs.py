"""The Count-Sketch matrix Ψ(h, r) (Definition 2 of the paper).

``Ψ(h, r)`` is an ``s × n`` matrix with exactly one non-zero per column,
equal to the random sign ``r(j) ∈ {-1, +1}`` and placed at row ``h(j)``.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import KWiseHash, PairwiseHash
from repro.hashing.signs import SignHash
from repro.matrices.base import LinearOperator
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


class CSMatrix(LinearOperator):
    """Ψ(h, r) ∈ {-1,0,1}^{s×n}: Ψ[i, j] = r(j) iff h(j) = i, else 0."""

    def __init__(
        self,
        buckets: int,
        dimension: int,
        hash_function: KWiseHash = None,
        sign_function: SignHash = None,
        seed: RandomSource = None,
    ) -> None:
        buckets = require_positive_int(buckets, "buckets")
        dimension = require_positive_int(dimension, "dimension")
        super().__init__(buckets, dimension)
        rng = as_rng(seed)
        if hash_function is None:
            hash_function = PairwiseHash(buckets, seed=rng)
        if sign_function is None:
            sign_function = SignHash(seed=rng)
        if hash_function.range_size != buckets:
            raise ValueError(
                "hash_function range_size "
                f"{hash_function.range_size} does not match buckets {buckets}"
            )
        self.hash_function = hash_function
        self.sign_function = sign_function
        #: bucket assignment of every column: ``bucket_of[j] = h(j)``
        self.bucket_of = hash_function.hash_all(dimension)
        #: sign of every column: ``sign_of[j] = r(j)``
        self.sign_of = sign_function.sign_all(dimension).astype(np.float64)

    def apply(self, x) -> np.ndarray:
        """Compute ``Ψ(h, r)x``: per-bucket signed sums of coordinates of ``x``."""
        arr = self._check_input(x)
        return np.bincount(
            self.bucket_of, weights=arr * self.sign_of, minlength=self.rows
        )

    def column_sums(self) -> np.ndarray:
        """Return ψ, the per-bucket sum of signs of the coordinates hashed there."""
        return np.bincount(
            self.bucket_of, weights=self.sign_of, minlength=self.rows
        )

    def to_dense(self) -> np.ndarray:
        """Materialise Ψ(h, r) as a dense array (small examples only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self.bucket_of, np.arange(self.columns)] = self.sign_of
        return dense

    def bucket(self, index: int) -> int:
        """Return the bucket h(index) that coordinate ``index`` maps to."""
        if not (0 <= index < self.columns):
            raise IndexError(f"index {index} out of range [0, {self.columns})")
        return int(self.bucket_of[index])

    def sign(self, index: int) -> int:
        """Return the sign r(index) applied to coordinate ``index``."""
        if not (0 <= index < self.columns):
            raise IndexError(f"index {index} out of range [0, {self.columns})")
        return int(self.sign_of[index])
