"""Vertical concatenation of sketching operators.

The implicit sketching matrix Φ of both bias-aware algorithms is a vertical
stack: for ℓ1-S/R, ``d`` CM-matrices plus one sampling matrix; for ℓ2-S/R, one
CM-matrix plus ``d`` CS-matrices.  ``StackedOperator`` makes that stack a
first-class linear operator so linearity can be exercised end to end.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.matrices.base import LinearOperator


class StackedOperator(LinearOperator):
    """Vertical concatenation ``[Φ_1; Φ_2; ...; Φ_m]`` of operators on R^n."""

    def __init__(self, operators: Sequence[LinearOperator]) -> None:
        operators = list(operators)
        if not operators:
            raise ValueError("StackedOperator requires at least one operator")
        dimension = operators[0].columns
        for op in operators:
            if op.columns != dimension:
                raise ValueError(
                    "all stacked operators must share the same column count; "
                    f"got {op.columns} and {dimension}"
                )
        total_rows = sum(op.rows for op in operators)
        super().__init__(total_rows, dimension)
        self.operators: List[LinearOperator] = operators

    def apply(self, x) -> np.ndarray:
        """Apply every block and concatenate the results."""
        arr = self._check_input(x)
        return np.concatenate([op.apply(arr) for op in self.operators])

    def column_sums(self) -> np.ndarray:
        """Concatenate the per-block column-sum vectors.

        Note the blocks have different row counts, so unlike the single-block
        case this is a length-``rows`` vector formed block by block (it equals
        ``Φ · 1`` where 1 is the all-ones vector, which is exactly what the
        bias-aware recovery subtracts ``β̂`` against).
        """
        return np.concatenate([op.apply(np.ones(self.columns)) for op in self.operators])

    def to_dense(self) -> np.ndarray:
        """Materialise the stack as a dense array (small examples only)."""
        return np.vstack([op.to_dense() for op in self.operators])

    def split(self, y: np.ndarray) -> List[np.ndarray]:
        """Split a stacked sketch vector ``y = Φx`` back into per-block pieces."""
        y = np.asarray(y, dtype=np.float64)
        if y.ndim != 1 or y.size != self.rows:
            raise ValueError(
                f"expected a vector of length {self.rows}, got shape {y.shape}"
            )
        pieces = []
        offset = 0
        for op in self.operators:
            pieces.append(y[offset:offset + op.rows])
            offset += op.rows
        return pieces
