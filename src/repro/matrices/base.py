"""Common interface for sparse sketching operators."""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import ensure_1d_float_array


class LinearOperator(abc.ABC):
    """A linear map ``R^n -> R^rows`` applied via its sparse structure.

    Subclasses expose the two pieces every sketch in the paper needs:

    * :meth:`apply` — the matrix-vector product ``Φx``;
    * :meth:`column_sums` — the vector of coordinate-wise sums of the columns
      (``π`` for CM-matrices, ``ψ`` for CS-matrices), used by the bias-aware
      recovery to subtract ``β̂`` from every bucket.
    """

    def __init__(self, rows: int, columns: int) -> None:
        if rows <= 0 or columns <= 0:
            raise ValueError(
                f"operator shape must be positive, got ({rows}, {columns})"
            )
        self.rows = int(rows)
        self.columns = int(columns)

    @property
    def shape(self) -> tuple:
        """The (rows, columns) shape of the operator."""
        return (self.rows, self.columns)

    @abc.abstractmethod
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute the matrix-vector product ``Φx``."""

    @abc.abstractmethod
    def column_sums(self) -> np.ndarray:
        """Return the coordinate-wise sum of the columns of the operator."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialise the operator as a dense ``(rows, columns)`` array."""

    def _check_input(self, x) -> np.ndarray:
        arr = ensure_1d_float_array(x, "x")
        if arr.size != self.columns:
            raise ValueError(
                f"input vector has dimension {arr.size}, "
                f"operator expects {self.columns}"
            )
        return arr

    def __matmul__(self, x) -> np.ndarray:
        """Support the ``Phi @ x`` syntax as an alias for :meth:`apply`."""
        return self.apply(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rows={self.rows}, columns={self.columns})"
