"""The Count-Median matrix Π(h) (Definition 1 of the paper).

``Π(h)`` is an ``s × n`` 0/1 matrix with exactly one 1 per column, placed at
row ``h(j)`` for column ``j``.  Applying it to a frequency vector simply sums
the coordinates that hash into each bucket.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import KWiseHash, PairwiseHash
from repro.matrices.base import LinearOperator
from repro.utils.rng import RandomSource
from repro.utils.validation import require_positive_int


class CMMatrix(LinearOperator):
    """Π(h) ∈ {0,1}^{s×n}: Π(h)[i, j] = 1 iff h(j) = i.

    Parameters
    ----------
    buckets:
        Number of rows ``s`` (hash buckets).
    dimension:
        Number of columns ``n`` (the dimension of the input vector).
    hash_function:
        A pre-drawn hash function ``[n] -> [s]``; drawn fresh when omitted.
    seed:
        Randomness for drawing the hash function when ``hash_function`` is None.
    """

    def __init__(
        self,
        buckets: int,
        dimension: int,
        hash_function: KWiseHash = None,
        seed: RandomSource = None,
    ) -> None:
        buckets = require_positive_int(buckets, "buckets")
        dimension = require_positive_int(dimension, "dimension")
        super().__init__(buckets, dimension)
        if hash_function is None:
            hash_function = PairwiseHash(buckets, seed=seed)
        if hash_function.range_size != buckets:
            raise ValueError(
                "hash_function range_size "
                f"{hash_function.range_size} does not match buckets {buckets}"
            )
        self.hash_function = hash_function
        #: bucket assignment of every column: ``bucket_of[j] = h(j)``
        self.bucket_of = hash_function.hash_all(dimension)

    def apply(self, x) -> np.ndarray:
        """Compute ``Π(h)x``: per-bucket sums of the coordinates of ``x``."""
        arr = self._check_input(x)
        return np.bincount(self.bucket_of, weights=arr, minlength=self.rows)

    def column_sums(self) -> np.ndarray:
        """Return π, where π_i counts how many coordinates hash to bucket i."""
        return np.bincount(self.bucket_of, minlength=self.rows).astype(np.float64)

    def to_dense(self) -> np.ndarray:
        """Materialise Π(h) as a dense 0/1 array (small examples only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self.bucket_of, np.arange(self.columns)] = 1.0
        return dense

    def bucket(self, index: int) -> int:
        """Return the bucket h(index) that coordinate ``index`` maps to."""
        if not (0 <= index < self.columns):
            raise IndexError(f"index {index} out of range [0, {self.columns})")
        return int(self.bucket_of[index])
