"""Explicit sketching matrices (Definitions 1-3 of the paper).

The sketches in :mod:`repro.sketches` and :mod:`repro.core` never materialise
their sketching matrix — they use hashing directly.  This package provides the
matrices as explicit linear operators so that

* the linear-algebra identities the paper relies on (``Φ(x + y) = Φx + Φy``,
  column sums π and ψ, vertical stacking of the implicit Φ) can be tested
  directly, and
* small examples and the documentation can show the matrices the paper defines.
"""

from repro.matrices.base import LinearOperator
from repro.matrices.cm import CMMatrix
from repro.matrices.cs import CSMatrix
from repro.matrices.sampling import SamplingMatrix
from repro.matrices.stacked import StackedOperator

__all__ = [
    "LinearOperator",
    "CMMatrix",
    "CSMatrix",
    "SamplingMatrix",
    "StackedOperator",
]
