"""The sampling matrix Υ (Definition 3 of the paper).

``Υ ∈ {0,1}^{t×n}`` has exactly one randomly positioned 1 per *row*; applying
it to ``x`` draws ``t`` coordinates of ``x`` uniformly with replacement.  The
ℓ1 bias-aware sketch uses ``t = Θ(log n)`` samples whose median estimates the
bias (Algorithm 1, line 1 / Algorithm 2, line 1).
"""

from __future__ import annotations

import numpy as np

from repro.matrices.base import LinearOperator
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


class SamplingMatrix(LinearOperator):
    """Υ ∈ {0,1}^{t×n}: each row has a single 1 in a uniformly random column."""

    def __init__(
        self,
        samples: int,
        dimension: int,
        seed: RandomSource = None,
    ) -> None:
        samples = require_positive_int(samples, "samples")
        dimension = require_positive_int(dimension, "dimension")
        super().__init__(samples, dimension)
        rng = as_rng(seed)
        #: sampled column index of each row
        self.sampled_indices = rng.integers(0, dimension, size=samples)

    def apply(self, x) -> np.ndarray:
        """Compute ``Υx``: the sampled coordinates of ``x``."""
        arr = self._check_input(x)
        return arr[self.sampled_indices]

    def column_sums(self) -> np.ndarray:
        """Return how many times each coordinate was sampled."""
        return np.bincount(
            self.sampled_indices, minlength=self.columns
        ).astype(np.float64)[: self.columns]

    def to_dense(self) -> np.ndarray:
        """Materialise Υ as a dense 0/1 array (small examples only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[np.arange(self.rows), self.sampled_indices] = 1.0
        return dense

    @classmethod
    def theta_log_n(
        cls,
        dimension: int,
        constant: float = 20.0,
        seed: RandomSource = None,
    ) -> "SamplingMatrix":
        """Build the ``t = constant · log n`` sampling matrix used by Algorithm 1.

        The paper uses ``t = 20 log n`` (Lemma 3); ``constant`` makes the
        factor tunable for ablations.
        """
        dimension = require_positive_int(dimension, "dimension")
        if constant <= 0:
            raise ValueError(f"constant must be positive, got {constant}")
        samples = max(1, int(np.ceil(constant * np.log(max(dimension, 2)))))
        return cls(samples, dimension, seed=seed)
