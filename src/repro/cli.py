"""Command-line interface: noun-verb subcommands over the session facade.

The grammar is ``repro NOUN VERB [options]``, one noun per subsystem, all
routed through the unified :mod:`repro.api` session facade:

* ``repro dataset list`` — list the available workloads and their bias
  profiles;
* ``repro sketch fit`` — sketch a workload with one algorithm and report
  its accuracy and size (``--shards N`` ingests through the multi-core
  sharded engine; ``--window MODE[:ARG] --pane N`` sketches through the
  sliding-window engine and reports in-window accuracy);
* ``repro sketch list`` — list the registered algorithms;
* ``repro sketch save`` — sketch a workload and persist the session's
  sketch state (``--output`` takes a path **or** a ``store://`` URI);
* ``repro sketch load`` — reopen a saved session (from a path or a
  ``store://`` URI) and query it, independently of the process (or
  machine) that built it;
* ``repro experiment list`` / ``repro experiment run NAME`` — regenerate
  one of the paper's figures and optionally render it as an ASCII chart;
* ``repro store put|get|list|history|compact|delete`` — the persistent,
  versioned sketch catalog (:class:`repro.store.SketchStore`): append
  named snapshots, restore them bit-identically in any process, inspect
  the catalog, and fold closed window panes to reclaim space;
* ``repro serve`` — the asyncio ingest/query front door
  (:mod:`repro.server`): one writer session fed by batched ingest frames,
  read replicas answering queries on a bounded-staleness snapshot
  cadence, optional ``--store`` restore-on-boot / checkpoint-on-shutdown,
  graceful drain on SIGTERM.

**Legacy invocations keep working.**  The flat verbs that predate the
noun-verb grammar — ``repro datasets``, bare ``repro sketch``, ``repro
save``, ``repro load``, ``repro experiment [--list|NAME]`` — are rewritten
to their noun-verb form before parsing, each emitting exactly one
:class:`DeprecationWarning` naming the replacement (the same shim pattern
the :mod:`repro.api` migration used).

User errors (unknown sketch or dataset names, invalid geometry, missing
files, unknown store entries) exit with status 2 and a one-line
``error: ...`` message, never a traceback.  ``repro --version`` prints the
package version.

Invoke either as ``python -m repro.cli ...`` or through the ``repro-sketches``
console script installed by the package.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import List, Optional

import numpy as np

from repro.api import (
    CapabilityError,
    ConfigError,
    SketchConfig,
    SketchSession,
    read_payload,
)
from repro.data.registry import available_datasets, load_dataset
from repro.eval.experiments import (
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.eval.metrics import average_error, maximum_error
from repro.eval.plots import plot_result_table
from repro.serialization import SerializationError
from repro.server import ServerConfig, serve_until_signalled
from repro.sketches.registry import available_sketches, get_spec
from repro.store import SketchStore, format_store_uri
from repro.streaming.windows import WINDOW_MODES, WindowSpec
from repro.utils.deprecation import warn_deprecated
from repro.version import __version__

#: verbs of the ``sketch`` / ``experiment`` nouns, used to tell a new-style
#: invocation from a legacy flat one in :func:`_normalize_argv`
_SKETCH_VERBS = frozenset({"fit", "list", "save", "load"})
_EXPERIMENT_VERBS = frozenset({"list", "run"})


def _normalize_argv(argv: List[str]) -> List[str]:
    """Rewrite a legacy flat invocation to its noun-verb form.

    Each rewrite emits exactly one :class:`DeprecationWarning` naming the
    replacement; new-style invocations pass through untouched.  The mapping:

    ========================   ==============================
    legacy                     noun-verb
    ========================   ==============================
    ``datasets``               ``dataset list``
    ``sketch`` (no verb)       ``sketch fit``
    ``save``                   ``sketch save``
    ``load``                   ``sketch load``
    ``experiment --list``      ``experiment list``
    ``experiment`` (bare)      ``experiment list``
    ``experiment NAME``        ``experiment run NAME``
    ========================   ==============================
    """
    argv = list(argv)
    index = next(
        (i for i, token in enumerate(argv) if not token.startswith("-")), None
    )
    if index is None:
        return argv
    head, command, rest = argv[:index], argv[index], argv[index + 1:]
    following = rest[0] if rest else None
    if command == "datasets":
        warn_deprecated("repro datasets", "repro dataset list")
        return head + ["dataset", "list"] + rest
    if command in ("save", "load"):
        warn_deprecated(f"repro {command}", f"repro sketch {command}")
        return head + ["sketch", command] + rest
    if command == "sketch" and following not in _SKETCH_VERBS:
        warn_deprecated("repro sketch", "repro sketch fit")
        return head + ["sketch", "fit"] + rest
    if command == "experiment" and following not in _EXPERIMENT_VERBS:
        if "--list" in rest:
            warn_deprecated("repro experiment --list", "repro experiment list")
            return (head + ["experiment", "list"]
                    + [token for token in rest if token != "--list"])
        if following is None or following.startswith("-"):
            warn_deprecated("repro experiment", "repro experiment list")
            return head + ["experiment", "list"] + rest
        warn_deprecated("repro experiment <name>", "repro experiment run <name>")
        return head + ["experiment", "run"] + rest
    return argv


class _NounVerbParser(argparse.ArgumentParser):
    """An ``ArgumentParser`` that rewrites legacy invocations before parsing."""

    def parse_args(self, args=None, namespace=None):  # type: ignore[override]
        if args is None:
            args = sys.argv[1:]
        return super().parse_args(_normalize_argv(list(args)), namespace)


def _build_parser() -> argparse.ArgumentParser:
    parser = _NounVerbParser(
        prog="repro-sketches",
        description="Bias-aware sketches (Chen & Zhang, VLDB 2017): datasets, "
                    "sketching, a persistent sketch store, and figure "
                    "reproduction from the command line.",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    nouns = parser.add_subparsers(dest="command", required=True)

    dataset = nouns.add_parser("dataset", help="the workload catalog")
    dataset_verbs = dataset.add_subparsers(dest="verb", required=True)
    dataset_list = dataset_verbs.add_parser(
        "list", help="list available workloads and their bias profiles"
    )
    dataset_list.add_argument("--dimension", type=str, default=20_000,
                              help="dimension used when profiling each "
                                   "workload (scientific notation like 1e5 "
                                   "is accepted)")
    dataset_list.add_argument("--head-size", type=str, default=100,
                              help="k used for the tail/bias-gain statistics")
    dataset_list.add_argument("--seed", type=int, default=0)

    sketch = nouns.add_parser("sketch", help="fit, persist and restore sketches")
    sketch_verbs = sketch.add_subparsers(dest="verb", required=True)
    fit = sketch_verbs.add_parser(
        "fit", help="sketch one workload with one algorithm and report accuracy"
    )
    _add_sketch_arguments(fit)
    fit.add_argument("--list-algorithms", action="store_true",
                     help="print the registered algorithms and exit")
    sketch_verbs.add_parser("list", help="list the registered algorithms")
    save = sketch_verbs.add_parser(
        "save", help="sketch a workload and persist the sketch state"
    )
    _add_sketch_arguments(save)
    save.add_argument("--output", required=True,
                      help="destination for the serialized sketch: a path or "
                           "a store://PATH#NAME catalog URI")
    load = sketch_verbs.add_parser(
        "load", help="restore a saved sketch and query it"
    )
    load.add_argument("path",
                      help="file written by 'repro sketch save' (or "
                           "session.save()), or a store://PATH#NAME[@VERSION] "
                           "catalog URI")
    load.add_argument("--query", type=int, nargs="*", default=None,
                      help="coordinates to point-query on the restored sketch")

    experiment = nouns.add_parser("experiment", help="the paper's figures")
    experiment_verbs = experiment.add_subparsers(dest="verb", required=True)
    experiment_list = experiment_verbs.add_parser(
        "list", help="print the registered experiments"
    )
    # legacy `repro experiment --list` could carry run options; accept and
    # ignore them so the rewritten invocation still parses
    _add_experiment_options(experiment_list)
    run = experiment_verbs.add_parser(
        "run", help="regenerate one of the paper's figures"
    )
    run.add_argument("name", help="experiment id (see 'repro experiment list')")
    _add_experiment_options(run)

    store = nouns.add_parser(
        "store", help="the persistent, versioned sketch catalog (SQLite)"
    )
    store_verbs = store.add_subparsers(dest="verb", required=True)
    put = store_verbs.add_parser(
        "put", help="append an immutable snapshot of a sketch under a name"
    )
    put.add_argument("store",
                     help="path of the catalog database (created if missing)")
    put.add_argument("name", help="catalog name the snapshot is appended to")
    put.add_argument("--input", default=None,
                     help="store an existing payload file instead of fitting "
                          "a workload")
    _add_sketch_arguments(put)
    get = store_verbs.add_parser(
        "get", help="restore a named snapshot and describe it"
    )
    get.add_argument("store", help="path of the catalog database")
    get.add_argument("name", help="catalog name to restore")
    get.add_argument("--version", type=int, default=None,
                     help="snapshot version to restore (default: latest)")
    get.add_argument("--output", default=None,
                     help="also write the restored payload to this path")
    get.add_argument("--query", type=int, nargs="*", default=None,
                     help="coordinates to point-query on the restored sketch")
    store_list = store_verbs.add_parser(
        "list", help="list the catalog's names and their latest snapshots"
    )
    store_list.add_argument("store", help="path of the catalog database")
    history = store_verbs.add_parser(
        "history", help="list every retained snapshot of a name"
    )
    history.add_argument("store", help="path of the catalog database")
    history.add_argument("name", help="catalog name to inspect")
    compact = store_verbs.add_parser(
        "compact", help="fold closed window panes of retained snapshots"
    )
    compact.add_argument("store", help="path of the catalog database")
    compact.add_argument("name", nargs="?", default=None,
                         help="compact one name (default: the whole store)")
    compact.add_argument("--include-latest", action="store_true",
                         help="also fold each name's newest snapshot "
                              "(default keeps it pane-for-pane replayable)")
    compact.add_argument("--no-vacuum", action="store_true",
                         help="skip the VACUUM that reclaims freed file space")
    delete = store_verbs.add_parser(
        "delete", help="remove a name (or one of its snapshots)"
    )
    delete.add_argument("store", help="path of the catalog database")
    delete.add_argument("name", help="catalog name to remove")
    delete.add_argument("--version", type=int, default=None,
                        help="remove one snapshot version instead of the "
                             "whole name")

    serve = nouns.add_parser(
        "serve", help="run the asyncio ingest/query front door"
    )
    serve.set_defaults(verb=None)
    serve.add_argument("--host", default=None,
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port; 0 binds an ephemeral port and prints "
                            "it (default 0)")
    serve.add_argument("--config", default=None, metavar="PATH",
                       help="JSON file of server + sketch settings "
                            "(flags override file keys)")
    serve.add_argument("--store", default=None, metavar="URI",
                       help="store://PATH#NAME catalog URI: restore the "
                            "newest snapshot on boot (when it exists) and "
                            "checkpoint on graceful shutdown")
    serve.add_argument("--algorithm", default=None,
                       help="sketch to create when neither --config nor the "
                            "store provides one (see 'repro sketch list')")
    serve.add_argument("--dimension", type=str, default=None,
                       help="universe size (scientific notation accepted)")
    serve.add_argument("--width", type=str, default=2_048,
                       help="buckets per row (scientific notation accepted)")
    serve.add_argument("--depth", type=str, default=9,
                       help="hash rows (scientific notation accepted)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--shards", type=int, default=None,
                       help="apply ingest batches through the multi-core "
                            "sharded engine with this many shards (linear "
                            "sketches only; default 1)")
    serve.add_argument("--window", default=None, metavar="MODE[:ARG]",
                       help="windowed serving: 'tumbling', 'sliding:<panes>' "
                            "or 'decay:<factor>' (requires --pane)")
    serve.add_argument("--pane", type=str, default=None,
                       help="pane size in updates for --window")
    serve.add_argument("--snapshot-interval", type=float, default=None,
                       dest="snapshot_interval", metavar="SECONDS",
                       help="refresh the read replica at most this many "
                            "seconds after the first un-snapshotted update "
                            "(default 0.25)")
    serve.add_argument("--snapshot-updates", type=str, default=None,
                       dest="snapshot_updates", metavar="N",
                       help="also refresh once this many updates accumulate "
                            "(default 100000)")
    serve.add_argument("--queue-depth", type=str, default=None,
                       dest="queue_depth", metavar="BATCHES",
                       help="bound of the ingest queue, in batches "
                            "(default 64)")
    serve.add_argument("--max-frame-bytes", type=str, default=None,
                       dest="max_frame_bytes", metavar="BYTES",
                       help="per-connection cap on one frame's size "
                            "(default 64 MiB)")
    return parser


def _add_sketch_arguments(parser: argparse.ArgumentParser) -> None:
    """Workload/algorithm/geometry options shared by the fitting verbs."""
    parser.add_argument("--dataset", default="gaussian",
                        help="workload name (see 'repro dataset list')")
    parser.add_argument("--algorithm", default="l2_sr",
                        help="sketch algorithm (see 'repro sketch list')")
    parser.add_argument("--dimension", type=str, default=50_000,
                        help="universe size (scientific notation like 1e8 is "
                             "accepted)")
    parser.add_argument("--width", type=str, default=2_048,
                        help="buckets per row (scientific notation accepted)")
    parser.add_argument("--depth", type=str, default=9,
                        help="hash rows (scientific notation accepted)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=1,
                        help="ingest through the multi-core sharded engine "
                             "with this many shards (linear sketches only; "
                             "default 1 = single-process fit)")
    parser.add_argument("--window", default=None, metavar="MODE[:ARG]",
                        help="windowed ingestion: 'tumbling', "
                             "'sliding:<panes>' (e.g. sliding:16) or "
                             "'decay:<factor>' (e.g. decay:0.9); queries "
                             "are answered over the most recent panes only "
                             "(linear sketches; requires --pane)")
    parser.add_argument("--pane", type=str, default=None,
                        help="pane size in updates for --window "
                             "(scientific notation accepted)")


def _add_experiment_options(parser: argparse.ArgumentParser) -> None:
    """Options of ``experiment run`` (accepted-and-ignored by ``list``)."""
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--batch-size", type=int, default=None,
                        help="replay streaming experiments through the "
                             "vectorised update_batch path in chunks of "
                             "this many updates (default: scalar "
                             "update-at-a-time replay)")
    parser.add_argument("--plot", action="store_true",
                        help="also render the series as an ASCII chart")
    parser.add_argument("--metric", default="average_error",
                        choices=["average_error", "maximum_error"])


#: flags coerced through :func:`_geometry_value` before dispatch
_GEOMETRY_FLAGS = ("dimension", "width", "depth", "head_size", "pane",
                   "snapshot_updates", "queue_depth", "max_frame_bytes")


def _geometry_value(value, name: str) -> int:
    """Coerce a geometry flag to an int, accepting scientific notation.

    ``--dimension 1e8`` and ``--width 2e4`` parse to exact integers; values
    that are not whole numbers (``1.5``, ``1e-3``, ``abc``) raise
    :class:`~repro.api.ConfigError`, which the CLI reports as its usual
    one-line ``error: ...`` with exit status 2.
    """
    if value is None or isinstance(value, int):
        return value
    try:
        return int(value)
    except ValueError:
        pass
    try:
        number = float(value)
    except ValueError:
        raise ConfigError(
            f"{name} must be an integer (scientific notation like 1e8 is "
            f"accepted), got {value!r}"
        ) from None
    if not number.is_integer():
        raise ConfigError(
            f"{name} must be a whole number, got {value!r}"
        )
    return int(number)


def _coerce_geometry(args: argparse.Namespace) -> None:
    for name in _GEOMETRY_FLAGS:
        if hasattr(args, name):
            setattr(args, name, _geometry_value(getattr(args, name), name))


def _window_spec(args: argparse.Namespace) -> Optional[WindowSpec]:
    """Build the :class:`WindowSpec` the ``--window``/``--pane`` flags ask for.

    Returns ``None`` when no windowing was requested; every malformed
    combination raises :class:`~repro.api.ConfigError`, which the CLI
    reports as its usual one-line ``error: ...`` with exit status 2.
    """
    window = getattr(args, "window", None)
    pane = getattr(args, "pane", None)
    if window is None:
        if pane is not None:
            raise ConfigError(
                "--pane requires --window (it sizes the window's panes)"
            )
        return None
    if pane is None:
        raise ConfigError(
            "--window requires --pane (the pane size in updates, e.g. "
            "--window sliding:16 --pane 1000)"
        )
    mode, _, argument = window.partition(":")
    if mode not in WINDOW_MODES:
        raise ConfigError(
            f"unknown window mode {mode!r}; expected tumbling, "
            "sliding:<panes> or decay:<factor>"
        )
    panes, decay = 1, None
    if mode == "sliding":
        if not argument:
            raise ConfigError(
                "sliding windows take a pane count, e.g. --window sliding:16"
            )
        panes = _geometry_value(argument, "window pane count")
    elif mode == "decay":
        if not argument:
            raise ConfigError(
                "decay windows take a factor in (0, 1), e.g. --window "
                "decay:0.9"
            )
        try:
            decay = float(argument)
        except ValueError:
            raise ConfigError(
                f"decay factor must be a number in (0, 1), got {argument!r}"
            ) from None
    elif argument:
        raise ConfigError(
            "tumbling windows take no argument; use --window tumbling"
        )
    return WindowSpec(mode=mode, panes=panes, pane_size=pane, by="count",
                      decay=decay)


def _load_cli_dataset(args: argparse.Namespace):
    if args.dataset not in available_datasets():
        known = ", ".join(available_datasets())
        raise ConfigError(f"unknown dataset {args.dataset!r}; available: {known}")
    return load_dataset(args.dataset, seed=args.seed, dimension=args.dimension)


def _command_dataset_list(args: argparse.Namespace, out) -> int:
    print(f"{'dataset':<12} {'mean':>12} {'std':>12} {'bias gain (l2)':>16}",
          file=out)
    for name in available_datasets():
        dataset = load_dataset(name, seed=args.seed, dimension=args.dimension)
        summary = dataset.summary(head_size=args.head_size)
        print(
            f"{name:<12} {summary['mean']:>12.2f} {summary['std']:>12.2f} "
            f"{summary['bias_gain_l2']:>16.2f}",
            file=out,
        )
    print("\n'bias gain' is Err_2^k(x) / min_b Err_2^k(x - b): how much "
          "de-biasing shrinks the error the sketches are charged against.",
          file=out)
    return 0


def _build_workload_session(args: argparse.Namespace):
    """Open a session on the requested workload (single-process or sharded).

    Callers must close the session (``with session: ...``) — a sharded
    ingest leaves a warm worker pool attached to it.
    """
    dataset = _load_cli_dataset(args)
    config = SketchConfig(
        args.algorithm,
        dimension=dataset.dimension,
        width=args.width,
        depth=args.depth,
        seed=args.seed,
        window=_window_spec(args),
    )
    session = SketchSession.from_config(config)
    try:
        session.ingest(
            dataset.vector, shards=max(1, getattr(args, "shards", 1))
        )
    except BaseException:
        session.close()
        raise
    return dataset, session


def _describe_window(session, out) -> None:
    """Print the window lines shared by ``sketch fit`` and the restore verbs."""
    window = session.window
    spec = window.spec
    extent = "update" if spec.by == "count" else "time-unit"
    detail = f"{spec.panes} pane(s) x {spec.pane_size} {extent}s"
    if spec.mode == "decay":
        detail += f", factor {spec.decay}"
    print(f"window           : {spec.mode} ({detail})", file=out)
    print(f"window fill      : {window.items_in_window} of "
          f"{session.items_processed} updates in window "
          f"({window.pane_closes} pane closes, {window.evictions} evictions)",
          file=out)


def _windowed_truth(session, dataset) -> Optional[np.ndarray]:
    """The frequency vector the current window actually summarises.

    A dense workload vector is streamed into a windowed session as one
    update per non-zero coordinate in index order, so the window retains the
    *last* ``items_in_window`` of those updates.  Decay windows keep (faded)
    full history, which no restriction reproduces — they return ``None``.
    """
    if session.window.spec.mode == "decay":
        return None
    indices = np.flatnonzero(dataset.vector)
    kept = indices[indices.size - session.items_in_window:]
    truth = np.zeros(dataset.dimension)
    truth[kept] = dataset.vector[kept]
    return truth


def _command_sketch_list(args: argparse.Namespace, out) -> int:
    for name in available_sketches():
        print(name, file=out)
    return 0


def _command_sketch_fit(args: argparse.Namespace, out) -> int:
    if args.list_algorithms:
        return _command_sketch_list(args, out)
    dataset, session = _build_workload_session(args)
    with session:
        print(f"dataset          : {dataset.name} (n = {dataset.dimension})",
              file=out)
        print(f"algorithm        : {args.algorithm}", file=out)
        if getattr(args, "shards", 1) > 1:
            print(f"ingestion        : sharded ({args.shards} shards)", file=out)
        if session.windowed:
            _describe_window(session, out)
        print(f"sketch size      : {session.size_in_words()} words "
              f"({dataset.dimension / session.size_in_words():.1f}x compression)",
              file=out)
        truth = dataset.vector
        average_label, maximum_label = "average error", "maximum error"
        if session.windowed:
            truth = _windowed_truth(session, dataset)
            if truth is None:
                # no error metrics to print, so skip the (full-universe)
                # recovery
                print("errors           : n/a for decay windows (estimates "
                      "are exponentially faded counts)", file=out)
                return 0
            average_label, maximum_label = ("window avg error",
                                            "window max error")
        recovered = session.recover()
        print(f"{average_label:<17}: {average_error(truth, recovered):.4f}",
              file=out)
        print(f"{maximum_label:<17}: {maximum_error(truth, recovered):.4f}",
              file=out)
        if get_spec(args.algorithm).bias_aware and not session.windowed:
            print(f"estimated bias   : {session.estimate_bias():.4f}", file=out)
            print(f"vector mean      : {float(np.mean(dataset.vector)):.4f}",
                  file=out)
    return 0


def _command_sketch_save(args: argparse.Namespace, out) -> int:
    dataset, session = _build_workload_session(args)
    with session:
        payload = session.to_bytes()
        destination = session.save(args.output)
    print(f"saved            : {destination if destination is not None else args.output}",
          file=out)
    print(f"dataset          : {dataset.name} (n = {dataset.dimension})", file=out)
    print(f"algorithm        : {args.algorithm}", file=out)
    print(f"payload          : {len(payload)} bytes "
          f"({session.size_in_words()} state words)", file=out)
    return 0


def _command_sketch_load(args: argparse.Namespace, out) -> int:
    payload = read_payload(args.path)
    session = SketchSession.from_bytes(payload)
    print(f"loaded           : {args.path}", file=out)
    if session.windowed:
        state = session.state_dict()
        print(f"kind             : windowed {session.config.name} "
              f"(window_version {state['window_version']})", file=out)
        _describe_window(session, out)
        pane_config = state["panes"][-1]["config"]
        settings = ", ".join(f"{k}={v}" for k, v in sorted(pane_config.items()))
        print(f"pane config      : {settings}", file=out)
    else:
        state = session.state_dict()
        print(f"kind             : {state['kind']} "
              f"(state_version {state['state_version']})", file=out)
        settings = ", ".join(f"{k}={v}" for k, v in sorted(state["config"].items()))
        print(f"config           : {settings}", file=out)
    print(f"payload          : {len(payload)} bytes "
          f"({session.size_in_words()} state words)", file=out)
    print(f"items processed  : {session.items_processed}", file=out)
    if session.spec.bias_aware and not session.windowed:
        print(f"estimated bias   : {session.estimate_bias():.4f}", file=out)
    if args.query:
        for index in args.query:
            estimate = session.query(kind="point", index=index)
            print(f"query x[{index}]      : {estimate:.4f}", file=out)
    return 0


def _command_experiment_list(args: argparse.Namespace, out) -> int:
    for name in available_experiments():
        spec = get_experiment(name)
        print(f"{name:<14} {spec.figure:<14} {spec.description}", file=out)
    return 0


def _command_experiment_run(args: argparse.Namespace, out) -> int:
    table = run_experiment(args.name, seed=args.seed, batch_size=args.batch_size)
    metrics = ("average_error", "maximum_error")
    if any(row.update_seconds is not None for row in table):
        metrics = ("average_error", "maximum_error", "update_seconds",
                   "query_seconds")
    print(table.to_text(metrics=metrics), file=out)
    if args.plot:
        print(plot_result_table(table, metric=args.metric), file=out)
    print(f"best algorithm by {args.metric}: "
          f"{table.best_algorithm(args.metric)}", file=out)
    return 0


def _command_store_put(args: argparse.Namespace, out) -> int:
    if args.input is not None:
        payload = read_payload(args.input)
    else:
        _, session = _build_workload_session(args)
        with session:
            payload = session.to_bytes()
    with SketchStore(args.store) as store:
        version = store.put(args.name, payload)
    print(f"stored           : "
          f"{format_store_uri(args.store, args.name, version)}", file=out)
    print(f"payload          : {len(payload)} bytes", file=out)
    return 0


def _command_store_get(args: argparse.Namespace, out) -> int:
    with SketchStore(args.store) as store:
        snapshots = store.history(args.name)
        payload = store.get_payload(args.name, args.version)
    version = args.version if args.version is not None else snapshots[-1].version
    session = SketchSession.from_bytes(payload)
    print(f"restored         : "
          f"{format_store_uri(args.store, args.name, version)}", file=out)
    print(f"config           : {session.config.summary()}", file=out)
    if session.windowed:
        _describe_window(session, out)
    print(f"payload          : {len(payload)} bytes "
          f"({session.size_in_words()} state words)", file=out)
    print(f"items processed  : {session.items_processed}", file=out)
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(payload)
        print(f"written          : {args.output}", file=out)
    if args.query:
        for index in args.query:
            estimate = session.query(kind="point", index=index)
            print(f"query x[{index}]      : {estimate:.4f}", file=out)
    return 0


def _command_store_list(args: argparse.Namespace, out) -> int:
    with SketchStore(args.store) as store:
        entries = store.list()
    print(f"{'name':<20} {'kind':<14} {'latest':>6} {'snaps':>5} "
          f"{'items':>10} {'bytes':>10}  updated (UTC)", file=out)
    for entry in entries:
        kind = entry.kind + ("+w" if entry.windowed else "")
        print(f"{entry.name:<20} {kind:<14} {entry.latest_version:>6} "
              f"{entry.snapshot_count:>5} {entry.items_processed:>10} "
              f"{entry.total_bytes:>10}  {entry.updated_at}", file=out)
    if not entries:
        print("(empty store)", file=out)
    return 0


def _command_store_history(args: argparse.Namespace, out) -> int:
    with SketchStore(args.store) as store:
        snapshots = store.history(args.name)
    print(f"{'version':>7} {'kind':<14} {'panes':>5} {'items':>10} "
          f"{'bytes':>10} {'compacted':>9}  created (UTC)", file=out)
    for snapshot in snapshots:
        panes = "-" if snapshot.pane_count is None else str(snapshot.pane_count)
        compacted = "yes" if snapshot.compacted else "no"
        print(f"{snapshot.version:>7} {snapshot.kind:<14} {panes:>5} "
              f"{snapshot.items_processed:>10} {snapshot.payload_bytes:>10} "
              f"{compacted:>9}  {snapshot.created_at}", file=out)
    return 0


def _command_store_compact(args: argparse.Namespace, out) -> int:
    with SketchStore(args.store) as store:
        report = store.compact(
            args.name,
            keep_latest=not args.include_latest,
            vacuum=not args.no_vacuum,
        )
    print(f"compacted        : {report.snapshots_compacted} of "
          f"{report.snapshots_examined} candidate snapshot(s)", file=out)
    print(f"panes folded     : {report.panes_folded}", file=out)
    print(f"payload bytes    : {report.bytes_before} -> {report.bytes_after} "
          f"({report.bytes_saved} saved)", file=out)
    return 0


def _command_store_delete(args: argparse.Namespace, out) -> int:
    with SketchStore(args.store) as store:
        removed = store.delete(args.name, args.version)
    label = (args.name if args.version is None
             else f"{args.name}@{args.version}")
    print(f"deleted          : {label} ({removed} snapshot(s))", file=out)
    return 0


def _server_config(args: argparse.Namespace) -> ServerConfig:
    """Build the :class:`ServerConfig` that ``repro serve`` asked for.

    Precedence (highest first): command-line flags, ``--config`` file
    keys, :class:`ServerConfig` defaults.  The sketch geometry flags only
    apply when ``--algorithm`` is given; otherwise the sketch comes from
    the config file, or from the store snapshot on boot.
    """
    mapping = {}
    if args.config is not None:
        with open(args.config, "r", encoding="utf-8") as handle:
            try:
                mapping = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"invalid JSON in {args.config}: {exc}"
                ) from exc
    sketch = None
    if args.algorithm is not None:
        if args.dimension is None:
            raise ConfigError(
                "serve needs --dimension alongside --algorithm"
            )
        sketch = SketchConfig(
            args.algorithm,
            dimension=args.dimension,
            width=args.width,
            depth=args.depth,
            seed=args.seed,
            window=_window_spec(args),
        )
    elif _window_spec(args) is not None:
        raise ConfigError(
            "--window on serve requires --algorithm (the window shapes the "
            "sketch being created)"
        )
    overrides = {
        key: getattr(args, key)
        for key in ("host", "port", "store", "shards", "snapshot_interval",
                    "snapshot_updates", "queue_depth", "max_frame_bytes")
        if getattr(args, key) is not None
    }
    return ServerConfig.from_mapping(mapping, sketch=sketch, **overrides)


def _command_serve(args: argparse.Namespace, out) -> int:
    config = _server_config(args)

    def on_ready(server) -> None:
        print(f"serving          : {server.host}:{server.port} "
              f"(pid {os.getpid()})", file=out)
        print(f"sketch           : {server.sketch_config.summary()}", file=out)
        if config.store is not None:
            origin = ("restored from" if server.restored_from_store
                      else "will checkpoint to")
            print(f"store            : {origin} {config.store}", file=out)
        if config.shards > 1:
            print(f"ingestion        : sharded ({config.shards} shards)",
                  file=out)
        print(f"cadence          : snapshot every "
              f"{config.snapshot_interval:g}s or {config.snapshot_updates} "
              f"updates", file=out)
        print("send SIGTERM (or Ctrl-C) to drain", file=out)
        out.flush()

    summary = asyncio.run(serve_until_signalled(config, on_ready=on_ready))
    print(f"drained          : {summary['updates_applied']} update(s) in "
          f"{summary['batches_applied']} batch(es), final epoch "
          f"{summary['final_epoch']}", file=out)
    if summary["batches_rejected"]:
        print(f"rejected         : {summary['batches_rejected']} batch(es)",
              file=out)
    if summary["checkpoint"] is not None:
        print(f"checkpoint       : {summary['checkpoint']}", file=out)
    return 0


_COMMANDS = {
    ("dataset", "list"): _command_dataset_list,
    ("sketch", "fit"): _command_sketch_fit,
    ("sketch", "list"): _command_sketch_list,
    ("sketch", "save"): _command_sketch_save,
    ("sketch", "load"): _command_sketch_load,
    ("experiment", "list"): _command_experiment_list,
    ("experiment", "run"): _command_experiment_run,
    ("store", "put"): _command_store_put,
    ("store", "get"): _command_store_get,
    ("store", "list"): _command_store_list,
    ("store", "history"): _command_store_history,
    ("store", "compact"): _command_store_compact,
    ("store", "delete"): _command_store_delete,
    ("serve", None): _command_serve,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code.

    User errors surface as a single ``error: ...`` line and exit code 2.
    """
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[(args.command, args.verb)]
    try:
        _coerce_geometry(args)
        return handler(args, out)
    except (ConfigError, CapabilityError, SerializationError) as error:
        return _fail(error, out)
    except KeyError as error:
        # registry lookups (datasets, experiments) raise KeyError whose first
        # argument is the full one-line message
        return _fail(error.args[0] if error.args else error, out)
    except (FileNotFoundError, IsADirectoryError, PermissionError) as error:
        name = getattr(error, "filename", None) or "file"
        return _fail(f"cannot read {name}: {error.strerror or error}", out)
    except (IndexError, ValueError) as error:
        # the validation layer raises these for bad user input (out-of-range
        # query indices, bad dataset parameters, store misuse via StoreError);
        # anything else is a bug that REPRO_CLI_DEBUG=1 surfaces with a full
        # traceback
        return _fail(error, out)


def _fail(detail, out) -> int:
    """Report a user error as a single line, unless debugging is requested."""
    if os.environ.get("REPRO_CLI_DEBUG"):
        raise
    print(f"error: {detail}", file=out)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
