"""Command-line interface.

Three subcommands cover the everyday uses of the library without writing any
Python:

* ``repro datasets`` — list the available workloads and their bias profiles;
* ``repro sketch`` — sketch a workload with one algorithm and report its
  accuracy and size;
* ``repro experiment`` — regenerate one of the paper's figures (see
  ``repro experiment --list``) and optionally render it as an ASCII chart.

Invoke either as ``python -m repro.cli ...`` or through the ``repro-sketches``
console script installed by the package.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.data.registry import available_datasets, load_dataset
from repro.eval.experiments import (
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.eval.metrics import average_error, maximum_error
from repro.eval.plots import plot_result_table
from repro.sketches.registry import available_sketches, make_sketch


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sketches",
        description="Bias-aware sketches (Chen & Zhang, VLDB 2017): datasets, "
                    "sketching, and figure reproduction from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser(
        "datasets", help="list available workloads and their bias profiles"
    )
    datasets.add_argument("--dimension", type=int, default=20_000,
                          help="dimension used when profiling each workload")
    datasets.add_argument("--head-size", type=int, default=100,
                          help="k used for the tail/bias-gain statistics")
    datasets.add_argument("--seed", type=int, default=0)

    sketch = subparsers.add_parser(
        "sketch", help="sketch one workload with one algorithm and report accuracy"
    )
    sketch.add_argument("--dataset", default="gaussian",
                        choices=available_datasets())
    sketch.add_argument("--algorithm", default="l2_sr",
                        help="sketch algorithm (see --list-algorithms)")
    sketch.add_argument("--list-algorithms", action="store_true",
                        help="print the registered algorithms and exit")
    sketch.add_argument("--dimension", type=int, default=50_000)
    sketch.add_argument("--width", type=int, default=2_048)
    sketch.add_argument("--depth", type=int, default=9)
    sketch.add_argument("--seed", type=int, default=0)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument("name", nargs="?", default=None,
                            help="experiment id (see --list)")
    experiment.add_argument("--list", action="store_true",
                            help="print the registered experiments and exit")
    experiment.add_argument("--seed", type=int, default=2017)
    experiment.add_argument("--batch-size", type=int, default=None,
                            help="replay streaming experiments through the "
                                 "vectorised update_batch path in chunks of "
                                 "this many updates (default: scalar "
                                 "update-at-a-time replay)")
    experiment.add_argument("--plot", action="store_true",
                            help="also render the series as an ASCII chart")
    experiment.add_argument("--metric", default="average_error",
                            choices=["average_error", "maximum_error"])
    return parser


def _command_datasets(args: argparse.Namespace, out) -> int:
    print(f"{'dataset':<12} {'mean':>12} {'std':>12} {'bias gain (l2)':>16}",
          file=out)
    for name in available_datasets():
        dataset = load_dataset(name, seed=args.seed, dimension=args.dimension)
        summary = dataset.summary(head_size=args.head_size)
        print(
            f"{name:<12} {summary['mean']:>12.2f} {summary['std']:>12.2f} "
            f"{summary['bias_gain_l2']:>16.2f}",
            file=out,
        )
    print("\n'bias gain' is Err_2^k(x) / min_b Err_2^k(x - b): how much "
          "de-biasing shrinks the error the sketches are charged against.",
          file=out)
    return 0


def _command_sketch(args: argparse.Namespace, out) -> int:
    if args.list_algorithms:
        for name in available_sketches():
            print(name, file=out)
        return 0
    dataset = load_dataset(args.dataset, seed=args.seed, dimension=args.dimension)
    sketch = make_sketch(args.algorithm, dataset.dimension, args.width,
                         args.depth, seed=args.seed)
    sketch.fit(dataset.vector)
    recovered = sketch.recover()
    print(f"dataset          : {dataset.name} (n = {dataset.dimension})", file=out)
    print(f"algorithm        : {args.algorithm}", file=out)
    print(f"sketch size      : {sketch.size_in_words()} words "
          f"({dataset.dimension / sketch.size_in_words():.1f}x compression)",
          file=out)
    print(f"average error    : {average_error(dataset.vector, recovered):.4f}",
          file=out)
    print(f"maximum error    : {maximum_error(dataset.vector, recovered):.4f}",
          file=out)
    if hasattr(sketch, "estimate_bias"):
        print(f"estimated bias   : {sketch.estimate_bias():.4f}", file=out)
        print(f"vector mean      : {float(np.mean(dataset.vector)):.4f}", file=out)
    return 0


def _command_experiment(args: argparse.Namespace, out) -> int:
    if args.list or args.name is None:
        for name in available_experiments():
            spec = get_experiment(name)
            print(f"{name:<14} {spec.figure:<14} {spec.description}", file=out)
        return 0
    table = run_experiment(args.name, seed=args.seed, batch_size=args.batch_size)
    metrics = ("average_error", "maximum_error")
    if any(row.update_seconds is not None for row in table):
        metrics = ("average_error", "maximum_error", "update_seconds",
                   "query_seconds")
    print(table.to_text(metrics=metrics), file=out)
    if args.plot:
        print(plot_result_table(table, metric=args.metric), file=out)
    print(f"best algorithm by {args.metric}: "
          f"{table.best_algorithm(args.metric)}", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "datasets":
        return _command_datasets(args, out)
    if args.command == "sketch":
        return _command_sketch(args, out)
    if args.command == "experiment":
        return _command_experiment(args, out)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
