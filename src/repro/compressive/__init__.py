"""Compressive-sensing comparators discussed in the paper's related work.

Section 2 of the paper discusses BOMP (Yan et al., SIGMOD 2015), which tackles
the same biased-recovery problem with dense Gaussian sketches and Orthogonal
Matching Pursuit: sketch with a Gaussian matrix Φ, prepend the normalised
all-ones column at recovery time, and run OMP for ``k + 1`` iterations so that
the bias is recovered as the coefficient of the all-ones atom.

The paper's criticisms — OMP is expensive and cannot answer individual point
queries without decoding the whole vector — are exactly what the ablation
benchmark ``benchmarks/test_ablation_bomp.py`` measures.  This package
provides the pieces needed for that comparison:

* :class:`GaussianSketch` — a dense Gaussian linear sketch ``y = Φx`` with
  entries ``N(0, 1/t)`` (mergeable like every linear sketch),
* :func:`orthogonal_matching_pursuit` — a plain OMP solver,
* :class:`BOMPRecovery` — the full sketch-and-recover pipeline for biased
  k-sparse vectors.
"""

from repro.compressive.gaussian import GaussianSketch
from repro.compressive.omp import OMPResult, orthogonal_matching_pursuit
from repro.compressive.bomp import BOMPRecovery, BOMPResult

__all__ = [
    "GaussianSketch",
    "OMPResult",
    "orthogonal_matching_pursuit",
    "BOMPRecovery",
    "BOMPResult",
]
