"""Orthogonal Matching Pursuit (OMP).

The greedy sparse solver used by BOMP's recovery phase: given measurements
``y ≈ Aw`` with ``w`` sparse, repeatedly pick the column of ``A`` most
correlated with the residual, add it to the support, and re-fit ``w`` on the
support by least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class OMPResult:
    """Result of an OMP run.

    Attributes
    ----------
    coefficients:
        The recovered coefficient vector (dense, zero off the support).
    support:
        Indices selected, in selection order.
    residual_norm:
        ‖y - A·coefficients‖₂ at termination.
    iterations:
        Number of greedy iterations performed.
    """

    coefficients: np.ndarray
    support: List[int]
    residual_norm: float
    iterations: int


def orthogonal_matching_pursuit(
    dictionary: np.ndarray,
    measurements: np.ndarray,
    sparsity: int,
    tolerance: float = 1e-10,
) -> OMPResult:
    """Recover a ``sparsity``-sparse coefficient vector from ``measurements``.

    Parameters
    ----------
    dictionary:
        The ``(t, m)`` measurement/dictionary matrix ``A``.
    measurements:
        The length-``t`` measurement vector ``y``.
    sparsity:
        Maximum number of atoms to select.
    tolerance:
        Stop early once the residual norm falls below this value.
    """
    A = np.asarray(dictionary, dtype=np.float64)
    y = np.asarray(measurements, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"dictionary must be 2-D, got shape {A.shape}")
    if y.ndim != 1 or y.size != A.shape[0]:
        raise ValueError(
            f"measurements must be a vector of length {A.shape[0]}, "
            f"got shape {y.shape}"
        )
    sparsity = require_positive_int(sparsity, "sparsity")
    sparsity = min(sparsity, A.shape[1])

    residual = y.copy()
    support: List[int] = []
    coefficients = np.zeros(A.shape[1], dtype=np.float64)
    iterations = 0

    # pre-normalise column norms for the correlation step (guard zeros)
    column_norms = np.linalg.norm(A, axis=0)
    safe_norms = np.where(column_norms > 0, column_norms, 1.0)

    for _ in range(sparsity):
        if float(np.linalg.norm(residual)) <= tolerance:
            break
        correlations = np.abs(A.T @ residual) / safe_norms
        correlations[support] = -np.inf  # never reselect an atom
        chosen = int(np.argmax(correlations))
        support.append(chosen)
        iterations += 1

        submatrix = A[:, support]
        solution, *_ = np.linalg.lstsq(submatrix, y, rcond=None)
        residual = y - submatrix @ solution

    if support:
        coefficients[support] = solution
    return OMPResult(
        coefficients=coefficients,
        support=support,
        residual_norm=float(np.linalg.norm(residual)),
        iterations=iterations,
    )
