"""Dense Gaussian linear sketches (the sketching side of BOMP).

``y = Φx`` with ``Φ ∈ R^{t×n}`` and ``Φ_ij ~ N(0, 1/t)`` i.i.d.  Unlike the
hashed sketches the matrix is dense, so sketching costs O(t·n) and the memory
to *store the matrix* is O(t·n) — BOMP therefore regenerates Φ from a seed,
which is what this class does as well.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.serialization import (
    StateProtocolMixin,
    check_reconstructible,
    check_state_version,
    register_serializable,
)
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import (
    ensure_1d_float_array,
    require_index,
    require_positive_int,
)


class GaussianSketch(StateProtocolMixin):
    """A dense Gaussian linear sketch ``y = Φx`` (the BOMP measurement step).

    Parameters
    ----------
    dimension:
        Dimension ``n`` of the vectors being sketched.
    measurements:
        Number of rows ``t`` of Φ.
    seed:
        Randomness for Φ; two sketches with the same seed share the matrix
        and can be merged.
    """

    name = "gaussian_sketch"

    def __init__(
        self,
        dimension: int,
        measurements: int,
        seed: RandomSource = None,
    ) -> None:
        self.dimension = require_positive_int(dimension, "dimension")
        self.measurements = require_positive_int(measurements, "measurements")
        self.seed = seed
        rng = as_rng(seed)
        #: the dense sketching matrix Φ with N(0, 1/t) entries
        self.matrix = rng.normal(
            0.0, 1.0 / np.sqrt(self.measurements),
            size=(self.measurements, self.dimension),
        )
        #: the current measurement vector y = Φx
        self.measurements_vector = np.zeros(self.measurements, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # ingestion (linear, so both paths and merging are supported)
    # ------------------------------------------------------------------ #
    def fit(self, x) -> "GaussianSketch":
        """Sketch a whole vector: ``y += Φx``."""
        arr = ensure_1d_float_array(x, "x")
        if arr.size != self.dimension:
            raise ValueError(
                f"vector has dimension {arr.size}, sketch expects {self.dimension}"
            )
        self.measurements_vector += self.matrix @ arr
        return self

    def update(self, index: int, delta: float = 1.0) -> None:
        """Apply the streaming update ``x[index] += delta``: ``y += delta·Φe_i``."""
        index = require_index(index, self.dimension)
        self.measurements_vector += float(delta) * self.matrix[:, index]

    def merge(self, other: "GaussianSketch") -> "GaussianSketch":
        """Add a compatible sketch's measurements (linearity)."""
        if (
            other.dimension != self.dimension
            or other.measurements != self.measurements
            or self.seed is None
            or other.seed != self.seed
        ):
            raise ValueError(
                "Gaussian sketches must share dimension, measurement count and "
                "seed to be merged"
            )
        self.measurements_vector += other.measurements_vector
        return self

    def size_in_words(self) -> int:
        """Words shipped per sketch: the measurement vector (Φ is regenerated)."""
        return self.measurements

    # ------------------------------------------------------------------ #
    # state protocol (mirrors repro.sketches.base.Sketch)
    # ------------------------------------------------------------------ #
    #: see :attr:`repro.sketches.base.Sketch.state_version`
    state_version = 1

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the sketch state; Φ is regenerated from the seed."""
        seed = int(self.seed) if isinstance(self.seed, np.integer) else self.seed
        return {
            "kind": self.name,
            "state_version": self.state_version,
            "config": {
                "dimension": self.dimension,
                "measurements": self.measurements,
                "seed": seed,
            },
            "scalars": {},
            "meta": {},
            "arrays": {"measurements": self.measurements_vector.copy()},
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "GaussianSketch":
        """Reconstruct from a snapshot (Φ re-drawn from the validated seed)."""
        if state["kind"] != cls.name:
            raise TypeError(
                f"state of kind {state['kind']!r} is not a {cls.__name__}"
            )
        check_state_version(state, cls)
        check_reconstructible(state)
        config = state["config"]
        sketch = cls(config["dimension"], config["measurements"],
                     seed=config.get("seed"))
        restored = np.array(state["arrays"]["measurements"], dtype=np.float64)
        if restored.shape != sketch.measurements_vector.shape:
            raise ValueError(
                f"restored measurement vector has shape {restored.shape}, "
                f"expected {sketch.measurements_vector.shape}"
            )
        sketch.measurements_vector = restored
        return sketch

    # to_bytes / from_bytes / size_in_bytes / copy come from
    # StateProtocolMixin, layered on state_dict() / from_state().


register_serializable(GaussianSketch)
