"""BOMP: bias-aware recovery via OMP over an augmented Gaussian dictionary.

As described in the paper's related work (Yan et al., SIGMOD 2015): sketch
``x`` with a Gaussian matrix ``Φ``; at recovery time prepend the normalised
all-ones column ``(1/√n)·Σ_i φ_i`` to ``Φ`` and run OMP for ``k + 1``
iterations on ``(y, Φ')``.  If ``x`` is (approximately) ``β·1`` plus ``k``
outliers, the all-ones atom captures the bias and the remaining atoms capture
the outliers.

Limitations the paper points out — and which the comparison benchmark
demonstrates — are preserved faithfully:

* the recovery decodes the *whole* vector; there is no per-coordinate point
  query without running OMP;
* OMP over an ``t × (n+1)`` dense dictionary is orders of magnitude slower
  than the hashed recovery of ℓ1/ℓ2-S/R;
* no guarantee is claimed beyond the biased-k-sparse regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressive.gaussian import GaussianSketch
from repro.compressive.omp import orthogonal_matching_pursuit
from repro.utils.rng import RandomSource
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class BOMPResult:
    """Outcome of a BOMP recovery.

    Attributes
    ----------
    recovered:
        The recovered approximation of ``x`` (bias plus sparse outliers).
    bias:
        The recovered bias β (coefficient of the all-ones atom over √n).
    outlier_indices:
        Indices recovered as outliers (atoms other than the all-ones one).
    """

    recovered: np.ndarray
    bias: float
    outlier_indices: np.ndarray


class BOMPRecovery:
    """The BOMP sketch-and-recover pipeline for biased k-sparse vectors.

    Parameters
    ----------
    dimension:
        Vector dimension ``n``.
    measurements:
        Rows ``t`` of the Gaussian sketch (BOMP needs ``t = Ω(k log n)``).
    sparsity:
        The outlier budget ``k``; OMP runs for ``k + 1`` iterations.
    seed:
        Randomness for the Gaussian matrix.
    """

    def __init__(
        self,
        dimension: int,
        measurements: int,
        sparsity: int,
        seed: RandomSource = None,
    ) -> None:
        self.dimension = require_positive_int(dimension, "dimension")
        self.sparsity = require_positive_int(sparsity, "sparsity")
        self.sketch = GaussianSketch(dimension, measurements, seed=seed)

    def fit(self, x) -> "BOMPRecovery":
        """Sketch the vector (the only data access BOMP makes)."""
        self.sketch.fit(x)
        return self

    def update(self, index: int, delta: float = 1.0) -> None:
        """Streaming update of the underlying Gaussian sketch."""
        self.sketch.update(index, delta)

    def recover(self) -> BOMPResult:
        """Run OMP on the augmented dictionary and decode bias + outliers."""
        phi = self.sketch.matrix
        n = self.dimension
        ones_atom = phi.sum(axis=1, keepdims=True) / np.sqrt(n)
        dictionary = np.hstack([ones_atom, phi])
        result = orthogonal_matching_pursuit(
            dictionary,
            self.sketch.measurements_vector,
            sparsity=self.sparsity + 1,
        )
        bias = float(result.coefficients[0]) / np.sqrt(n)
        outliers = np.array(
            [atom - 1 for atom in result.support if atom != 0], dtype=np.int64
        )
        recovered = np.full(n, bias, dtype=np.float64)
        recovered[outliers] += result.coefficients[outliers + 1]
        return BOMPResult(recovered=recovered, bias=bias,
                          outlier_indices=outliers)

    def recovered_vector(self) -> np.ndarray:
        """Convenience: just the recovered approximation of ``x``."""
        return self.recover().recovered
