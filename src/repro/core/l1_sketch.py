"""ℓ1-S/R: the bias-aware sketch with ℓ∞/ℓ1 guarantee (Algorithms 1-2).

Sketching (Algorithm 1)
    The sketch of ``x`` is ``d`` Count-Median rows ``y_i = Π(h_i)x`` plus the
    sampled coordinates ``S = Υx`` of a sampling matrix with Θ(log n) rows.

Recovery (Algorithm 2)
    1. β̂ ← median of the sampled coordinates.
    2. For every row, subtract β̂·π_i from the buckets, where π_i is the
       per-bucket count of coordinates (the column sums of Π(h_i)); this is the
       sketch of the de-biased vector ``x - β̂·1`` by linearity.
    3. Run Count-Median recovery on the de-biased buckets to get ẑ.
    4. Return x̂ = ẑ + β̂.

Guarantee (Theorem 3): with probability 1 - O(1/n),

    ‖x̂ - x‖∞ ≤ C/k · min_β Err_1^k(x - β·1).

The class is a :class:`~repro.sketches.base.LinearSketch`: both the CM rows
and the samples are linear in ``x``, so sketches of partial vectors merge.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bias import SamplingMedianEstimator
from repro.serialization import register_serializable
from repro.sketches._tables import HashedCounterTable
from repro.sketches.base import LinearSketch
from repro.utils.rng import RandomSource, derive_seed


class L1BiasAwareSketch(LinearSketch):
    """The ℓ1 bias-aware sketch (``ℓ1-S/R`` in the paper's figures).

    Parameters
    ----------
    dimension:
        Dimension ``n`` of the frequency vector.
    width:
        Buckets per Count-Median row, ``s = c_s·k`` with ``c_s ≥ 4``.
    depth:
        Number of Count-Median rows ``d`` (the paper uses 9).
    bias_samples:
        Number of sampled coordinates used for the bias estimate.  Defaults to
        ``width``, matching the paper's experimental setup (Section 5.1: "we
        use s extra words for both ℓ1-S/R and ℓ2-S/R"); pass
        ``int(20·log n)`` to follow the theoretical construction instead.
    seed:
        Randomness for hash functions and the sampling matrix.
    """

    name = "l1_sr"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        bias_samples: Optional[int] = None,
        seed: RandomSource = None,
    ) -> None:
        if dimension is None:
            raise ValueError(
                "the ℓ1 bias-aware sketch requires a bounded dimension: its "
                "recovery subtracts β̂·π, the per-bucket count of coordinates "
                "over the whole universe"
            )
        super().__init__(dimension, width, depth, seed=seed)
        self._table = HashedCounterTable(
            dimension, width, depth, signed=False, seed=seed
        )
        if bias_samples is None:
            bias_samples = width
        self._bias_estimator = SamplingMedianEstimator(
            dimension, bias_samples, seed=derive_seed(seed, 404)
        )

    @property
    def _pi(self) -> np.ndarray:
        return self._table.cached_column_sums()

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        delta = float(delta)
        self._table.add_update(index, delta)
        self._bias_estimator.update(index, delta)
        self._items_processed += 1

    def update_batch(self, indices, deltas=None) -> "L1BiasAwareSketch":
        """Vectorised batch ingestion: scatter-add plus the sampled coordinates."""
        idx, d = self._check_batch(indices, deltas)
        self._table.add_batch(idx, d)
        self._bias_estimator.update_batch(idx, d)
        self._items_processed += idx.size
        return self

    def fit(self, x) -> "L1BiasAwareSketch":
        arr = self._check_vector(x)
        self._table.add_vector(arr)
        self._bias_estimator.ingest_vector(arr)
        self._items_processed += int(np.count_nonzero(arr))
        return self

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def estimate_bias(self) -> float:
        """β̂: the median of the maintained sampled coordinates (Alg. 2, line 1)."""
        return self._bias_estimator.current_estimate()

    def query(self, index: int) -> float:
        index = self._check_index(index)
        beta = self.estimate_bias()
        buckets = self._table.bucket_column(index)
        rows = np.arange(self.depth)
        debiased = (
            self._table.table[rows, buckets] - beta * self._pi[rows, buckets]
        )
        return float(np.median(debiased)) + beta

    def query_batch(self, indices) -> np.ndarray:
        idx, _ = self._check_batch(indices, None)
        beta = self.estimate_bias()
        cols = self._table.bucket_columns(idx)
        debiased = (
            np.take_along_axis(self._table.table, cols, axis=1)
            - beta * np.take_along_axis(self._pi, cols, axis=1)
        )
        return np.median(debiased, axis=0) + beta

    # ------------------------------------------------------------------ #
    # linearity
    # ------------------------------------------------------------------ #
    def merge(self, other: "L1BiasAwareSketch") -> "L1BiasAwareSketch":
        self._check_compatible(other)
        self._table.merge_from(other._table)
        self._bias_estimator.merge(other._bias_estimator)
        self._items_processed += other._items_processed
        return self

    def scale(self, factor: float) -> "L1BiasAwareSketch":
        factor = float(factor)
        self._table.scale_by(factor)
        self._bias_estimator.scale(factor)
        return self

    def _check_compatible(self, other: "L1BiasAwareSketch") -> None:
        super()._check_compatible(other)
        if other._bias_estimator.samples != self._bias_estimator.samples:
            raise ValueError(
                "sketches must use the same number of bias samples to be merged"
            )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def size_in_words(self) -> int:
        return self._table.counter_count + self._bias_estimator.size_in_words()

    def _config_dict(self):
        config = super()._config_dict()
        config["bias_samples"] = self._bias_estimator.samples
        return config

    @classmethod
    def _from_config(cls, config):
        return cls(config["dimension"], config["width"], config["depth"],
                   bias_samples=config.get("bias_samples"),
                   seed=config.get("seed"))

    def _state_arrays(self):
        return {
            "table": self._table.table,
            "samples": self._bias_estimator.sample_values,
        }

    def bind_state_buffers(self, buffers) -> None:
        self._table.bind_buffer(buffers["table"])
        self._bias_estimator.bind_sample_buffer(buffers["samples"])

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        self._table.load_table(arrays["table"])
        self._bias_estimator.load_sample_values(arrays["samples"])

    @property
    def table(self) -> np.ndarray:
        """The raw ``(depth, width)`` Count-Median counter table (for inspection)."""
        return self._table.table

    @property
    def sample_values(self) -> np.ndarray:
        """The maintained sampled coordinates S = Υx (for inspection)."""
        return self._bias_estimator.sample_values


register_serializable(L1BiasAwareSketch)
