"""ℓ2-S/R: the bias-aware sketch with ℓ∞/ℓ2 guarantee (Algorithms 3-4).

Sketching (Algorithm 3)
    The sketch of ``x`` is one Count-Median row ``w = Π(g)x`` (used only for
    bias estimation) plus ``d`` Count-Sketch rows ``y_i = Ψ(h_i, r_i)x``.

Recovery (Algorithm 4)
    1. Sort the buckets of ``w`` by their per-bucket average ``w_i/π_i`` and
       set β̂ to the ratio of sums over the middle ``2k`` buckets
       (π = column sums of Π(g)).
    2. Subtract β̂·ψ_i from each Count-Sketch row, where ψ_i is the per-bucket
       sum of signs (column sums of Ψ(h_i, r_i)); by linearity this yields the
       Count-Sketch of the de-biased vector ``x - β̂·1``.
    3. Run Count-Sketch recovery on the de-biased rows to get ẑ.
    4. Return x̂ = ẑ + β̂.

Guarantee (Theorem 4): with probability 1 - O(1/n),

    ‖x̂ - x‖∞ ≤ C/√k · min_β Err_2^k(x - β·1).

The sketch is linear and therefore mergeable; its streaming variant with O(1)
bias queries lives in :mod:`repro.core.streaming_l2`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bias import MiddleBucketsMeanEstimator
from repro.serialization import register_serializable
from repro.sketches._tables import HashedCounterTable
from repro.sketches.base import LinearSketch
from repro.utils.rng import RandomSource, derive_seed


class L2BiasAwareSketch(LinearSketch):
    """The ℓ2 bias-aware sketch (``ℓ2-S/R`` in the paper's figures).

    Parameters
    ----------
    dimension:
        Dimension ``n`` of the frequency vector.
    width:
        Buckets per row, ``s = c_s·k`` with ``c_s ≥ 4``.
    depth:
        Number of Count-Sketch rows ``d`` (the paper uses 9); the extra bias
        row ``w`` is on top of these.
    head_size:
        The parameter ``k`` controlling the middle-bucket window (``2k``
        buckets are averaged).  Defaults to ``width // 4``, i.e. ``c_s = 4``,
        which is the setting of Algorithm 5 in the paper.
    seed:
        Randomness for all hash and sign functions.
    """

    name = "l2_sr"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        head_size: Optional[int] = None,
        seed: RandomSource = None,
    ) -> None:
        if dimension is None:
            raise ValueError(
                "the ℓ2 bias-aware sketch requires a bounded dimension: its "
                "recovery subtracts β̂·ψ, the per-bucket sum of signs over "
                "the whole universe"
            )
        super().__init__(dimension, width, depth, seed=seed)
        if head_size is None:
            head_size = max(1, width // 4)
        if head_size < 1 or 2 * head_size > width:
            raise ValueError(
                f"head_size must satisfy 1 <= head_size <= width/2, got "
                f"{head_size} with width {width}"
            )
        self.head_size = int(head_size)

        # the d Count-Sketch data rows
        self._cs_table = HashedCounterTable(
            dimension, width, depth, signed=True, seed=seed
        )
        # the single Count-Median bias row w = Π(g)x
        self._bias_row = HashedCounterTable(
            dimension, width, 1, signed=False, seed=derive_seed(seed, 505)
        )
        self._bias_estimator = MiddleBucketsMeanEstimator(self.head_size)

    @property
    def _psi(self) -> np.ndarray:
        return self._cs_table.cached_column_sums()

    @property
    def _pi_g(self) -> np.ndarray:
        return self._bias_row.cached_column_sums()[0]

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        delta = float(delta)
        self._cs_table.add_update(index, delta)
        self._bias_row.add_update(index, delta)
        self._items_processed += 1

    def update_batch(self, indices, deltas=None) -> "L2BiasAwareSketch":
        """Vectorised batch ingestion: one scatter-add per table per chunk."""
        idx, d = self._check_batch(indices, deltas)
        self._cs_table.add_batch(idx, d)
        self._bias_row.add_batch(idx, d)
        self._items_processed += idx.size
        return self

    def fit(self, x) -> "L2BiasAwareSketch":
        arr = self._check_vector(x)
        self._cs_table.add_vector(arr)
        self._bias_row.add_vector(arr)
        self._items_processed += int(np.count_nonzero(arr))
        return self

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def estimate_bias(self) -> float:
        """β̂: the middle-2k-bucket average of the bias row (Alg. 4, line 2)."""
        return self._bias_estimator.estimate_from_buckets(
            self._bias_row.table[0], self._pi_g
        )

    def query(self, index: int) -> float:
        index = self._check_index(index)
        beta = self.estimate_bias()
        return self._query_with_bias(index, beta)

    def query_batch(self, indices) -> np.ndarray:
        idx, _ = self._check_batch(indices, None)
        beta = self.estimate_bias()
        cols = self._cs_table.bucket_columns(idx)
        debiased = (
            np.take_along_axis(self._cs_table.table, cols, axis=1)
            - beta * np.take_along_axis(self._psi, cols, axis=1)
        )
        signed = debiased * self._cs_table.sign_columns(idx)
        return np.median(signed, axis=0) + beta

    def _query_with_bias(self, index: int, beta: float) -> float:
        buckets = self._cs_table.bucket_column(index)
        rows = np.arange(self.depth)
        debiased = (
            self._cs_table.table[rows, buckets] - beta * self._psi[rows, buckets]
        )
        signed = debiased * self._cs_table.sign_column(index)
        return float(np.median(signed)) + beta

    # ------------------------------------------------------------------ #
    # linearity
    # ------------------------------------------------------------------ #
    def merge(self, other: "L2BiasAwareSketch") -> "L2BiasAwareSketch":
        self._check_compatible(other)
        self._cs_table.merge_from(other._cs_table)
        self._bias_row.merge_from(other._bias_row)
        self._items_processed += other._items_processed
        return self

    def scale(self, factor: float) -> "L2BiasAwareSketch":
        factor = float(factor)
        self._cs_table.scale_by(factor)
        self._bias_row.scale_by(factor)
        return self

    def _check_compatible(self, other: "L2BiasAwareSketch") -> None:
        super()._check_compatible(other)
        if other.head_size != self.head_size:
            raise ValueError(
                "sketches must use the same head_size (k) to be merged"
            )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def size_in_words(self) -> int:
        return self._cs_table.counter_count + self._bias_row.counter_count

    def _config_dict(self):
        config = super()._config_dict()
        config["head_size"] = self.head_size
        return config

    @classmethod
    def _from_config(cls, config):
        return cls(config["dimension"], config["width"], config["depth"],
                   head_size=config.get("head_size"), seed=config.get("seed"))

    def _state_arrays(self):
        return {
            "table": self._cs_table.table,
            "bias_row": self._bias_row.table,
        }

    def bind_state_buffers(self, buffers) -> None:
        self._cs_table.bind_buffer(buffers["table"])
        self._bias_row.bind_buffer(buffers["bias_row"])

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        self._cs_table.load_table(arrays["table"])
        self._bias_row.load_table(arrays["bias_row"])

    @property
    def table(self) -> np.ndarray:
        """The raw ``(depth, width)`` Count-Sketch counter table (for inspection)."""
        return self._cs_table.table

    @property
    def bias_buckets(self) -> np.ndarray:
        """The bias row ``w = Π(g)x`` (for inspection and the streaming variant)."""
        return self._bias_row.table[0]

    @property
    def bias_bucket_counts(self) -> np.ndarray:
        """π for the bias row: how many coordinates hash to each bucket of g."""
        return self._pi_g.copy()


register_serializable(L2BiasAwareSketch)
