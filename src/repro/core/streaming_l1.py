"""Streaming ℓ1-S/R with a sorted-sample structure for fast bias queries.

Section 4.4 of the paper observes that for the ℓ∞/ℓ1 guarantee a good bias
estimate can be maintained in the streaming model by simply keeping the
Θ(log n) sampled coordinates *sorted* (e.g. in a balanced BST), so that the
median — and hence the bias — is available at any time step without work at
query time.

:class:`StreamingL1BiasAwareSketch` extends :class:`L1BiasAwareSketch` with
exactly that: a sorted multiset of the current sample values, kept in sync on
every update, so :meth:`estimate_bias` is O(1) and a point query costs only
the O(d) bucket reads.  (The sorted multiset is implemented with ``bisect``
over a python list: insertion is O(t) in the worst case due to list shifting,
but ``t`` is Θ(log n) — a few hundred at most — so this is comfortably below
the O(d) cost of the rest of the update.)
"""

from __future__ import annotations

import bisect
from typing import Optional

import numpy as np

from repro.core.l1_sketch import L1BiasAwareSketch
from repro.serialization import register_serializable
from repro.utils.rng import RandomSource


class _SortedValues:
    """A sorted multiset of floats supporting replace and O(1) median."""

    def __init__(self, values: np.ndarray) -> None:
        self._values = sorted(float(v) for v in values)

    def replace(self, old: float, new: float) -> None:
        """Replace one occurrence of ``old`` with ``new``."""
        position = bisect.bisect_left(self._values, old)
        if position >= len(self._values) or self._values[position] != old:
            raise ValueError(f"value {old} not present in the sorted samples")
        self._values.pop(position)
        bisect.insort(self._values, new)

    def median(self) -> float:
        """The median of the stored values."""
        values = self._values
        count = len(values)
        if count == 0:
            return 0.0
        middle = count // 2
        if count % 2 == 1:
            return values[middle]
        return 0.5 * (values[middle - 1] + values[middle])

    def __len__(self) -> int:
        return len(self._values)


class StreamingL1BiasAwareSketch(L1BiasAwareSketch):
    """ℓ1-S/R with the bias estimate maintained incrementally (Section 4.4)."""

    name = "l1_sr_streaming"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        bias_samples: Optional[int] = None,
        seed: RandomSource = None,
    ) -> None:
        super().__init__(
            dimension, width, depth, bias_samples=bias_samples, seed=seed
        )
        self._sorted_samples = _SortedValues(self._bias_estimator.sample_values)

    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        delta = float(delta)
        # replace affected sample values in the sorted structure before the
        # estimator mutates them
        for slot in self._bias_estimator._slots_of.get(int(index), ()):
            old = float(self._bias_estimator.sample_values[slot])
            self._sorted_samples.replace(old, old + delta)
        super().update(index, delta)

    def update_batch(self, indices, deltas=None) -> "StreamingL1BiasAwareSketch":
        """Batched ingestion: vectorised updates, then one sorted-set rebuild.

        Rebuilding the sorted multiset once per chunk costs ``O(t log t)`` and
        yields exactly the structure the per-update replacements would have
        maintained, so bias estimates agree with the scalar path.
        """
        super().update_batch(indices, deltas)
        self._sorted_samples = _SortedValues(self._bias_estimator.sample_values)
        return self

    def fit(self, x) -> "StreamingL1BiasAwareSketch":
        super().fit(x)
        # bulk ingestion: rebuild the sorted structure from the refreshed samples
        self._sorted_samples = _SortedValues(self._bias_estimator.sample_values)
        return self

    def merge(self, other: "L1BiasAwareSketch") -> "StreamingL1BiasAwareSketch":
        super().merge(other)
        self._sorted_samples = _SortedValues(self._bias_estimator.sample_values)
        return self

    def scale(self, factor: float) -> "StreamingL1BiasAwareSketch":
        super().scale(factor)
        self._sorted_samples = _SortedValues(self._bias_estimator.sample_values)
        return self

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        """Restore the base state, then rebuild the sorted-sample structure.

        The sorted multiset is canonical given the sample values, so a
        restored sketch answers bias queries bit-identically to the one that
        was serialized.
        """
        super()._load_state_payload(arrays, scalars, meta)
        self._sorted_samples = _SortedValues(self._bias_estimator.sample_values)

    def bind_state_buffers(self, buffers) -> None:
        super().bind_state_buffers(buffers)
        self._sorted_samples = _SortedValues(self._bias_estimator.sample_values)

    def _post_fold(self) -> None:
        # a raw-state fold is a bulk ingestion: rebuild the sorted mirror,
        # exactly as merge() does
        self._sorted_samples = _SortedValues(self._bias_estimator.sample_values)

    def estimate_bias(self) -> float:
        """β̂ from the maintained sorted samples — O(1) at query time."""
        return self._sorted_samples.median()


register_serializable(StreamingL1BiasAwareSketch)
