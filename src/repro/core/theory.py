"""Theoretical error bounds and parameter recommendations.

The paper states four guarantees (Theorems 1-4).  This module evaluates their
right-hand sides for a concrete vector and sketch configuration, so that

* tests can assert that the measured errors respect the bounds (up to the
  universal constants the theorems hide),
* the experiment log can report measured-vs-predicted error side by side, and
* users can size a sketch for a target error before building it
  (:func:`recommend_parameters`).

All bounds are returned *without* the hidden constants: the value reported
for, say, Theorem 3 is ``min_β Err_1^k(x - β·1) / k``; the theorem guarantees
the ℓ∞ recovery error is at most a universal constant times that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import err_pk, optimal_bias_error
from repro.utils.validation import ensure_1d_float_array, require_positive_int


@dataclass(frozen=True)
class GuaranteeReport:
    """The four per-coordinate error scales for one vector and head size ``k``.

    Attributes
    ----------
    count_median_bound:
        Theorem 1 scale: ``Err_1^k(x) / k`` (classical ℓ∞/ℓ1).
    count_sketch_bound:
        Theorem 2 scale: ``Err_2^k(x) / √k`` (classical ℓ∞/ℓ2).
    l1_bias_aware_bound:
        Theorem 3 scale: ``min_β Err_1^k(x-β) / k``.
    l2_bias_aware_bound:
        Theorem 4 scale: ``min_β Err_2^k(x-β) / √k``.
    """

    head_size: int
    count_median_bound: float
    count_sketch_bound: float
    l1_bias_aware_bound: float
    l2_bias_aware_bound: float

    @property
    def l1_improvement(self) -> float:
        """Predicted improvement of ℓ1-S/R over Count-Median (Theorem 3 vs 1)."""
        if self.l1_bias_aware_bound == 0.0:
            return float("inf") if self.count_median_bound > 0 else 1.0
        return self.count_median_bound / self.l1_bias_aware_bound

    @property
    def l2_improvement(self) -> float:
        """Predicted improvement of ℓ2-S/R over Count-Sketch (Theorem 4 vs 2)."""
        if self.l2_bias_aware_bound == 0.0:
            return float("inf") if self.count_sketch_bound > 0 else 1.0
        return self.count_sketch_bound / self.l2_bias_aware_bound


def count_median_bound(x, head_size: int) -> float:
    """Theorem 1 error scale for Count-Median: ``Err_1^k(x) / k``."""
    head_size = require_positive_int(head_size, "head_size")
    return err_pk(x, head_size, 1) / head_size


def count_sketch_bound(x, head_size: int) -> float:
    """Theorem 2 error scale for Count-Sketch: ``Err_2^k(x) / √k``."""
    head_size = require_positive_int(head_size, "head_size")
    return err_pk(x, head_size, 2) / math.sqrt(head_size)


def l1_bias_aware_bound(x, head_size: int) -> float:
    """Theorem 3 error scale for ℓ1-S/R: ``min_β Err_1^k(x-β) / k``."""
    head_size = require_positive_int(head_size, "head_size")
    return optimal_bias_error(x, head_size, 1) / head_size


def l2_bias_aware_bound(x, head_size: int) -> float:
    """Theorem 4 error scale for ℓ2-S/R: ``min_β Err_2^k(x-β) / √k``."""
    head_size = require_positive_int(head_size, "head_size")
    return optimal_bias_error(x, head_size, 2) / math.sqrt(head_size)


def guarantee_report(x, head_size: int) -> GuaranteeReport:
    """All four error scales at once."""
    arr = ensure_1d_float_array(x, "x")
    head_size = require_positive_int(head_size, "head_size")
    if head_size >= arr.size:
        raise ValueError(
            f"head_size must be < dimension ({arr.size}), got {head_size}"
        )
    return GuaranteeReport(
        head_size=head_size,
        count_median_bound=count_median_bound(arr, head_size),
        count_sketch_bound=count_sketch_bound(arr, head_size),
        l1_bias_aware_bound=l1_bias_aware_bound(arr, head_size),
        l2_bias_aware_bound=l2_bias_aware_bound(arr, head_size),
    )


@dataclass(frozen=True)
class SketchParameters:
    """A recommended sketch configuration.

    Attributes
    ----------
    width:
        Buckets per row ``s``.
    depth:
        Number of rows ``d``.
    head_size:
        The ``k`` the configuration targets.
    words:
        Total counter words the configuration uses (including the bias
        structure of the bias-aware sketches, which adds one more width-``s``
        row).
    """

    width: int
    depth: int
    head_size: int

    @property
    def words(self) -> int:
        return self.width * (self.depth + 1)


def recommend_parameters(
    dimension: int,
    head_size: int,
    width_factor: float = 4.0,
    failure_probability: float = None,
) -> SketchParameters:
    """Recommend ``(s, d)`` following the paper's construction.

    The theorems use ``s = c_s·k`` with ``c_s ≥ 4`` and ``d = Θ(log n)``;
    the experiments use ``d ∈ {9, 10}``.  ``width_factor`` is ``c_s``;
    ``failure_probability`` δ, when given, sets ``d = ceil(log2(n/δ))``
    capped below at 3, otherwise ``d = ceil(log2 n)`` is used.
    """
    dimension = require_positive_int(dimension, "dimension")
    head_size = require_positive_int(head_size, "head_size")
    if width_factor < 4.0:
        raise ValueError(
            f"width_factor (c_s) must be >= 4 as required by the analysis, "
            f"got {width_factor}"
        )
    width = max(4, int(math.ceil(width_factor * head_size)))
    if failure_probability is not None:
        if not (0.0 < failure_probability < 1.0):
            raise ValueError("failure_probability must lie in (0, 1)")
        depth = int(math.ceil(math.log2(dimension / failure_probability)))
    else:
        depth = int(math.ceil(math.log2(max(dimension, 2))))
    depth = max(3, depth)
    return SketchParameters(width=width, depth=depth, head_size=head_size)


def sketch_size_words(dimension: int, head_size: int,
                      width_factor: float = 4.0) -> int:
    """The ``O(k log n)`` sketch size of the paper, in counter words."""
    return recommend_parameters(dimension, head_size, width_factor).words


def predicted_compression(dimension: int, head_size: int,
                          width_factor: float = 4.0) -> float:
    """How many times smaller the sketch is than the raw vector."""
    words = sketch_size_words(dimension, head_size, width_factor)
    return dimension / words if words else float("inf")
