"""The Bias-Heap (Algorithm 5): streaming maintenance of the ℓ2 bias estimate.

The ℓ2 recovery (Algorithm 4, line 2) needs the average of the coordinates
hashed into the middle ``2k`` of the ``s`` buckets of ``w = Π(g)x``, ordered
by per-bucket average ``w_i/π_i``.  Re-sorting the buckets on every point
query would cost O(s log s); the Bias-Heap maintains the partition of buckets
into *bottom*, *middle* and *top* rank ranges under single-bucket updates in
O(log s) time, together with the running sums ``Σ_{i∈middle} w_i`` and
``Σ_{i∈middle} π_i``, so a bias query is O(1).

The paper's Algorithm 5 uses four overlapping heaps (A, B, C, D); this
implementation keeps the same asymptotics with an equivalent formulation —
three disjoint sets (bottom / middle / top) backed by indexed heaps exposing
the boundary elements, rebalanced by boundary swaps after each update.  The
rank boundaries are ``low = max(0, s//2 - k)`` and ``high = min(s, s//2 + k)``,
matching the static estimator in
:class:`repro.core.bias.MiddleBucketsMeanEstimator`.

Buckets are ranked under the total order ``(w_j/π_j, j)`` — the exact order a
stable sort of the per-bucket averages produces.  Because the order is total,
equal averages cannot be assigned to either side of a boundary arbitrarily:
the incrementally-maintained partition always matches the one a full re-sort
would build, so the streaming bias estimate is identical to the static one no
matter how the same bucket sums were reached.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core._indexed_heap import IndexedMinHeap
from repro.utils.validation import require_positive_int

_BOTTOM = 0
_MIDDLE = 1
_TOP = 2


class BiasHeap:
    """Streaming structure maintaining the middle-bucket average of a CM row.

    Parameters
    ----------
    bucket_counts:
        The vector π: ``π_j`` is the number of coordinates hashed into bucket
        ``j`` (the column sums of Π(g)); data-independent and fixed.
    head_size:
        The parameter ``k``; the middle window spans ``2k`` buckets.  Defaults
        to ``s // 4`` exactly as Algorithm 5, line 2 ("set k ← s/4").
    initial_w:
        Optional initial bucket sums ``w`` (e.g. when attaching a Bias-Heap to
        a sketch that already ingested data); defaults to all zeros.
    initial_locations:
        Optional per-bucket rank-set assignment (0 = bottom, 1 = middle,
        2 = top) to restore instead of re-deriving the partition by sorting.
        Used by the state protocol so a deserialized sketch answers bias
        queries exactly as the serialized one did — including payloads
        recorded by older versions whose tie handling was update-order
        dependent.  Set sizes must match the rank boundaries.
    """

    def __init__(
        self,
        bucket_counts: np.ndarray,
        head_size: Optional[int] = None,
        initial_w: Optional[np.ndarray] = None,
        initial_locations: Optional[np.ndarray] = None,
    ) -> None:
        pi = np.asarray(bucket_counts, dtype=np.float64)
        if pi.ndim != 1 or pi.size == 0:
            raise ValueError("bucket_counts must be a non-empty 1-D array")
        if np.any(pi < 0):
            raise ValueError("bucket_counts must be non-negative")
        self.buckets = pi.size
        self.pi = pi.copy()
        if head_size is None:
            head_size = max(1, self.buckets // 4)
        self.head_size = require_positive_int(head_size, "head_size")

        s = self.buckets
        self._low = max(0, s // 2 - self.head_size)
        self._high = min(s, s // 2 + self.head_size)

        #: per-bucket running sums w_j
        if initial_w is None:
            self.w = np.zeros(s, dtype=np.float64)
        else:
            initial_w = np.asarray(initial_w, dtype=np.float64)
            if initial_w.shape != pi.shape:
                raise ValueError(
                    "initial_w must have the same shape as bucket_counts"
                )
            self.w = initial_w.copy()

        # Heaps exposing the boundary elements of each rank range.  All four
        # are min-heaps over composite keys so the rank order is total:
        # the min-boundary heaps store ``(w/π, bucket)`` and the max-boundary
        # heaps store ``(-w/π, -bucket)`` (whose minimum is the rank-largest
        # element).  A total order leaves no tie for update order to break,
        # which is what keeps incremental maintenance identical to a rebuild.
        self._bottom_max = IndexedMinHeap()
        self._middle_min = IndexedMinHeap()
        self._middle_max = IndexedMinHeap()
        self._top_min = IndexedMinHeap()
        self._location = np.empty(s, dtype=np.int8)

        # running sums over the middle set
        self._middle_w_sum = 0.0
        self._middle_pi_sum = 0.0
        # global sums (used by the fallback when the middle set is all-empty)
        self._total_w_sum = float(np.sum(self.w))
        self._total_pi_sum = float(np.sum(self.pi))

        if initial_locations is None:
            self._initialise_partition()
        else:
            self._restore_partition(np.asarray(initial_locations))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _key(self, bucket: int) -> float:
        if self.pi[bucket] > 0:
            return float(self.w[bucket] / self.pi[bucket])
        return 0.0

    def _rank(self, bucket: int):
        """The bucket's position in the total rank order: ``(w/π, bucket)``."""
        return (self._key(bucket), bucket)

    def _max_rank(self, bucket: int):
        """Rank encoded for a max-boundary heap (min of this = rank-largest)."""
        return (-self._key(bucket), -bucket)

    def _initialise_partition(self) -> None:
        keys = np.array([self._key(j) for j in range(self.buckets)])
        # a stable argsort over the float keys IS the (key, bucket) total
        # order, so the initial partition is already canonical
        order = np.argsort(keys, kind="stable")
        for rank, bucket in enumerate(order):
            bucket = int(bucket)
            if rank < self._low:
                self._location[bucket] = _BOTTOM
                self._bottom_max.push(bucket, self._max_rank(bucket))
            elif rank < self._high:
                self._location[bucket] = _MIDDLE
                self._middle_min.push(bucket, self._rank(bucket))
                self._middle_max.push(bucket, self._max_rank(bucket))
                self._middle_w_sum += self.w[bucket]
                self._middle_pi_sum += self.pi[bucket]
            else:
                self._location[bucket] = _TOP
                self._top_min.push(bucket, self._rank(bucket))

    def _restore_partition(self, locations: np.ndarray) -> None:
        """Rebuild the heaps from a recorded bottom/middle/top assignment."""
        if locations.shape != (self.buckets,):
            raise ValueError(
                f"initial_locations must have shape ({self.buckets},), got "
                f"{locations.shape}"
            )
        counts = [int(np.sum(locations == loc)) for loc in (_BOTTOM, _MIDDLE, _TOP)]
        expected = [self._low, self._high - self._low, self.buckets - self._high]
        if counts != expected:
            raise ValueError(
                f"initial_locations set sizes {counts} do not match the rank "
                f"boundaries {expected}"
            )
        for bucket in range(self.buckets):
            location = int(locations[bucket])
            self._location[bucket] = location
            if location == _BOTTOM:
                self._bottom_max.push(bucket, self._max_rank(bucket))
            elif location == _MIDDLE:
                self._middle_min.push(bucket, self._rank(bucket))
                self._middle_max.push(bucket, self._max_rank(bucket))
                self._middle_w_sum += self.w[bucket]
                self._middle_pi_sum += self.pi[bucket]
            else:
                self._top_min.push(bucket, self._rank(bucket))

    @property
    def locations(self) -> np.ndarray:
        """Per-bucket rank-set assignment (0 = bottom, 1 = middle, 2 = top)."""
        return self._location.copy()

    # ------------------------------------------------------------------ #
    # streaming updates
    # ------------------------------------------------------------------ #
    def update(self, bucket: int, delta: float) -> None:
        """Apply ``w[bucket] += delta`` and restore the rank partition."""
        if not (0 <= bucket < self.buckets):
            raise IndexError(
                f"bucket must be in [0, {self.buckets}), got {bucket}"
            )
        if self.pi[bucket] <= 0:
            raise ValueError(
                f"bucket {bucket} has no coordinates hashed to it and cannot "
                "receive updates"
            )
        delta = float(delta)
        self.w[bucket] += delta
        self._total_w_sum += delta
        if self._location[bucket] == _MIDDLE:
            self._middle_w_sum += delta

        self._reposition(bucket)
        self._rebalance()

    def _reposition(self, bucket: int) -> None:
        """Refresh the heap keys of ``bucket`` within its current set."""
        location = self._location[bucket]
        if location == _BOTTOM:
            self._bottom_max.remove(bucket)
            self._bottom_max.push(bucket, self._max_rank(bucket))
        elif location == _MIDDLE:
            self._middle_min.remove(bucket)
            self._middle_max.remove(bucket)
            self._middle_min.push(bucket, self._rank(bucket))
            self._middle_max.push(bucket, self._max_rank(bucket))
        else:
            self._top_min.remove(bucket)
            self._top_min.push(bucket, self._rank(bucket))

    def _move(self, bucket: int, destination: int) -> None:
        """Move ``bucket`` from its current set into ``destination``."""
        source = self._location[bucket]
        if source == _BOTTOM:
            self._bottom_max.remove(bucket)
        elif source == _MIDDLE:
            self._middle_min.remove(bucket)
            self._middle_max.remove(bucket)
            self._middle_w_sum -= self.w[bucket]
            self._middle_pi_sum -= self.pi[bucket]
        else:
            self._top_min.remove(bucket)

        if destination == _BOTTOM:
            self._bottom_max.push(bucket, self._max_rank(bucket))
        elif destination == _MIDDLE:
            self._middle_min.push(bucket, self._rank(bucket))
            self._middle_max.push(bucket, self._max_rank(bucket))
            self._middle_w_sum += self.w[bucket]
            self._middle_pi_sum += self.pi[bucket]
        else:
            self._top_min.push(bucket, self._rank(bucket))
        self._location[bucket] = destination

    def _rebalance(self) -> None:
        """Swap boundary elements until bottom ≤ middle ≤ top in rank order."""
        # A single key change displaces at most one element, so two boundary
        # swaps suffice after an update.  Restoring a partition recorded by an
        # older version may leave several equal-key buckets on the "wrong"
        # side of a boundary under the total order, and the first update then
        # canonicalises them all — hence a guard that scales with the bucket
        # count.  Each swap removes at least one cross-set rank inversion, so
        # the loop always terminates; the guard only protects against bugs.
        for _ in range(2 * self.buckets + 8):
            swapped = False
            if len(self._bottom_max) and len(self._middle_min):
                bottom_enc, bottom_bucket = self._bottom_max.peek()
                bottom_rank = (-bottom_enc[0], -bottom_enc[1])
                middle_rank, middle_bucket = self._middle_min.peek()
                if bottom_rank > middle_rank:
                    self._move(bottom_bucket, _MIDDLE)
                    self._move(middle_bucket, _BOTTOM)
                    swapped = True
            if len(self._middle_max) and len(self._top_min):
                middle_enc, middle_bucket = self._middle_max.peek()
                middle_rank = (-middle_enc[0], -middle_enc[1])
                top_rank, top_bucket = self._top_min.peek()
                if middle_rank > top_rank:
                    self._move(middle_bucket, _TOP)
                    self._move(top_bucket, _MIDDLE)
                    swapped = True
            if not swapped:
                return
        raise RuntimeError(
            "BiasHeap failed to rebalance; this indicates an internal bug"
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def bias(self) -> float:
        """The current bias estimate: middle-bucket sum of w over sum of π."""
        if self._middle_pi_sum > 0:
            return self._middle_w_sum / self._middle_pi_sum
        if self._total_pi_sum > 0:
            return self._total_w_sum / self._total_pi_sum
        return 0.0

    def middle_buckets(self) -> np.ndarray:
        """Indices of the buckets currently in the middle rank range (sorted)."""
        return np.array(sorted(self._middle_min.node_ids()), dtype=np.int64)

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any internal invariant is violated.

        Used by the tests and the property-based suite; O(s) so not intended
        for per-update use in production.
        """
        sizes = (len(self._bottom_max), len(self._middle_min), len(self._top_min))
        assert sizes[0] == self._low, f"bottom size {sizes[0]} != {self._low}"
        assert sizes[1] == self._high - self._low, (
            f"middle size {sizes[1]} != {self._high - self._low}"
        )
        assert sizes[2] == self.buckets - self._high, (
            f"top size {sizes[2]} != {self.buckets - self._high}"
        )
        assert len(self._middle_max) == len(self._middle_min)

        # boundary order by float key (restored legacy partitions may break
        # exact-rank ties non-canonically until the next update, so the check
        # tolerates ties rather than demanding the full composite order)
        if len(self._bottom_max) and len(self._middle_min):
            bottom_key = -self._bottom_max.peek()[0][0]
            assert bottom_key <= self._middle_min.peek()[0][0] + 1e-9
        if len(self._middle_max) and len(self._top_min):
            middle_key = -self._middle_max.peek()[0][0]
            assert middle_key <= self._top_min.peek()[0][0] + 1e-9

        middle = self._middle_min.node_ids()
        expected_w = float(np.sum(self.w[middle])) if middle else 0.0
        expected_pi = float(np.sum(self.pi[middle])) if middle else 0.0
        assert abs(expected_w - self._middle_w_sum) < 1e-6, "middle w sum drifted"
        assert abs(expected_pi - self._middle_pi_sum) < 1e-6, "middle pi sum drifted"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BiasHeap(buckets={self.buckets}, head_size={self.head_size}, "
            f"bias={self.bias():.6g})"
        )
