"""Tail-error functionals and the optimal bias.

This module implements the quantities the paper's guarantees are stated in:

* ``Err_p^k(x) = min_{k-sparse x'} ‖x - x'‖_p`` — the ℓp mass on the tail of
  ``x`` after removing the ``k`` largest-magnitude coordinates (head).
* ``min_β Err_p^k(x - β·1)`` and its minimiser β* (Equation 5 of the paper) —
  the de-biased tail error that bounds the bias-aware sketches.

The optimal bias is computed exactly.  The key structural fact (used in
Lemmas 1 and 4 of the paper) is that for any fixed β the ``n - k`` coordinates
*kept* by ``Err_p^k(x - β)`` are the ones closest to β, which form a
contiguous window of the sorted vector.  Minimising over β therefore reduces
to scanning the ``k + 1`` windows of length ``n - k`` of the sorted vector and
taking, per window, the ℓ1-optimal centre (the window median) or the
ℓ2-optimal centre (the window mean).  Prefix sums make the scan linear after
sorting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_1d_float_array

#: float64 machine epsilon, the unit of the cancellation floor in
#: :func:`optimal_bias`
_FLOAT_EPS = float(np.finfo(np.float64).eps)


def _validate_k(k: int, n: int) -> int:
    if isinstance(k, bool) or not isinstance(k, (int, np.integer)):
        raise TypeError(f"k must be an integer, got {type(k).__name__}")
    k = int(k)
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k >= n:
        raise ValueError(f"k must be < n = {n}, got {k} (a k-sparse vector "
                         "would already represent x exactly)")
    return k


def _validate_p(p) -> int:
    if p not in (1, 2):
        raise ValueError(f"p must be 1 or 2, got {p!r}")
    return int(p)


def err_pk(x, k: int, p: int = 2) -> float:
    """Compute ``Err_p^k(x)``: the ℓp norm of x with its k largest entries removed.

    Parameters
    ----------
    x:
        The frequency vector.
    k:
        Number of head coordinates excluded from the error (0 <= k < n).
    p:
        The norm, 1 or 2.
    """
    arr = ensure_1d_float_array(x, "x")
    k = _validate_k(k, arr.size)
    p = _validate_p(p)
    magnitudes = np.abs(arr)
    if k > 0:
        # zero out the k largest magnitudes
        tail = np.partition(magnitudes, arr.size - k)[: arr.size - k]
    else:
        tail = magnitudes
    if p == 1:
        return float(np.sum(tail))
    return float(np.sqrt(np.sum(tail * tail)))


def debias(x, beta: float) -> np.ndarray:
    """Return the de-biased vector ``x - β·1`` (the paper's ``x - β`` notation)."""
    arr = ensure_1d_float_array(x, "x")
    return arr - float(beta)


def debiased_err(x, k: int, beta: float, p: int = 2) -> float:
    """Compute ``Err_p^k(x - β·1)`` for a given bias value β."""
    return err_pk(debias(x, beta), k, p)


@dataclass(frozen=True)
class BiasSolution:
    """The exact optimal bias of a vector and the error it achieves.

    Attributes
    ----------
    beta:
        The minimiser ``β* = argmin_β Err_p^k(x - β·1)``.
    error:
        The minimum de-biased tail error ``Err_p^k(x - β*·1)``.
    head_indices:
        Indices of the k coordinates dropped by the optimal solution (the
        coordinates deviating most from β*), in increasing index order.
    """

    beta: float
    error: float
    head_indices: np.ndarray


def optimal_bias(x, k: int, p: int = 2) -> BiasSolution:
    """Exactly minimise ``Err_p^k(x - β·1)`` over β.

    Runs in O(n log n) time.  This is *not* a sketching algorithm — it needs
    the full vector — and serves as the ground truth against which the
    sketch-based bias estimators are tested (and as the right-hand side of the
    paper's error bounds in EXPERIMENTS.md).
    """
    arr = ensure_1d_float_array(x, "x")
    n = arr.size
    k = _validate_k(k, n)
    p = _validate_p(p)

    # Work on a centred copy: subtracting a constant shifts the optimal β by
    # the same constant and leaves the error unchanged, while keeping the
    # prefix sums at the scale of the deviations (avoids catastrophic
    # cancellation for vectors with a huge common offset).
    centre = float(np.median(arr))
    centred = arr - centre

    order = np.argsort(centred, kind="stable")
    sorted_x = centred[order]
    window = n - k

    prefix = np.concatenate(([0.0], np.cumsum(sorted_x)))
    if p == 2:
        prefix_sq = np.concatenate(([0.0], np.cumsum(sorted_x * sorted_x)))

    best_cost = np.inf
    best_beta = 0.0
    best_start = 0
    for start in range(k + 1):
        end = start + window
        if p == 1:
            # ℓ1-optimal centre of the window is its median
            mid_low = start + (window - 1) // 2
            mid_high = start + window // 2
            beta = 0.5 * (sorted_x[mid_low] + sorted_x[mid_high])
            # cost = sum over window of |x_i - beta| via prefix sums around the median
            left_count = mid_low - start + 1
            left_sum = prefix[mid_low + 1] - prefix[start]
            right_count = end - mid_low - 1
            right_sum = prefix[end] - prefix[mid_low + 1]
            cost = (beta * left_count - left_sum) + (right_sum - beta * right_count)
        else:
            # ℓ2-optimal centre of the window is its mean
            total = prefix[end] - prefix[start]
            total_sq = prefix_sq[end] - prefix_sq[start]
            beta = total / window
            cost_sq = max(total_sq - window * beta * beta, 0.0)
            # total_sq is a difference of prefix-of-squares entries whose
            # magnitude is set by everything at or below this window (a
            # huge head term dominates the cumsum), so when the true cost
            # is zero the subtraction leaves a rounding residual of a few
            # ulps of prefix_sq[end] — and sqrt amplifies it (1e-13 →
            # 5e-7).  A floor of 4 ulps clamps that noise to an exact zero
            # while costs just a few ulps larger — the smallest float64
            # can genuinely represent at this prefix scale — survive.
            cancellation_floor = 4.0 * _FLOAT_EPS * prefix_sq[end]
            if cost_sq <= cancellation_floor:
                cost_sq = 0.0
            cost = float(np.sqrt(cost_sq))
        if cost < best_cost - 1e-12 or (
            abs(cost - best_cost) <= 1e-12 and start < best_start
        ):
            best_cost = float(cost)
            best_beta = float(beta)
            best_start = start

    kept_positions = order[best_start:best_start + window]
    head_mask = np.ones(n, dtype=bool)
    head_mask[kept_positions] = False
    head_indices = np.flatnonzero(head_mask)

    return BiasSolution(
        beta=best_beta + centre,
        error=float(best_cost),
        head_indices=head_indices,
    )


def optimal_bias_error(x, k: int, p: int = 2) -> float:
    """Convenience wrapper returning only ``min_β Err_p^k(x - β·1)``."""
    return optimal_bias(x, k, p).error


def bias_gain(x, k: int, p: int = 2) -> float:
    """The factor by which de-biasing shrinks the tail error.

    Returns ``Err_p^k(x) / min_β Err_p^k(x - β·1)`` (``inf`` when the de-biased
    error is zero and the biased one is not, 1.0 when both are zero).  This is
    the quantity that predicts how much the bias-aware sketches improve over
    their classical counterparts on a given dataset.
    """
    biased = err_pk(x, k, p)
    debiased = optimal_bias_error(x, k, p)
    if debiased == 0.0:
        return 1.0 if biased == 0.0 else float("inf")
    return biased / debiased
