"""Streaming ℓ2-S/R (Algorithm 6): real-time point queries with a Bias-Heap.

Algorithm 6 of the paper augments the ℓ2 bias-aware sketch for the streaming
model: the Count-Sketch rows are updated as usual, the single CM bias row is
routed through the :class:`~repro.core.bias_heap.BiasHeap` of Algorithm 5, and
a point query reads the current bias β̂ from the heap in O(1), de-biases the
``d`` bucket values of the queried coordinate and returns the sign-corrected
median plus β̂ — no post-processing pass, no re-sorting.

:class:`StreamingL2BiasAwareSketch` keeps the exact interface of
:class:`~repro.core.l2_sketch.L2BiasAwareSketch`; only the bias-estimate
maintenance differs.  The heap ranks buckets under the total order
``(w/π, bucket)`` — the same order a stable sort produces — so the estimates
match the batch variant exactly, including on ties between equal per-bucket
averages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bias_heap import BiasHeap
from repro.core.l2_sketch import L2BiasAwareSketch
from repro.serialization import register_serializable
from repro.utils.rng import RandomSource


class StreamingL2BiasAwareSketch(L2BiasAwareSketch):
    """ℓ2-S/R with the bias maintained by a Bias-Heap (Algorithm 6)."""

    name = "l2_sr_streaming"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        head_size: Optional[int] = None,
        seed: RandomSource = None,
    ) -> None:
        super().__init__(
            dimension, width, depth, head_size=head_size, seed=seed
        )
        self._bias_heap = BiasHeap(self._pi_g, head_size=self.head_size)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        delta = float(delta)
        super().update(index, delta)
        bucket = int(self._bias_row.bucket_column(index)[0])
        self._bias_heap.update(bucket, delta)

    def update_batch(self, indices, deltas=None) -> "StreamingL2BiasAwareSketch":
        """Batched ingestion: vectorised updates, then one heap rebuild.

        The rebuilt Bias-Heap is identical to what per-update maintenance
        would have produced: both rank buckets under the same total order
        ``(w/π, bucket)``, so the rebuild introduces no tie-break drift.
        """
        super().update_batch(indices, deltas)
        self._rebuild_heap()
        return self

    def fit(self, x) -> "StreamingL2BiasAwareSketch":
        super().fit(x)
        self._rebuild_heap()
        return self

    def merge(self, other: "L2BiasAwareSketch") -> "StreamingL2BiasAwareSketch":
        super().merge(other)
        self._rebuild_heap()
        return self

    def scale(self, factor: float) -> "StreamingL2BiasAwareSketch":
        super().scale(factor)
        self._rebuild_heap()
        return self

    def _state_meta(self):
        # the heap's bottom/middle/top membership is recorded so that a
        # restored sketch breaks rank ties exactly as the serialized one did
        meta = super()._state_meta()
        meta["heap_locations"] = [int(v) for v in self._bias_heap.locations]
        return meta

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        if "heap_locations" in meta:
            self._bias_heap = BiasHeap(
                self._pi_g,
                head_size=self.head_size,
                initial_w=self._bias_row.table[0],
                initial_locations=np.asarray(meta["heap_locations"], dtype=np.int8),
            )
        else:
            self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        """Rebuild the Bias-Heap from the current bias-row state (bulk paths)."""
        self._bias_heap = BiasHeap(
            self._pi_g,
            head_size=self.head_size,
            initial_w=self._bias_row.table[0],
        )

    def bind_state_buffers(self, buffers) -> None:
        super().bind_state_buffers(buffers)
        # the heap snapshots w at construction; rebind it to the new storage
        self._rebuild_heap()

    def _post_fold(self) -> None:
        # a raw-state fold is a bulk ingestion: rebuild the heap, exactly as
        # merge() does
        self._rebuild_heap()

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def estimate_bias(self) -> float:
        """β̂ from the Bias-Heap — O(1) at query time (Algorithm 6, line 8)."""
        return self._bias_heap.bias()

    @property
    def bias_heap(self) -> BiasHeap:
        """The underlying Bias-Heap (for inspection and tests)."""
        return self._bias_heap


register_serializable(StreamingL2BiasAwareSketch)
