"""Bias estimators.

The whole point of the paper's algorithms is to estimate the bias β from a
small linear sketch so that it can be subtracted before recovery.  The two
estimators the paper proves guarantees for are:

* **sampling median** (Algorithm 1 / 2, Lemmas 2-3): the median of Θ(log n)
  uniformly sampled coordinates — a constant-factor approximation of the
  ℓ1-optimal bias with probability 1 - 1/n;
* **middle-bucket mean** (Algorithm 4 line 2, Lemmas 6-7): hash the vector
  into ``s = c_s·k`` buckets with a CM-matrix, sort the buckets by their
  per-bucket average ``w_i/π_i`` and average the coordinates hashed into the
  middle ``2k`` buckets — within O(σ(x*)) of the ℓ2-optimal bias.

Two more estimators are provided for the comparisons in Section 5.4 and for
the ablation benchmarks: the plain **mean** (no guarantee — Section 4.1 shows
it fails under extreme outliers) and the **exact optimal bias** (needs the
full vector; ground truth only).

Each estimator has a vectorised ``estimate_from_vector`` path (used when
sketching a full vector) and, where meaningful, incremental state so that the
streaming sketches can keep the estimate current per update.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.errors import optimal_bias
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import ensure_1d_float_array, require_positive_int


class BiasEstimator(abc.ABC):
    """Interface for bias estimators."""

    @abc.abstractmethod
    def estimate_from_vector(self, x: np.ndarray) -> float:
        """Estimate the bias of a full frequency vector."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SamplingMedianEstimator(BiasEstimator):
    """Median of uniformly sampled coordinates (the ℓ1-S/R bias estimator).

    Parameters
    ----------
    dimension:
        Dimension ``n`` of the vector being sampled.
    samples:
        Number of sampled coordinates ``t``.  The paper's analysis uses
        ``t = 20 log n`` (Lemma 3); its implementation uses ``t = s`` extra
        words to match the ℓ2 sketch's footprint (Section 5.1).
    seed:
        Randomness for choosing the sampled coordinates.
    """

    def __init__(
        self,
        dimension: int,
        samples: int,
        seed: RandomSource = None,
    ) -> None:
        self.dimension = require_positive_int(dimension, "dimension")
        self.samples = require_positive_int(samples, "samples")
        rng = as_rng(seed)
        #: the sampled coordinate index of each of the ``samples`` slots
        self.sampled_indices = rng.integers(0, dimension, size=self.samples)
        #: current value of each sampled coordinate (maintained under updates)
        self.sample_values = np.zeros(self.samples, dtype=np.float64)
        # map coordinate -> sample slots, for O(1) streaming updates
        self._slots_of = {}
        for slot, index in enumerate(self.sampled_indices):
            self._slots_of.setdefault(int(index), []).append(slot)

    @classmethod
    def theta_log_n(
        cls,
        dimension: int,
        constant: float = 20.0,
        seed: RandomSource = None,
    ) -> "SamplingMedianEstimator":
        """Build the ``t = constant·log n`` estimator of Lemma 3."""
        samples = max(1, int(np.ceil(constant * np.log(max(dimension, 2)))))
        return cls(dimension, samples, seed=seed)

    # -- vectorised path ------------------------------------------------ #
    def estimate_from_vector(self, x: np.ndarray) -> float:
        arr = ensure_1d_float_array(x, "x")
        if arr.size != self.dimension:
            raise ValueError(
                f"vector has dimension {arr.size}, estimator expects {self.dimension}"
            )
        return float(np.median(arr[self.sampled_indices]))

    # -- streaming path -------------------------------------------------- #
    def ingest_vector(self, x: np.ndarray) -> None:
        """Add a whole vector's contribution to the maintained sample values."""
        arr = ensure_1d_float_array(x, "x")
        if arr.size != self.dimension:
            raise ValueError(
                f"vector has dimension {arr.size}, estimator expects {self.dimension}"
            )
        self.sample_values += arr[self.sampled_indices]

    def update(self, index: int, delta: float) -> None:
        """Apply the streaming update ``x[index] += delta`` to the samples."""
        for slot in self._slots_of.get(int(index), ()):
            self.sample_values[slot] += delta

    def update_batch(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a batch of updates to the samples (order-preserving).

        Only the batch entries that hit a sampled coordinate are visited, so
        the cost is ``O(m log t)`` for the membership test plus work linear in
        the (typically tiny) number of hits.
        """
        if len(indices) == 0:
            return
        hits = np.isin(indices, self.sampled_indices)
        if not np.any(hits):
            return
        for index, delta in zip(indices[hits].tolist(), deltas[hits].tolist()):
            for slot in self._slots_of[int(index)]:
                self.sample_values[slot] += delta

    def merge(self, other: "SamplingMedianEstimator") -> None:
        """Merge another estimator built with the same seed (adds sample values)."""
        if not np.array_equal(self.sampled_indices, other.sampled_indices):
            raise ValueError(
                "cannot merge sampling estimators with different sampled indices"
            )
        self.sample_values += other.sample_values

    def scale(self, factor: float) -> None:
        """Scale the maintained sample values (linearity of Υx)."""
        self.sample_values *= factor

    def load_sample_values(self, values) -> None:
        """Replace the maintained sample values with a restored snapshot."""
        arr = np.array(values, dtype=np.float64)
        if arr.shape != (self.samples,):
            raise ValueError(
                f"restored sample values have shape {arr.shape}, expected "
                f"({self.samples},)"
            )
        self.sample_values = arr

    def bind_sample_buffer(self, buffer: np.ndarray) -> None:
        """Rebind the sample values to a caller-owned buffer (copy-in).

        Shared-memory counterpart of :meth:`load_sample_values`: the current
        values are copied into ``buffer`` and it becomes the live storage,
        so in-place updates write through (see
        :meth:`repro.sketches._tables.HashedCounterTable.bind_buffer`).
        """
        if not isinstance(buffer, np.ndarray):
            raise TypeError("bind_sample_buffer expects a numpy array view")
        if buffer.shape != (self.samples,):
            raise ValueError(
                f"buffer has shape {buffer.shape}, expected ({self.samples},)"
            )
        if buffer.dtype != np.float64 or not buffer.flags.c_contiguous:
            raise ValueError("buffer must be C-contiguous float64")
        buffer[...] = self.sample_values
        self.sample_values = buffer

    def current_estimate(self) -> float:
        """The bias estimate from the currently maintained sample values."""
        return float(np.median(self.sample_values))

    def size_in_words(self) -> int:
        """Extra sketch words consumed by the estimator."""
        return self.samples


class MiddleBucketsMeanEstimator(BiasEstimator):
    """Mean of the middle-2k CM buckets (the ℓ2-S/R bias estimator).

    This estimator operates on an already-computed CM row: the per-bucket sums
    ``w = Π(g)x`` and the per-bucket coordinate counts ``π``.  It is stateless;
    the ℓ2 sketch owns ``w`` and calls :meth:`estimate_from_buckets`.

    Parameters
    ----------
    head_size:
        The parameter ``k``; the middle window spans ``2k`` buckets
        (ranks ``s/2 - k`` to ``s/2 + k - 1`` of the buckets sorted by
        per-bucket average).
    """

    def __init__(self, head_size: int) -> None:
        self.head_size = require_positive_int(head_size, "head_size")

    def estimate_from_buckets(self, w: np.ndarray, pi: np.ndarray) -> float:
        """Estimate β from bucket sums ``w`` and bucket counts ``π``.

        Buckets are sorted by average ``w_i/π_i`` (empty buckets sort with key
        0, contributing nothing to either sum) and the sums of ``w`` and ``π``
        over the middle ``2k`` buckets are divided.
        """
        w = np.asarray(w, dtype=np.float64)
        pi = np.asarray(pi, dtype=np.float64)
        if w.shape != pi.shape or w.ndim != 1:
            raise ValueError("w and pi must be 1-D arrays of the same length")
        s = w.size
        keys = np.zeros(s, dtype=np.float64)
        non_empty = pi > 0
        keys[non_empty] = w[non_empty] / pi[non_empty]
        order = np.argsort(keys, kind="stable")

        k = self.head_size
        low = max(0, s // 2 - k)
        high = min(s, s // 2 + k)
        middle = order[low:high]
        pi_sum = float(np.sum(pi[middle]))
        if pi_sum <= 0:
            # every middle bucket is empty — fall back to the global average
            total_pi = float(np.sum(pi))
            return float(np.sum(w) / total_pi) if total_pi > 0 else 0.0
        return float(np.sum(w[middle]) / pi_sum)

    def estimate_from_vector(self, x: np.ndarray) -> float:
        """Not supported directly — the estimator needs the CM buckets.

        The ℓ2 sketch always calls :meth:`estimate_from_buckets`; this method
        exists only to satisfy the interface and raises to prevent misuse.
        """
        raise NotImplementedError(
            "MiddleBucketsMeanEstimator estimates from CM buckets; "
            "use estimate_from_buckets(w, pi)"
        )


class MeanEstimator(BiasEstimator):
    """Plain mean of all coordinates (the ℓ1-mean / ℓ2-mean heuristic).

    Maintaining the mean only needs the running sum (the dimension is known),
    which is trivially linear, so the heuristic sketches remain mergeable.
    As Section 4.1 of the paper shows, a handful of extreme outliers can drag
    the mean arbitrarily far from the optimal bias — there is no guarantee.
    """

    def __init__(self, dimension: int) -> None:
        self.dimension = require_positive_int(dimension, "dimension")
        self._running_sum = 0.0

    def estimate_from_vector(self, x: np.ndarray) -> float:
        arr = ensure_1d_float_array(x, "x")
        if arr.size != self.dimension:
            raise ValueError(
                f"vector has dimension {arr.size}, estimator expects {self.dimension}"
            )
        return float(np.mean(arr))

    def ingest_vector(self, x: np.ndarray) -> None:
        """Add a whole vector's contribution to the running sum."""
        arr = ensure_1d_float_array(x, "x")
        if arr.size != self.dimension:
            raise ValueError(
                f"vector has dimension {arr.size}, estimator expects {self.dimension}"
            )
        self._running_sum += float(np.sum(arr))

    def update(self, index: int, delta: float) -> None:
        """Apply the streaming update ``x[index] += delta`` to the running sum."""
        self._running_sum += delta

    def update_batch(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a batch of updates to the running sum in one reduction."""
        if len(deltas):
            self._running_sum += float(np.sum(deltas))

    def merge(self, other: "MeanEstimator") -> None:
        """Add another estimator's running sum (linearity)."""
        if other.dimension != self.dimension:
            raise ValueError("cannot merge mean estimators of different dimensions")
        self._running_sum += other._running_sum

    def scale(self, factor: float) -> None:
        """Scale the running sum (linearity)."""
        self._running_sum *= factor

    def current_estimate(self) -> float:
        """The bias estimate from the running sum."""
        return self._running_sum / self.dimension

    def size_in_words(self) -> int:
        """Extra sketch words consumed by the estimator (a single running sum)."""
        return 1


class ExactBiasEstimator(BiasEstimator):
    """Ground-truth estimator returning the exact ``argmin_β Err_p^k(x - β·1)``.

    Needs the full vector, so it is not a sketching component — it exists for
    tests and for the bias-estimator ablation benchmark.
    """

    def __init__(self, head_size: int, p: int = 2) -> None:
        self.head_size = require_positive_int(head_size, "head_size")
        if p not in (1, 2):
            raise ValueError(f"p must be 1 or 2, got {p!r}")
        self.p = int(p)

    def estimate_from_vector(self, x: np.ndarray) -> float:
        return optimal_bias(x, self.head_size, self.p).beta


def make_bias_estimator(
    kind: str,
    dimension: int,
    head_size: Optional[int] = None,
    samples: Optional[int] = None,
    seed: RandomSource = None,
) -> BiasEstimator:
    """Factory used by the ablation benchmarks.

    ``kind`` is one of ``"sampling_median"``, ``"mean"``, ``"exact_l1"``,
    ``"exact_l2"``.  (The middle-bucket estimator is constructed by the ℓ2
    sketch itself since it needs the CM buckets.)
    """
    if kind == "sampling_median":
        count = samples if samples is not None else max(
            1, int(np.ceil(20.0 * np.log(max(dimension, 2))))
        )
        return SamplingMedianEstimator(dimension, count, seed=seed)
    if kind == "mean":
        return MeanEstimator(dimension)
    if kind == "exact_l1":
        if head_size is None:
            raise ValueError("exact_l1 requires head_size")
        return ExactBiasEstimator(head_size, p=1)
    if kind == "exact_l2":
        if head_size is None:
            raise ValueError("exact_l2 requires head_size")
        return ExactBiasEstimator(head_size, p=2)
    raise ValueError(
        f"unknown bias estimator kind {kind!r}; expected one of "
        "'sampling_median', 'mean', 'exact_l1', 'exact_l2'"
    )
