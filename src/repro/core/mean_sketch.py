"""ℓ1-mean / ℓ2-mean: bias-aware sketches that use the plain mean as the bias.

Section 5.4 of the paper compares ℓ1-S/R and ℓ2-S/R with two simple
heuristics, ``ℓ1-mean`` and ``ℓ2-mean``, which subtract the mean of *all*
coordinates instead of an outlier-robust bias estimate.  The heuristics keep
the same recovery machinery (Count-Median for the ℓ1 variant, Count-Sketch
for the ℓ2 variant) but their bias estimate carries no guarantee: as the
warm-up discussion in Section 4.1 shows, a handful of extreme outliers can
drag the mean arbitrarily far from the optimal bias (this is exactly what
Figure 8c-8d demonstrates with 500 shifted entries).

Both variants are linear: the running sum of the vector is a linear function
of it, so the heuristic sketches still merge in the distributed model.
"""

from __future__ import annotations

import numpy as np

from repro.core.bias import MeanEstimator
from repro.serialization import register_serializable
from repro.sketches._tables import HashedCounterTable
from repro.sketches.base import LinearSketch
from repro.utils.rng import RandomSource


class MeanBiasSketch(LinearSketch):
    """Common machinery of the mean-heuristic sketches.

    Parameters
    ----------
    dimension, width, depth, seed:
        As for the other table sketches.
    signed:
        ``True`` gives the ℓ2 variant (Count-Sketch rows), ``False`` the ℓ1
        variant (Count-Median rows).
    """

    name = "mean_bias"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        signed: bool,
        seed: RandomSource = None,
    ) -> None:
        if dimension is None:
            raise ValueError(
                "the mean-heuristic sketches require a bounded dimension: "
                "the mean of all coordinates is undefined over an unbounded "
                "universe"
            )
        super().__init__(dimension, width, depth, seed=seed)
        self.signed = bool(signed)
        self._table = HashedCounterTable(
            dimension, width, depth, signed=self.signed, seed=seed
        )
        self._bias_estimator = MeanEstimator(dimension)

    @property
    def _column_sums(self) -> np.ndarray:
        return self._table.cached_column_sums()

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        delta = float(delta)
        self._table.add_update(index, delta)
        self._bias_estimator.update(index, delta)
        self._items_processed += 1

    def update_batch(self, indices, deltas=None) -> "MeanBiasSketch":
        """Vectorised batch ingestion: scatter-add plus the running sum."""
        idx, d = self._check_batch(indices, deltas)
        self._table.add_batch(idx, d)
        self._bias_estimator.update_batch(idx, d)
        self._items_processed += idx.size
        return self

    def fit(self, x) -> "MeanBiasSketch":
        arr = self._check_vector(x)
        self._table.add_vector(arr)
        self._bias_estimator.ingest_vector(arr)
        self._items_processed += int(np.count_nonzero(arr))
        return self

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def estimate_bias(self) -> float:
        """β̂ = (running sum) / n — the plain mean of all coordinates."""
        return self._bias_estimator.current_estimate()

    def query(self, index: int) -> float:
        index = self._check_index(index)
        beta = self.estimate_bias()
        buckets = self._table.bucket_column(index)
        rows = np.arange(self.depth)
        debiased = (
            self._table.table[rows, buckets]
            - beta * self._column_sums[rows, buckets]
        )
        if self.signed:
            debiased = debiased * self._table.sign_column(index)
        return float(np.median(debiased)) + beta

    def query_batch(self, indices) -> np.ndarray:
        idx, _ = self._check_batch(indices, None)
        beta = self.estimate_bias()
        cols = self._table.bucket_columns(idx)
        debiased = (
            np.take_along_axis(self._table.table, cols, axis=1)
            - beta * np.take_along_axis(self._column_sums, cols, axis=1)
        )
        if self.signed:
            debiased = debiased * self._table.sign_columns(idx)
        return np.median(debiased, axis=0) + beta

    # ------------------------------------------------------------------ #
    # linearity
    # ------------------------------------------------------------------ #
    def merge(self, other: "MeanBiasSketch") -> "MeanBiasSketch":
        self._check_compatible(other)
        if other.signed != self.signed:
            raise ValueError("cannot merge ℓ1-mean with ℓ2-mean sketches")
        self._table.merge_from(other._table)
        self._bias_estimator.merge(other._bias_estimator)
        self._items_processed += other._items_processed
        return self

    def scale(self, factor: float) -> "MeanBiasSketch":
        factor = float(factor)
        self._table.scale_by(factor)
        self._bias_estimator.scale(factor)
        return self

    def size_in_words(self) -> int:
        return self._table.counter_count + self._bias_estimator.size_in_words()

    def _config_dict(self):
        config = super()._config_dict()
        config["signed"] = self.signed
        return config

    @classmethod
    def _from_config(cls, config):
        if cls is MeanBiasSketch:
            return cls(config["dimension"], config["width"], config["depth"],
                       bool(config.get("signed")), seed=config.get("seed"))
        return cls(config["dimension"], config["width"], config["depth"],
                   seed=config.get("seed"))

    def _state_arrays(self):
        return {"table": self._table.table}

    def _state_scalars(self):
        return {"running_sum": float(self._bias_estimator._running_sum)}

    def bind_state_buffers(self, buffers) -> None:
        self._table.bind_buffer(buffers["table"])

    def _fold_scalars(self, scalars) -> None:
        self._bias_estimator._running_sum += float(scalars["running_sum"])

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        self._table.load_table(arrays["table"])
        self._bias_estimator._running_sum = float(scalars["running_sum"])

    @property
    def table(self) -> np.ndarray:
        """The raw ``(depth, width)`` counter table (for inspection)."""
        return self._table.table


class L1MeanSketch(MeanBiasSketch):
    """``ℓ1-mean``: Count-Median rows de-biased by the plain mean."""

    name = "l1_mean"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        seed: RandomSource = None,
    ) -> None:
        super().__init__(dimension, width, depth, signed=False, seed=seed)


class L2MeanSketch(MeanBiasSketch):
    """``ℓ2-mean``: Count-Sketch rows de-biased by the plain mean."""

    name = "l2_mean"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        seed: RandomSource = None,
    ) -> None:
        super().__init__(dimension, width, depth, signed=True, seed=seed)


register_serializable(MeanBiasSketch)
register_serializable(L1MeanSketch)
register_serializable(L2MeanSketch)
