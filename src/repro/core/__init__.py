"""The paper's primary contribution: bias-aware sketches and their components.

Public classes
--------------
* :class:`L1BiasAwareSketch` — ℓ1-S/R (Algorithms 1-2, Theorem 3)
* :class:`L2BiasAwareSketch` — ℓ2-S/R (Algorithms 3-4, Theorem 4)
* :class:`StreamingL1BiasAwareSketch` / :class:`StreamingL2BiasAwareSketch` —
  the streaming refinements of Section 4.4 (Algorithm 6 for ℓ2)
* :class:`BiasHeap` — Algorithm 5
* :class:`L1MeanSketch` / :class:`L2MeanSketch` — the mean heuristics of
  Section 5.4
* bias estimators and the exact error functionals ``Err_p^k`` / optimal bias

Importing this package also registers the bias-aware algorithms in the sketch
registry (:mod:`repro.sketches.registry`) so the evaluation harness can build
them by name alongside the baselines.
"""

from repro.core.bias import (
    BiasEstimator,
    ExactBiasEstimator,
    MeanEstimator,
    MiddleBucketsMeanEstimator,
    SamplingMedianEstimator,
    make_bias_estimator,
)
from repro.core.bias_heap import BiasHeap
from repro.core.errors import (
    BiasSolution,
    bias_gain,
    debias,
    debiased_err,
    err_pk,
    optimal_bias,
    optimal_bias_error,
)
from repro.core.l1_sketch import L1BiasAwareSketch
from repro.core.l2_sketch import L2BiasAwareSketch
from repro.core.mean_sketch import L1MeanSketch, L2MeanSketch, MeanBiasSketch
from repro.core.streaming_l1 import StreamingL1BiasAwareSketch
from repro.core.streaming_l2 import StreamingL2BiasAwareSketch
from repro.core.theory import (
    GuaranteeReport,
    SketchParameters,
    count_median_bound,
    count_sketch_bound,
    guarantee_report,
    l1_bias_aware_bound,
    l2_bias_aware_bound,
    predicted_compression,
    recommend_parameters,
    sketch_size_words,
)
from repro.sketches.registry import register_sketch

__all__ = [
    "BiasEstimator",
    "ExactBiasEstimator",
    "MeanEstimator",
    "MiddleBucketsMeanEstimator",
    "SamplingMedianEstimator",
    "make_bias_estimator",
    "BiasHeap",
    "BiasSolution",
    "bias_gain",
    "debias",
    "debiased_err",
    "err_pk",
    "optimal_bias",
    "optimal_bias_error",
    "L1BiasAwareSketch",
    "L2BiasAwareSketch",
    "L1MeanSketch",
    "L2MeanSketch",
    "MeanBiasSketch",
    "StreamingL1BiasAwareSketch",
    "StreamingL2BiasAwareSketch",
    "GuaranteeReport",
    "SketchParameters",
    "count_median_bound",
    "count_sketch_bound",
    "guarantee_report",
    "l1_bias_aware_bound",
    "l2_bias_aware_bound",
    "predicted_compression",
    "recommend_parameters",
    "sketch_size_words",
]


def _register_bias_aware_sketches() -> None:
    """Register the paper's algorithms with the shared sketch registry.

    Each registration declares the algorithm's capability metadata (all of
    them are linear and streaming, and answer every query kind) plus the
    schema of its algorithm-specific keyword arguments, so the
    :mod:`repro.api` facade can validate configurations up front.
    """
    registrations = [
        (
            "l1_sr",
            "ℓ1-S/R (bias-aware, Count-Median based)",
            lambda n, s, d, seed, **kw: L1BiasAwareSketch(n, s, d, seed=seed, **kw),
            {"bias_samples": int},
        ),
        (
            "l2_sr",
            "ℓ2-S/R (bias-aware, Count-Sketch based)",
            lambda n, s, d, seed, **kw: L2BiasAwareSketch(n, s, d, seed=seed, **kw),
            {"head_size": int},
        ),
        (
            "l1_mean",
            "ℓ1-mean (mean heuristic, Count-Median based)",
            lambda n, s, d, seed, **kw: L1MeanSketch(n, s, d, seed=seed, **kw),
            {},
        ),
        (
            "l2_mean",
            "ℓ2-mean (mean heuristic, Count-Sketch based)",
            lambda n, s, d, seed, **kw: L2MeanSketch(n, s, d, seed=seed, **kw),
            {},
        ),
        (
            "l1_sr_streaming",
            "ℓ1-S/R (streaming bias maintenance)",
            lambda n, s, d, seed, **kw: StreamingL1BiasAwareSketch(
                n, s, d, seed=seed, **kw
            ),
            {"bias_samples": int},
        ),
        (
            "l2_sr_streaming",
            "ℓ2-S/R (streaming, Bias-Heap of Algorithm 5)",
            lambda n, s, d, seed, **kw: StreamingL2BiasAwareSketch(
                n, s, d, seed=seed, **kw
            ),
            {"head_size": int},
        ),
    ]
    for name, label, factory, kwargs_schema in registrations:
        register_sketch(
            name,
            label,
            factory,
            linear=True,
            bias_aware=True,
            kwargs_schema=kwargs_schema,
            overwrite=True,
        )


_register_bias_aware_sketches()
