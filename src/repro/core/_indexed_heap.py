"""Internal helper: a binary heap with position tracking (indexed heap).

The Bias-Heap of Algorithm 5 must, on every streaming update, adjust the key
``w_j/π_j`` of an arbitrary bucket ``j`` and re-establish the partition of
buckets into "bottom", "middle" and "top" ranks.  A plain ``heapq`` cannot
update arbitrary elements, so this module provides a small indexed binary
heap supporting ``push``, ``pop``, ``remove(id)`` and peeking, all in
O(log size).  Max-heap behaviour is obtained by negating keys at the call
site (see :class:`repro.core.bias_heap.BiasHeap`).

Ties are broken by node id so the structure is fully deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class IndexedMinHeap:
    """A binary min-heap keyed by ``(key, node_id)`` with O(log n) removal by id."""

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int]] = []
        self._position: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._position

    def push(self, node_id: int, key: float) -> None:
        """Insert a node; raises if the id is already present."""
        if node_id in self._position:
            raise ValueError(f"node {node_id} is already in the heap")
        self._entries.append((key, node_id))
        self._position[node_id] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def peek(self) -> Tuple[float, int]:
        """Return ``(key, node_id)`` of the minimum without removing it."""
        if not self._entries:
            raise IndexError("peek from an empty heap")
        return self._entries[0]

    def pop(self) -> Tuple[float, int]:
        """Remove and return ``(key, node_id)`` of the minimum."""
        if not self._entries:
            raise IndexError("pop from an empty heap")
        top = self._entries[0]
        self._remove_at(0)
        return top

    def remove(self, node_id: int) -> Tuple[float, int]:
        """Remove the node with the given id and return its ``(key, node_id)``."""
        position = self._position.get(node_id)
        if position is None:
            raise KeyError(f"node {node_id} is not in the heap")
        entry = self._entries[position]
        self._remove_at(position)
        return entry

    def key_of(self, node_id: int) -> float:
        """Return the key currently stored for ``node_id``."""
        position = self._position.get(node_id)
        if position is None:
            raise KeyError(f"node {node_id} is not in the heap")
        return self._entries[position][0]

    def node_ids(self) -> List[int]:
        """All node ids currently in the heap (arbitrary order)."""
        return list(self._position)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _remove_at(self, position: int) -> None:
        last = len(self._entries) - 1
        removed_id = self._entries[position][1]
        if position != last:
            self._entries[position] = self._entries[last]
            self._position[self._entries[position][1]] = position
        self._entries.pop()
        del self._position[removed_id]
        if position <= last - 1 and self._entries:
            position = min(position, len(self._entries) - 1)
            self._sift_down(position)
            self._sift_up(position)

    @staticmethod
    def _less(a: Tuple[float, int], b: Tuple[float, int]) -> bool:
        return a < b

    def _sift_up(self, position: int) -> None:
        entry = self._entries[position]
        while position > 0:
            parent = (position - 1) // 2
            if self._less(entry, self._entries[parent]):
                self._entries[position] = self._entries[parent]
                self._position[self._entries[position][1]] = position
                position = parent
            else:
                break
        self._entries[position] = entry
        self._position[entry[1]] = position

    def _sift_down(self, position: int) -> None:
        size = len(self._entries)
        entry = self._entries[position]
        while True:
            child = 2 * position + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._less(self._entries[right], self._entries[child]):
                child = right
            if self._less(self._entries[child], entry):
                self._entries[position] = self._entries[child]
                self._position[self._entries[position][1]] = position
                position = child
            else:
                break
        self._entries[position] = entry
        self._position[entry[1]] = position


class IndexedMaxHeap:
    """A max-heap built by negating keys of an :class:`IndexedMinHeap`."""

    def __init__(self) -> None:
        self._heap = IndexedMinHeap()

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._heap

    def push(self, node_id: int, key: float) -> None:
        self._heap.push(node_id, -key)

    def peek(self) -> Tuple[float, int]:
        key, node_id = self._heap.peek()
        return -key, node_id

    def pop(self) -> Tuple[float, int]:
        key, node_id = self._heap.pop()
        return -key, node_id

    def remove(self, node_id: int) -> Tuple[float, int]:
        key, removed_id = self._heap.remove(node_id)
        return -key, removed_id

    def key_of(self, node_id: int) -> float:
        return -self._heap.key_of(node_id)

    def node_ids(self) -> List[int]:
        return self._heap.node_ids()
