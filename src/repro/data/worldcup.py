"""Simulated WorldCup dataset (substitute for the 1998 World Cup access logs).

The paper's WorldCup vector records, for each second of May 14 1998, the
number of HTTP requests made to the tournament web site: n = 86 400 seconds
and roughly 3.2 million requests, i.e. an average of ~37 requests per second
with pronounced diurnal variation and short flash-crowd bursts around matches.

The substitute reproduces those properties with a doubly-stochastic counting
process: a sinusoidal diurnal base rate modulated by lognormal per-second
noise (an over-dispersed, right-skewed count distribution) plus a small
number of flash-crowd windows during which the rate multiplies.  The result
is a non-negative integer vector with a clear but moderate bias and an
asymmetric, heavy-ish tail — the regime where Figure 3 shows ℓ2-S/R, CS and
ℓ1-S/R close together and CM clearly worse.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


def simulated_worldcup(
    dimension: int = 43_200,
    average_rate: float = 37.0,
    diurnal_amplitude: float = 0.6,
    noise_sigma: float = 0.45,
    flash_crowds: int = 4,
    flash_multiplier: float = 8.0,
    seed: RandomSource = None,
) -> Dataset:
    """Generate a WorldCup-like requests-per-second vector.

    Parameters
    ----------
    dimension:
        Number of seconds covered (the paper's day has 86 400; the default
        covers half a day to keep the benchmarks fast).
    average_rate:
        Mean requests per second over the whole period.
    diurnal_amplitude:
        Relative amplitude of the sinusoidal day/night modulation (0..1).
    noise_sigma:
        Sigma of the lognormal per-second rate noise (over-dispersion).
    flash_crowds:
        Number of flash-crowd windows (match kick-offs) during which the rate
        is multiplied by ``flash_multiplier``.
    """
    dimension = require_positive_int(dimension, "dimension")
    if not (0.0 <= diurnal_amplitude < 1.0):
        raise ValueError(
            f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude}"
        )
    if average_rate <= 0:
        raise ValueError(f"average_rate must be positive, got {average_rate}")
    rng = as_rng(seed)

    seconds = np.arange(dimension, dtype=np.float64)
    day_fraction = seconds / 86_400.0
    diurnal = 1.0 + diurnal_amplitude * np.sin(2.0 * np.pi * (day_fraction - 0.25))

    # lognormal noise with unit mean keeps the average rate calibrated
    noise = rng.lognormal(mean=-0.5 * noise_sigma**2, sigma=noise_sigma,
                          size=dimension)
    rate = average_rate * diurnal * noise

    # flash crowds: contiguous windows with multiplied rate
    if flash_crowds > 0:
        window = max(1, dimension // 200)
        starts = rng.choice(max(1, dimension - window), size=flash_crowds,
                            replace=False)
        for start in starts:
            rate[start:start + window] *= flash_multiplier

    vector = rng.poisson(rate).astype(np.float64)
    return Dataset(
        name="worldcup",
        vector=vector,
        description=(
            "simulated per-second web request counts with diurnal pattern and "
            "flash crowds (substitute for the 1998 WorldCup access logs)"
        ),
        metadata={
            "average_rate": float(average_rate),
            "diurnal_amplitude": float(diurnal_amplitude),
            "noise_sigma": float(noise_sigma),
            "flash_crowds": int(flash_crowds),
            "flash_multiplier": float(flash_multiplier),
            "seed": seed,
        },
    )
