"""The :class:`Dataset` container shared by all generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.core.errors import bias_gain, err_pk, optimal_bias
from repro.utils.validation import ensure_1d_float_array


@dataclass
class Dataset:
    """A named frequency vector with provenance metadata.

    Attributes
    ----------
    name:
        Short dataset identifier used in result tables (e.g. ``"gaussian"``).
    vector:
        The frequency vector ``x`` the sketches summarise.
    description:
        One-line description of the workload.
    metadata:
        Generator parameters (bias, sigma, seed, ...), recorded so results are
        reproducible from the table alone.
    """

    name: str
    vector: np.ndarray
    description: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.vector = ensure_1d_float_array(self.vector, "vector")

    @property
    def dimension(self) -> int:
        """The dimension ``n`` of the frequency vector."""
        return int(self.vector.size)

    @property
    def total_mass(self) -> float:
        """The sum of all coordinates (number of items for count data)."""
        return float(np.sum(self.vector))

    def summary(self, head_size: int = 100) -> Dict[str, float]:
        """Summary statistics relevant to the bias-aware analysis.

        Reports the tail errors before and after optimal de-biasing for both
        p = 1 and p = 2, plus the de-biasing gain — the quantity that predicts
        how much the bias-aware sketches help on this dataset.
        """
        head_size = min(head_size, self.dimension - 1)
        solution_l1 = optimal_bias(self.vector, head_size, 1)
        solution_l2 = optimal_bias(self.vector, head_size, 2)
        return {
            "dimension": float(self.dimension),
            "mean": float(np.mean(self.vector)),
            "median": float(np.median(self.vector)),
            "std": float(np.std(self.vector)),
            "min": float(np.min(self.vector)),
            "max": float(np.max(self.vector)),
            "err1_tail": err_pk(self.vector, head_size, 1),
            "err2_tail": err_pk(self.vector, head_size, 2),
            "err1_debiased": solution_l1.error,
            "err2_debiased": solution_l2.error,
            "optimal_bias_l1": solution_l1.beta,
            "optimal_bias_l2": solution_l2.beta,
            "bias_gain_l1": bias_gain(self.vector, head_size, 1),
            "bias_gain_l2": bias_gain(self.vector, head_size, 2),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(name={self.name!r}, dimension={self.dimension}, "
            f"total_mass={self.total_mass:.6g})"
        )
