"""Simulated Hudong dataset (substitute for the Hudong "related-to" edge stream).

The paper's streaming experiment (Figure 6) feeds the edges of the Hudong
Chinese-encyclopaedia article graph (≈2.45 M articles, ≈18.9 M "related to"
edges) into the sketches in editing-time order, with the frequency vector
being the articles' out-degrees.  The resulting degree vector is power-law
(most articles have few links, a few hubs have thousands) — i.e. a *low-bias*
workload that exercises the streaming code path and the update/query timing
comparison rather than the de-biasing advantage.

The substitute generates a preferential-attachment edge stream: edge ``t``
attaches a source article chosen by a Barabási–Albert-style rule (new article
with probability proportional to the arrival rate, otherwise an existing
article with probability proportional to its current out-degree plus a
smoothing constant).  The stream is exposed both as an array of source
article ids (for per-update replay) and as the final out-degree vector (for
accuracy measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


@dataclass
class HudongStream:
    """A simulated edge stream plus the out-degree vector it induces.

    Attributes
    ----------
    sources:
        ``sources[t]`` is the article whose out-degree the t-th edge increments.
    dimension:
        Number of distinct articles (the dimension of the degree vector).
    metadata:
        Generator parameters.
    """

    sources: np.ndarray
    dimension: int
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def updates(self) -> int:
        """Number of edges (stream updates)."""
        return int(self.sources.size)

    def degree_vector(self) -> np.ndarray:
        """The final out-degree vector the stream accumulates to."""
        return np.bincount(self.sources, minlength=self.dimension).astype(np.float64)

    def to_dataset(self) -> Dataset:
        """The final degree vector wrapped as a :class:`Dataset`."""
        return Dataset(
            name="hudong",
            vector=self.degree_vector(),
            description=(
                "simulated article out-degrees from a preferential-attachment "
                "edge stream (substitute for the Hudong related-to graph)"
            ),
            metadata=dict(self.metadata),
        )

    def iter_updates(self) -> Iterator[tuple]:
        """Iterate over the stream as ``(article_id, +1)`` updates in order."""
        for source in self.sources:
            yield int(source), 1.0


def simulated_hudong(
    dimension: int = 20_000,
    edges: int = 200_000,
    attachment_smoothing: float = 1.0,
    batch_size: int = 1_000,
    seed: RandomSource = None,
) -> HudongStream:
    """Generate a preferential-attachment edge stream over ``dimension`` articles.

    The generator works in batches: within a batch the attachment
    probabilities are held fixed (proportional to ``degree + smoothing``),
    which keeps the generation vectorised while preserving the rich-get-richer
    dynamics across batches.
    """
    dimension = require_positive_int(dimension, "dimension")
    edges = require_positive_int(edges, "edges")
    batch_size = require_positive_int(batch_size, "batch_size")
    if attachment_smoothing <= 0:
        raise ValueError(
            f"attachment_smoothing must be positive, got {attachment_smoothing}"
        )
    rng = as_rng(seed)

    degrees = np.zeros(dimension, dtype=np.float64)
    sources = np.empty(edges, dtype=np.int64)
    generated = 0
    while generated < edges:
        batch = min(batch_size, edges - generated)
        weights = degrees + attachment_smoothing
        probabilities = weights / weights.sum()
        chosen = rng.choice(dimension, size=batch, p=probabilities)
        sources[generated:generated + batch] = chosen
        np.add.at(degrees, chosen, 1.0)
        generated += batch

    return HudongStream(
        sources=sources,
        dimension=dimension,
        metadata={
            "edges": int(edges),
            "attachment_smoothing": float(attachment_smoothing),
            "batch_size": int(batch_size),
            "seed": seed,
        },
    )
