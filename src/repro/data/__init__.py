"""Dataset generators for the paper's evaluation (Section 5.1).

The two synthetic datasets (``Gaussian`` and ``Gaussian-2``) are generated
exactly as described in the paper.  The five real datasets (WorldCup, Wiki,
Higgs, Meme, Hudong) are public downloads that are unavailable offline; each
is replaced by a **simulated generator** that reproduces the statistical
property the corresponding experiment exercises — the presence/absence of a
dominant bias and the shape of the deviations around it.  DESIGN.md §4
documents each substitution.

Every generator returns a :class:`Dataset` (a named frequency vector plus
provenance metadata) and is deterministic given a seed.  The Hudong
substitute additionally exposes the underlying *edge stream* so the streaming
experiments (Figure 6) can replay updates one at a time.
"""

from repro.data.dataset import Dataset
from repro.data.higgs import simulated_higgs
from repro.data.hudong import HudongStream, simulated_hudong
from repro.data.meme import simulated_meme
from repro.data.registry import available_datasets, load_dataset
from repro.data.synthetic import (
    gaussian_dataset,
    gaussian2_dataset,
    shifted_gaussian_dataset,
    uniform_dataset,
    zipf_dataset,
)
from repro.data.wiki import simulated_wiki
from repro.data.worldcup import simulated_worldcup

__all__ = [
    "Dataset",
    "simulated_higgs",
    "HudongStream",
    "simulated_hudong",
    "simulated_meme",
    "available_datasets",
    "load_dataset",
    "gaussian_dataset",
    "gaussian2_dataset",
    "shifted_gaussian_dataset",
    "uniform_dataset",
    "zipf_dataset",
    "simulated_wiki",
    "simulated_worldcup",
]
