"""Simulated Meme dataset (substitute for memetracker phrase lengths).

The paper models the Meme dataset as a vector whose i-th coordinate is the
length (number of words) of the i-th meme phrase from memetracker.org
(n ≈ 2.1·10^8).  Phrase lengths are small positive integers with a mode
around a handful of words and a right tail of long quotes — a mild bias with
discrete, skewed deviations.

The substitute draws lengths from a shifted negative-binomial distribution
(mode ≈ 7 words, long right tail), which reproduces that shape.  Figure 5's
qualitative outcome — ℓ2-S/R best, CS ~30 % worse, the Count-Min family far
behind — follows from that mild-bias / skewed-tail structure.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


def simulated_meme(
    dimension: int = 100_000,
    mean_length: float = 8.0,
    dispersion: float = 3.0,
    minimum_length: int = 1,
    seed: RandomSource = None,
) -> Dataset:
    """Generate a Meme-like vector of phrase lengths (small skewed integers)."""
    dimension = require_positive_int(dimension, "dimension")
    if mean_length <= minimum_length:
        raise ValueError(
            f"mean_length ({mean_length}) must exceed minimum_length "
            f"({minimum_length})"
        )
    if dispersion <= 0:
        raise ValueError(f"dispersion must be positive, got {dispersion}")
    rng = as_rng(seed)
    # negative binomial parameterised by mean and dispersion (number of failures)
    excess_mean = mean_length - minimum_length
    p = dispersion / (dispersion + excess_mean)
    vector = minimum_length + rng.negative_binomial(dispersion, p, size=dimension)
    return Dataset(
        name="meme",
        vector=vector.astype(np.float64),
        description=(
            "simulated meme phrase lengths (shifted negative binomial; "
            "substitute for the memetracker length vector)"
        ),
        metadata={
            "mean_length": float(mean_length),
            "dispersion": float(dispersion),
            "minimum_length": int(minimum_length),
            "seed": seed,
        },
    )
