"""Simulated Wiki dataset (substitute for English-Wikipedia pageviews per second).

The paper's Wiki vector has one coordinate per second over roughly 40 days
(n ≈ 3.5 million) and about 1.3·10^10 pageviews in total, i.e. ~3 700 views
per second on average.  Per-second pageview counts of a site that large are
tightly concentrated around a slowly varying diurnal mean — a textbook case
of a strongly biased vector, which is why ℓ2-S/R beats every baseline by an
order of magnitude in Figure 2.

The substitute draws per-second counts from a Poisson-lognormal process whose
rate follows a diurnal plus weekly pattern around a large mean, with a small
number of short spikes (breaking-news events).  The coefficient of variation
is kept small (≈10-15 %), matching the real data's concentration.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


def simulated_wiki(
    dimension: int = 50_000,
    average_rate: float = 3_700.0,
    diurnal_amplitude: float = 0.12,
    weekly_amplitude: float = 0.04,
    noise_sigma: float = 0.03,
    spikes: int = 5,
    spike_multiplier: float = 1.8,
    seed: RandomSource = None,
) -> Dataset:
    """Generate a Wiki-like pageviews-per-second vector (strong bias)."""
    dimension = require_positive_int(dimension, "dimension")
    if average_rate <= 0:
        raise ValueError(f"average_rate must be positive, got {average_rate}")
    rng = as_rng(seed)

    seconds = np.arange(dimension, dtype=np.float64)
    day_fraction = seconds / 86_400.0
    week_fraction = seconds / (7 * 86_400.0)
    modulation = (
        1.0
        + diurnal_amplitude * np.sin(2.0 * np.pi * (day_fraction - 0.3))
        + weekly_amplitude * np.sin(2.0 * np.pi * week_fraction)
    )
    noise = rng.lognormal(mean=-0.5 * noise_sigma**2, sigma=noise_sigma,
                          size=dimension)
    rate = average_rate * modulation * noise

    if spikes > 0:
        window = max(1, dimension // 500)
        starts = rng.choice(max(1, dimension - window), size=spikes, replace=False)
        for start in starts:
            rate[start:start + window] *= spike_multiplier

    vector = rng.poisson(rate).astype(np.float64)
    return Dataset(
        name="wiki",
        vector=vector,
        description=(
            "simulated per-second pageview counts around a large diurnal mean "
            "(substitute for English-Wikipedia pageviews-by-second)"
        ),
        metadata={
            "average_rate": float(average_rate),
            "diurnal_amplitude": float(diurnal_amplitude),
            "weekly_amplitude": float(weekly_amplitude),
            "noise_sigma": float(noise_sigma),
            "spikes": int(spikes),
            "spike_multiplier": float(spike_multiplier),
            "seed": seed,
        },
    )
