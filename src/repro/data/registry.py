"""Dataset registry: build any of the paper's workloads by name.

The evaluation harness and the benchmark modules refer to datasets by the
short names used in the paper's figures; this registry maps those names to
the generator functions with their default (laptop-scale) parameters.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.data.dataset import Dataset
from repro.data.higgs import simulated_higgs
from repro.data.hudong import simulated_hudong
from repro.data.meme import simulated_meme
from repro.data.synthetic import (
    gaussian_dataset,
    gaussian2_dataset,
    uniform_dataset,
    zipf_dataset,
)
from repro.data.wiki import simulated_wiki
from repro.data.worldcup import simulated_worldcup
from repro.utils.rng import RandomSource

_GENERATORS: Dict[str, Callable[..., Dataset]] = {
    "gaussian": gaussian_dataset,
    "gaussian2": gaussian2_dataset,
    "worldcup": simulated_worldcup,
    "wiki": simulated_wiki,
    "higgs": simulated_higgs,
    "meme": simulated_meme,
    "zipf": zipf_dataset,
    "uniform": uniform_dataset,
    "hudong": lambda **kwargs: simulated_hudong(**kwargs).to_dataset(),
}


def available_datasets() -> List[str]:
    """Names of all datasets the registry can build."""
    return sorted(_GENERATORS)


def load_dataset(name: str, seed: RandomSource = None, **kwargs) -> Dataset:
    """Build the dataset registered under ``name``.

    Extra keyword arguments are forwarded to the generator (e.g.
    ``dimension=...``, ``bias=...``); every generator accepts ``seed``.
    """
    if name not in _GENERATORS:
        known = ", ".join(available_datasets())
        raise KeyError(f"unknown dataset {name!r}; available: {known}")
    return _GENERATORS[name](seed=seed, **kwargs)
