"""Synthetic datasets: the paper's Gaussian / Gaussian-2 plus extra generators.

* :func:`gaussian_dataset` — the ``Gaussian`` dataset of Section 5.1: every
  coordinate drawn i.i.d. from N(b, σ²).  The paper uses n = 5·10^8, σ = 15
  and b ∈ {100, 500}; the benchmarks scale n down but keep σ and b.
* :func:`gaussian2_dataset` — the ``Gaussian-2`` dataset (Figure 8): N(100, 15²)
  either unshifted, or with a given number of entries shifted by a large
  constant (the paper shifts 500 entries by 100 000) so the plain-mean
  heuristics break while ℓ1/ℓ2-S/R do not.
* :func:`shifted_gaussian_dataset` — the general form: Gaussian background
  plus a configurable set of outliers; used by tests and ablations.
* :func:`zipf_dataset` / :func:`uniform_dataset` — extra workloads without a
  bias, to exercise the regime where bias-aware and classical sketches should
  coincide.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


def gaussian_dataset(
    dimension: int = 200_000,
    bias: float = 100.0,
    sigma: float = 15.0,
    seed: RandomSource = None,
) -> Dataset:
    """The paper's ``Gaussian`` dataset: x_i ~ N(bias, sigma²) i.i.d."""
    dimension = require_positive_int(dimension, "dimension")
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = as_rng(seed)
    vector = rng.normal(loc=bias, scale=sigma, size=dimension)
    return Dataset(
        name="gaussian",
        vector=vector,
        description=f"i.i.d. N({bias}, {sigma}^2) coordinates (paper: Gaussian)",
        metadata={"bias": float(bias), "sigma": float(sigma), "seed": seed},
    )


def shifted_gaussian_dataset(
    dimension: int = 100_000,
    bias: float = 100.0,
    sigma: float = 15.0,
    shifted_entries: int = 0,
    shift: float = 100_000.0,
    seed: RandomSource = None,
) -> Dataset:
    """Gaussian background with ``shifted_entries`` coordinates moved by ``shift``.

    With ``shifted_entries = 0`` this reduces to :func:`gaussian_dataset`.
    The shifted coordinates are the "outliers"/head that the optimal bias is
    allowed to ignore; the plain mean is not robust to them, which is the
    contrast Figure 8c-8d demonstrates.
    """
    dimension = require_positive_int(dimension, "dimension")
    if shifted_entries < 0:
        raise ValueError(f"shifted_entries must be >= 0, got {shifted_entries}")
    if shifted_entries >= dimension:
        raise ValueError(
            f"shifted_entries ({shifted_entries}) must be < dimension ({dimension})"
        )
    rng = as_rng(seed)
    vector = rng.normal(loc=bias, scale=sigma, size=dimension)
    shifted_indices = np.array([], dtype=np.int64)
    if shifted_entries > 0:
        shifted_indices = rng.choice(dimension, size=shifted_entries, replace=False)
        vector[shifted_indices] += shift
    return Dataset(
        name="shifted_gaussian",
        vector=vector,
        description=(
            f"N({bias}, {sigma}^2) with {shifted_entries} entries shifted by {shift}"
        ),
        metadata={
            "bias": float(bias),
            "sigma": float(sigma),
            "shifted_entries": int(shifted_entries),
            "shift": float(shift),
            "shifted_indices": shifted_indices,
            "seed": seed,
        },
    )


def gaussian2_dataset(
    dimension: int = 100_000,
    shifted_entries: int = 0,
    shift: float = 100_000.0,
    seed: RandomSource = None,
) -> Dataset:
    """The paper's ``Gaussian-2`` dataset (Figure 8): N(100, 15²), optionally shifted.

    The paper fixes n = 5·10^6 and, for the second pair of plots, shifts 500
    entries by 100 000.  The default here scales n down; the benchmark scales
    the number of shifted entries proportionally (50 out of 10^5).
    """
    dataset = shifted_gaussian_dataset(
        dimension=dimension,
        bias=100.0,
        sigma=15.0,
        shifted_entries=shifted_entries,
        shift=shift,
        seed=seed,
    )
    dataset.name = "gaussian2"
    dataset.description = (
        "N(100, 15^2) coordinates"
        + (f" with {shifted_entries} entries shifted by {shift}"
           if shifted_entries else "")
        + " (paper: Gaussian-2)"
    )
    return dataset


def zipf_dataset(
    dimension: int = 100_000,
    exponent: float = 1.2,
    total_items: int = 1_000_000,
    seed: RandomSource = None,
) -> Dataset:
    """A Zipfian frequency vector with no bias (classical heavy-hitter workload).

    Coordinate ``i`` receives an expected share proportional to ``1/(i+1)^exponent``
    of ``total_items`` items (multinomially distributed).  Most coordinates are
    near zero, so de-biasing brings little benefit — a useful control showing
    bias-aware sketches do not *hurt* when there is no bias.
    """
    dimension = require_positive_int(dimension, "dimension")
    total_items = require_positive_int(total_items, "total_items")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = as_rng(seed)
    ranks = np.arange(1, dimension + 1, dtype=np.float64)
    probabilities = ranks ** (-exponent)
    probabilities /= probabilities.sum()
    vector = rng.multinomial(total_items, probabilities).astype(np.float64)
    return Dataset(
        name="zipf",
        vector=vector,
        description=f"Zipf({exponent}) counts over {total_items} items",
        metadata={
            "exponent": float(exponent),
            "total_items": int(total_items),
            "seed": seed,
        },
    )


def uniform_dataset(
    dimension: int = 100_000,
    low: float = 0.0,
    high: float = 200.0,
    seed: RandomSource = None,
) -> Dataset:
    """Uniform coordinates in [low, high): a mild-bias control workload."""
    dimension = require_positive_int(dimension, "dimension")
    if high <= low:
        raise ValueError(f"high ({high}) must be > low ({low})")
    rng = as_rng(seed)
    vector = rng.uniform(low, high, size=dimension)
    return Dataset(
        name="uniform",
        vector=vector,
        description=f"Uniform[{low}, {high}) coordinates",
        metadata={"low": float(low), "high": float(high), "seed": seed},
    )
