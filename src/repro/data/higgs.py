"""Simulated Higgs dataset (substitute for the HIGGS kinematic feature vector).

The paper models the fourth kinematic feature of the HIGGS Monte-Carlo
dataset (Baldi et al. 2014) as a non-negative vector of 1.1·10^7 entries.
Kinematic magnitudes of that kind are unimodal, right-skewed and strictly
positive — well approximated by a gamma distribution with a mode near 1 and a
moderate tail.  That gives a vector with a moderate bias and *asymmetric*
noise around it, which is exactly the regime where Figure 4 shows ℓ2-S/R
ahead of CS, CS ahead of CM-CU/CML-CU, and CM far behind.

The substitute draws i.i.d. gamma variates (optionally with a handful of
extreme outliers, disabled by default to mirror the clean real feature).
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import require_positive_int


def simulated_higgs(
    dimension: int = 100_000,
    shape: float = 3.0,
    scale: float = 0.35,
    outliers: int = 0,
    outlier_value: float = 50.0,
    seed: RandomSource = None,
) -> Dataset:
    """Generate a Higgs-like non-negative, right-skewed feature vector."""
    dimension = require_positive_int(dimension, "dimension")
    if shape <= 0 or scale <= 0:
        raise ValueError("shape and scale must be positive")
    if outliers < 0 or outliers >= dimension:
        raise ValueError(
            f"outliers must be in [0, dimension), got {outliers}"
        )
    rng = as_rng(seed)
    vector = rng.gamma(shape, scale, size=dimension)
    if outliers > 0:
        indices = rng.choice(dimension, size=outliers, replace=False)
        vector[indices] += outlier_value
    return Dataset(
        name="higgs",
        vector=vector,
        description=(
            "simulated non-negative right-skewed kinematic feature "
            "(substitute for the 4th HIGGS feature)"
        ),
        metadata={
            "shape": float(shape),
            "scale": float(scale),
            "outliers": int(outliers),
            "outlier_value": float(outlier_value),
            "seed": seed,
        },
    )
