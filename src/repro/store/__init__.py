"""A persistent, concurrent, multi-tenant catalog of sketches.

:class:`SketchStore` turns "a sketch in a file" into "a service's durable
state": named sketches, versioned immutable snapshots, atomic multi-sketch
commits, windowed-snapshot compaction, and WAL-backed concurrency (readers
restore while a writer ingests and puts).  The ``store://PATH#NAME[@VERSION]``
URI grammar (:func:`parse_store_uri`) addresses store state anywhere a path
is accepted — :meth:`repro.api.SketchSession.save` / ``open`` and the
``repro sketch save`` / ``load`` CLI speak it directly.

>>> from repro.store import SketchStore
>>> with SketchStore("catalog.db") as store:
...     store.put("traffic", session)
...     restored = store.get("traffic")            # latest snapshot
...     yesterday = store.get("traffic", version=1)
"""

from repro.store.catalog import (
    CatalogEntry,
    CompactionReport,
    SketchStore,
    SnapshotInfo,
)
from repro.store.errors import StoreError
from repro.store.schema import SCHEMA_VERSION, schema_dump
from repro.store.uri import (
    STORE_URI_PREFIX,
    StoreURI,
    format_store_uri,
    is_store_uri,
    parse_store_uri,
)

__all__ = [
    "CatalogEntry",
    "CompactionReport",
    "SCHEMA_VERSION",
    "STORE_URI_PREFIX",
    "SketchStore",
    "SnapshotInfo",
    "StoreError",
    "StoreURI",
    "format_store_uri",
    "is_store_uri",
    "parse_store_uri",
    "schema_dump",
]
