"""Exceptions raised by the sketch store."""

from __future__ import annotations


class StoreError(ValueError):
    """A store-level failure: bad URI, unknown name or version, schema drift.

    Subclasses :class:`ValueError` so the CLI's one-line error path (and any
    caller already catching ``ValueError`` around restores) handles it
    without new plumbing.
    """
