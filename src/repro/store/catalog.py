"""The :class:`SketchStore`: a persistent, concurrent, multi-tenant catalog.

One store is one SQLite file holding *named* sketches with *versioned,
immutable* snapshots:

* :meth:`SketchStore.put` appends a snapshot of a
  :class:`~repro.api.SketchSession` (or a raw wire payload) under a name,
  returning the new version — payloads are stored verbatim, so a later
  :meth:`get` restores bit-identical state;
* :meth:`SketchStore.get` restores a session from any snapshot (latest by
  default);
* :meth:`SketchStore.list` / :meth:`history` answer from indexed metadata —
  the materialized ``listing`` table and the ``snapshots`` metadata columns
  — without decoding a single payload;
* :meth:`SketchStore.commit` puts several sketches in **one transaction**,
  so multi-sketch state (e.g. one sketch per tenant) moves atomically;
* :meth:`SketchStore.compact` folds the closed panes of retained *windowed*
  snapshots into one pane each, shrinking historical versions to O(live
  panes' worth of counters) while leaving every query answer unchanged
  (pane merging is exactly the linear algebra the window view runs);
* concurrency rides SQLite WAL: any number of reader processes
  ``get``/``list`` while one writer ingests and ``put``\\ s — see
  :mod:`repro.store.schema` for the connection discipline.

The :func:`repro.store.uri.parse_store_uri` grammar
(``store://PATH#NAME[@VERSION]``) lets every path-accepting I/O entry point
(:meth:`SketchSession.save` / :meth:`SketchSession.open`, ``repro sketch
save/load``) address store state directly.
"""

from __future__ import annotations

import datetime as _datetime
import os
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.serialization import SerializationError, payload_header
from repro.store.errors import StoreError
from repro.store.schema import (
    DEFAULT_BUSY_TIMEOUT_MS,
    SCHEMA_VERSION,
    apply_connection_pragmas,
    initialize_schema,
    schema_version,
)
from repro.streaming.windows import decode_window_container, is_window_payload


def _utc_now() -> str:
    """The current UTC time in the store's ISO-8601 TEXT convention."""
    return _datetime.datetime.now(_datetime.timezone.utc).isoformat(
        timespec="seconds"
    )


@dataclass(frozen=True)
class CatalogEntry:
    """One row of the materialized listing: a name and its latest snapshot."""

    name: str
    kind: str
    windowed: bool
    latest_version: int
    snapshot_count: int
    total_bytes: int
    items_processed: int
    updated_at: str


@dataclass(frozen=True)
class SnapshotInfo:
    """The indexed metadata of one immutable snapshot row."""

    name: str
    version: int
    kind: str
    dimension: Optional[int]
    width: int
    depth: int
    seed: Optional[int]
    windowed: bool
    window_mode: Optional[str]
    pane_count: Optional[int]
    items_processed: int
    payload_bytes: int
    compacted: bool
    created_at: str


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`SketchStore.compact` call achieved."""

    snapshots_examined: int
    snapshots_compacted: int
    panes_folded: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after


def _summarize_payload(payload: bytes) -> Dict[str, Any]:
    """The indexed metadata columns, read from a payload's headers alone.

    Handles both payload families (bare ``RPSK`` sketch and ``RPWD`` window
    container) without materialising a sketch, so ``put`` of a multi-megabyte
    payload only JSON-parses two small headers.
    """
    if is_window_payload(payload):
        header, panes = decode_window_container(payload)
        # any pane carries the shared config; the open pane is always present
        pane_header = payload_header(panes[-1])
        config = pane_header.get("config", {})
        meta = header.get("meta", {})
        spec = header.get("spec", {})
        return {
            "kind": pane_header.get("kind", "?"),
            "dimension": config.get("dimension"),
            "width": int(config.get("width", 0)),
            "depth": int(config.get("depth", 0)),
            "seed": config.get("seed"),
            "windowed": 1,
            "window_mode": spec.get("mode"),
            "pane_count": len(panes),
            "items_processed": int(meta.get("items_total", 0)),
        }
    header = payload_header(payload)
    config = header.get("config", {})
    return {
        "kind": header.get("kind", "?"),
        "dimension": config.get("dimension"),
        "width": int(config.get("width", 0)),
        "depth": int(config.get("depth", 0)),
        "seed": config.get("seed"),
        "windowed": 0,
        "window_mode": None,
        "pane_count": None,
        "items_processed": int(header.get("meta", {}).get("items_processed", 0)),
    }


def _as_payload(item: Any, context: str) -> bytes:
    """Coerce a session / sketch / payload into wire bytes for storage."""
    if isinstance(item, (bytes, bytearray)):
        return bytes(item)
    to_bytes = getattr(item, "to_bytes", None)
    if callable(to_bytes):
        return to_bytes()
    raise StoreError(
        f"{context} must be a SketchSession, a sketch, or a wire payload "
        f"(bytes); got {type(item).__name__}"
    )


class SketchStore:
    """A named, versioned catalog of sketches in one SQLite file.

    >>> from repro.store import SketchStore
    >>> with SketchStore("catalog.db") as store:
    ...     version = store.put("traffic", session)    # append snapshot
    ...     again = store.get("traffic")               # latest
    ...     v1 = store.get("traffic", version=1)       # time travel
    ...     names = [entry.name for entry in store.list()]

    A store object owns one SQLite connection and is **not** shared across
    threads or processes — open one store per worker; WAL mode makes the
    concurrent access safe (readers never block the writer).
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
    ) -> None:
        self._path = Path(path)
        if self._path.is_dir():
            raise StoreError(f"store path {self._path} is a directory")
        parent = self._path.parent
        if parent and not parent.exists():
            raise StoreError(
                f"store directory {parent} does not exist; create it first"
            )
        try:
            self._connection = sqlite3.connect(
                os.fspath(self._path), timeout=busy_timeout_ms / 1000.0
            )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open store {self._path}: {exc}") from exc
        self._connection.row_factory = sqlite3.Row
        # transactions are explicit (BEGIN IMMEDIATE ... COMMIT) so reads
        # run in autocommit and writers take the write lock up front
        self._connection.isolation_level = None
        try:
            apply_connection_pragmas(self._connection, busy_timeout_ms)
            self._ensure_schema()
        except sqlite3.DatabaseError as exc:
            self._connection.close()
            raise StoreError(
                f"{self._path} is not a sketch store database: {exc}"
            ) from exc

    def _ensure_schema(self) -> None:
        has_tables = self._connection.execute(
            "SELECT COUNT(*) FROM sqlite_master WHERE type = 'table' "
            "AND name IN ('sketches', 'snapshots', 'listing')"
        ).fetchone()[0]
        recorded = schema_version(self._connection)
        if has_tables == 0:
            foreign_tables = self._connection.execute(
                "SELECT COUNT(*) FROM sqlite_master WHERE type = 'table' "
                "AND name NOT LIKE 'sqlite_%'"
            ).fetchone()[0]
            if foreign_tables != 0:
                raise StoreError(
                    f"{self._path} is not a sketch store: it has other "
                    "tables but not the store schema"
                )
            if recorded not in (0, SCHEMA_VERSION):
                raise StoreError(
                    f"{self._path} carries schema version {recorded} but no "
                    "store tables; refusing to overwrite a foreign database"
                )
            # a writer racing another writer to initialise the same fresh
            # file is resolved by the write lock; IF NOT EXISTS semantics
            # come from re-checking inside the transaction
            try:
                initialize_schema(self._connection)
            except sqlite3.OperationalError:
                if schema_version(self._connection) != SCHEMA_VERSION:
                    raise
            return
        if has_tables != 3:
            raise StoreError(
                f"{self._path} is not a sketch store: it has other tables "
                "but not the store schema"
            )
        if recorded != SCHEMA_VERSION:
            raise StoreError(
                f"store {self._path} has schema version {recorded}, but this "
                f"build reads schema version {SCHEMA_VERSION}; migrate the "
                "store (or re-create it) with a matching build"
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """The SQLite file backing this store."""
        return self._path

    def close(self) -> None:
        """Close the store's connection (idempotent)."""
        self._connection.close()

    def __enter__(self) -> "SketchStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SketchStore({os.fspath(self._path)!r})"

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not name:
            raise StoreError(
                f"sketch names must be non-empty strings, got {name!r}"
            )
        if "#" in name or "@" in name:
            raise StoreError(
                f"sketch name {name!r} may not contain '#' or '@' (they "
                "delimit the store:// URI grammar)"
            )
        return name

    def put(self, name: str, session: Any) -> int:
        """Append an immutable snapshot of ``session`` under ``name``.

        ``session`` is a :class:`~repro.api.SketchSession`, a bare sketch, a
        :class:`~repro.streaming.windows.SlidingWindowSketch`, or raw wire
        bytes; in every case the stored payload is exactly ``to_bytes()``,
        so restores are bit-identical.  Returns the snapshot's version
        (``1`` for a new name, previous latest + 1 otherwise).
        """
        return self.commit([(name, session)])[name]

    def commit(self, items: Any) -> Dict[str, int]:
        """Snapshot several sketches **atomically** (one transaction).

        ``items`` is a mapping ``{name: session}`` or an iterable of
        ``(name, session)`` pairs.  Either every sketch gains a snapshot or
        none does — a failure (bad name, unserializable session, catalog
        contention beyond the busy timeout) rolls the whole commit back.
        Returns ``{name: new_version}``.
        """
        if isinstance(items, dict):
            pairs = list(items.items())
        else:
            pairs = list(items)
        if not pairs:
            return {}
        staged: List[Tuple[str, bytes, Dict[str, Any]]] = []
        seen = set()
        for entry in pairs:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                raise StoreError(
                    "commit() takes {name: session} or (name, session) "
                    f"pairs; got {entry!r}"
                )
            name, session = entry
            self._check_name(name)
            if name in seen:
                raise StoreError(
                    f"commit() received {name!r} twice; one snapshot per "
                    "name per commit"
                )
            seen.add(name)
            payload = _as_payload(session, f"session for {name!r}")
            try:
                summary = _summarize_payload(payload)
            except SerializationError as exc:
                raise StoreError(
                    f"payload for {name!r} is not a valid sketch or window "
                    f"payload: {exc}"
                ) from exc
            staged.append((name, payload, summary))
        now = _utc_now()
        versions: Dict[str, int] = {}
        cursor = self._connection.cursor()
        try:
            cursor.execute("BEGIN IMMEDIATE")
            for name, payload, summary in staged:
                versions[name] = self._insert_snapshot(
                    cursor, name, payload, summary, now
                )
            cursor.execute("COMMIT")
        except BaseException:
            cursor.execute("ROLLBACK")
            raise
        return versions

    def _insert_snapshot(
        self,
        cursor: sqlite3.Cursor,
        name: str,
        payload: bytes,
        summary: Dict[str, Any],
        now: str,
    ) -> int:
        row = cursor.execute(
            "SELECT sketch_id FROM sketches WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            cursor.execute(
                "INSERT INTO sketches (name, created_at) VALUES (?, ?)",
                (name, now),
            )
            sketch_id = cursor.lastrowid
        else:
            sketch_id = row["sketch_id"]
        version = cursor.execute(
            "SELECT COALESCE(MAX(version), 0) + 1 FROM snapshots "
            "WHERE sketch_id = ?",
            (sketch_id,),
        ).fetchone()[0]
        cursor.execute(
            "INSERT INTO snapshots (sketch_id, version, kind, dimension, "
            "width, depth, seed, windowed, window_mode, pane_count, "
            "items_processed, payload_bytes, compacted, created_at, payload) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0, ?, ?)",
            (
                sketch_id,
                version,
                summary["kind"],
                summary["dimension"],
                summary["width"],
                summary["depth"],
                summary["seed"],
                summary["windowed"],
                summary["window_mode"],
                summary["pane_count"],
                summary["items_processed"],
                len(payload),
                now,
                sqlite3.Binary(payload),
            ),
        )
        self._refresh_listing(cursor, sketch_id, name, now)
        return int(version)

    def _refresh_listing(
        self, cursor: sqlite3.Cursor, sketch_id: int, name: str, now: str
    ) -> None:
        """Rematerialize one name's listing row from its snapshot rows."""
        stats = cursor.execute(
            "SELECT COUNT(*) AS snapshot_count, MAX(version) AS latest, "
            "SUM(payload_bytes) AS total_bytes FROM snapshots "
            "WHERE sketch_id = ?",
            (sketch_id,),
        ).fetchone()
        if not stats["snapshot_count"]:
            cursor.execute(
                "DELETE FROM listing WHERE sketch_id = ?", (sketch_id,)
            )
            cursor.execute(
                "DELETE FROM sketches WHERE sketch_id = ?", (sketch_id,)
            )
            return
        latest = cursor.execute(
            "SELECT kind, windowed, items_processed FROM snapshots "
            "WHERE sketch_id = ? AND version = ?",
            (sketch_id, stats["latest"]),
        ).fetchone()
        cursor.execute(
            "INSERT INTO listing (sketch_id, name, kind, windowed, "
            "latest_version, snapshot_count, total_bytes, items_processed, "
            "updated_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
            "ON CONFLICT (sketch_id) DO UPDATE SET "
            "kind = excluded.kind, windowed = excluded.windowed, "
            "latest_version = excluded.latest_version, "
            "snapshot_count = excluded.snapshot_count, "
            "total_bytes = excluded.total_bytes, "
            "items_processed = excluded.items_processed, "
            "updated_at = excluded.updated_at",
            (
                sketch_id,
                name,
                latest["kind"],
                latest["windowed"],
                stats["latest"],
                stats["snapshot_count"],
                stats["total_bytes"],
                latest["items_processed"],
                now,
            ),
        )

    def delete(self, name: str, version: Optional[int] = None) -> int:
        """Delete one snapshot (``version=...``) or a whole name.

        Returns the number of snapshots deleted; deleting the last snapshot
        of a name removes its catalog entry.  Unknown names (or versions)
        raise :class:`StoreError`.
        """
        self._check_name(name)
        cursor = self._connection.cursor()
        try:
            cursor.execute("BEGIN IMMEDIATE")
            sketch_id = self._sketch_id(cursor, name)
            if version is None:
                count = cursor.execute(
                    "SELECT COUNT(*) FROM snapshots WHERE sketch_id = ?",
                    (sketch_id,),
                ).fetchone()[0]
                cursor.execute(
                    "DELETE FROM sketches WHERE sketch_id = ?", (sketch_id,)
                )
            else:
                count = cursor.execute(
                    "DELETE FROM snapshots WHERE sketch_id = ? AND version = ?",
                    (sketch_id, int(version)),
                ).rowcount
                if not count:
                    raise StoreError(
                        f"sketch {name!r} has no version {version} in "
                        f"{self._path}"
                    )
                self._refresh_listing(cursor, sketch_id, name, _utc_now())
            cursor.execute("COMMIT")
        except BaseException:
            cursor.execute("ROLLBACK")
            raise
        return int(count)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def _sketch_id(self, cursor: sqlite3.Cursor, name: str) -> int:
        row = cursor.execute(
            "SELECT sketch_id FROM sketches WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            known = [entry.name for entry in self.list()]
            listing = ", ".join(known) if known else "(store is empty)"
            raise StoreError(
                f"no sketch named {name!r} in {self._path}; catalog: {listing}"
            )
        return int(row["sketch_id"])

    def get_payload(self, name: str, version: Optional[int] = None) -> bytes:
        """The verbatim wire payload of one snapshot (latest by default)."""
        self._check_name(name)
        cursor = self._connection.cursor()
        sketch_id = self._sketch_id(cursor, name)
        if version is None:
            row = cursor.execute(
                "SELECT payload FROM snapshots WHERE sketch_id = ? "
                "ORDER BY version DESC LIMIT 1",
                (sketch_id,),
            ).fetchone()
        else:
            row = cursor.execute(
                "SELECT payload FROM snapshots WHERE sketch_id = ? "
                "AND version = ?",
                (sketch_id, int(version)),
            ).fetchone()
        if row is None:
            raise StoreError(
                f"sketch {name!r} has no version {version} in {self._path}; "
                f"see history({name!r}) for the retained versions"
            )
        return bytes(row["payload"])

    def get(self, name: str, version: Optional[int] = None):
        """Restore a :class:`~repro.api.SketchSession` from one snapshot.

        ``version=None`` restores the latest snapshot; any retained version
        restores that exact state (``session.to_bytes()`` is bit-identical
        to what was ``put``, except for snapshots rewritten by
        :meth:`compact`, which preserve query answers rather than bytes).
        """
        from repro.api.session import SketchSession  # local: import cycle

        return SketchSession.from_bytes(self.get_payload(name, version))

    def list(self) -> List[CatalogEntry]:
        """Every catalog entry, by name, from the materialized listing."""
        rows = self._connection.execute(
            "SELECT name, kind, windowed, latest_version, snapshot_count, "
            "total_bytes, items_processed, updated_at FROM listing "
            "ORDER BY name"
        ).fetchall()
        return [
            CatalogEntry(
                name=row["name"],
                kind=row["kind"],
                windowed=bool(row["windowed"]),
                latest_version=int(row["latest_version"]),
                snapshot_count=int(row["snapshot_count"]),
                total_bytes=int(row["total_bytes"]),
                items_processed=int(row["items_processed"]),
                updated_at=row["updated_at"],
            )
            for row in rows
        ]

    def history(self, name: str) -> List[SnapshotInfo]:
        """Every retained snapshot of ``name``, oldest first."""
        self._check_name(name)
        cursor = self._connection.cursor()
        sketch_id = self._sketch_id(cursor, name)
        rows = cursor.execute(
            "SELECT version, kind, dimension, width, depth, seed, windowed, "
            "window_mode, pane_count, items_processed, payload_bytes, "
            "compacted, created_at FROM snapshots WHERE sketch_id = ? "
            "ORDER BY version",
            (sketch_id,),
        ).fetchall()
        return [
            SnapshotInfo(
                name=name,
                version=int(row["version"]),
                kind=row["kind"],
                dimension=row["dimension"],
                width=int(row["width"]),
                depth=int(row["depth"]),
                seed=row["seed"],
                windowed=bool(row["windowed"]),
                window_mode=row["window_mode"],
                pane_count=row["pane_count"],
                items_processed=int(row["items_processed"]),
                payload_bytes=int(row["payload_bytes"]),
                compacted=bool(row["compacted"]),
                created_at=row["created_at"],
            )
            for row in rows
        ]

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def compact(
        self,
        name: Optional[str] = None,
        *,
        keep_latest: bool = True,
        vacuum: bool = True,
    ) -> CompactionReport:
        """Fold the closed panes of retained windowed snapshots.

        A windowed ``put`` stores every live pane, so a history of ``v``
        saves of a ``k``-pane window costs O(``v × k``) pane payloads.
        Compaction rewrites each windowed snapshot to at most **two** panes
        — the closed panes merged into one, the open pane kept separate —
        which preserves every query answer exactly (the window view *is*
        the merge of the panes; linearity makes the grouping irrelevant)
        while dropping per-snapshot storage to O(live panes' counters).

        ``keep_latest`` (default) leaves each name's newest snapshot
        untouched, so ``get()`` + continued ingestion replays pane-for-pane
        like the original session; historical versions are archives whose
        eviction future is irrelevant.  ``name=None`` compacts the whole
        store.  ``vacuum`` reclaims the freed file space afterwards.

        Returns a :class:`CompactionReport`; snapshots that are unwindowed,
        already compacted, or hold a single closed pane are left untouched.
        """
        from repro.streaming.windows import SlidingWindowSketch

        cursor = self._connection.cursor()
        if name is not None:
            self._check_name(name)
            sketch_ids = [self._sketch_id(cursor, name)]
        else:
            sketch_ids = [
                int(row["sketch_id"])
                for row in cursor.execute(
                    "SELECT sketch_id FROM sketches ORDER BY sketch_id"
                ).fetchall()
            ]
        examined = compacted = folded = before = after = 0
        now = _utc_now()
        try:
            cursor.execute("BEGIN IMMEDIATE")
            for sketch_id in sketch_ids:
                row = cursor.execute(
                    "SELECT name, MAX(version) AS latest FROM sketches "
                    "JOIN snapshots USING (sketch_id) WHERE sketch_id = ?",
                    (sketch_id,),
                ).fetchone()
                latest = row["latest"]
                candidates = cursor.execute(
                    "SELECT snapshot_id, version, payload_bytes, payload "
                    "FROM snapshots WHERE sketch_id = ? AND windowed = 1 "
                    "AND compacted = 0 AND pane_count > 2 ORDER BY version",
                    (sketch_id,),
                ).fetchall()
                touched = False
                for candidate in candidates:
                    if keep_latest and candidate["version"] == latest:
                        continue
                    examined += 1
                    window = SlidingWindowSketch.from_bytes(
                        bytes(candidate["payload"])
                    )
                    panes_before = window.pane_count
                    if window.fold_closed_panes() == 0:
                        continue
                    payload = window.to_bytes()
                    compacted += 1
                    folded += panes_before - window.pane_count
                    before += int(candidate["payload_bytes"])
                    after += len(payload)
                    cursor.execute(
                        "UPDATE snapshots SET payload = ?, payload_bytes = ?, "
                        "pane_count = ?, compacted = 1 WHERE snapshot_id = ?",
                        (
                            sqlite3.Binary(payload),
                            len(payload),
                            window.pane_count,
                            candidate["snapshot_id"],
                        ),
                    )
                    touched = True
                if touched:
                    self._refresh_listing(cursor, sketch_id, row["name"], now)
            cursor.execute("COMMIT")
        except BaseException:
            cursor.execute("ROLLBACK")
            raise
        if compacted and vacuum:
            self._connection.execute("VACUUM")
        return CompactionReport(
            snapshots_examined=examined,
            snapshots_compacted=compacted,
            panes_folded=folded,
            bytes_before=before,
            bytes_after=after,
        )
