"""The ``store://`` URI grammar.

A store URI names one sketch (optionally one version) inside one catalog
file, so every I/O entry point that accepts a path can address durable,
versioned state with a plain string::

    store://PATH#NAME[@VERSION]

* ``PATH`` — the SQLite catalog file, relative or absolute
  (``store://cat.db#...``, ``store:///var/lib/repro/cat.db#...``);
* ``NAME`` — the sketch's catalog name: any non-empty string without
  ``#`` or ``@``;
* ``VERSION`` — an optional positive snapshot version; omitted means the
  latest snapshot.

Examples::

    store://catalog.db#traffic          latest snapshot of "traffic"
    store://catalog.db#traffic@3        version 3 exactly
    store:///abs/path/cat.db#edges      absolute catalog path

Malformed URIs raise :class:`~repro.store.errors.StoreError` with a message
naming the offending part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.store.errors import StoreError

#: the scheme prefix every store URI starts with
STORE_URI_PREFIX = "store://"


def is_store_uri(value: Any) -> bool:
    """Whether ``value`` is a string in the ``store://`` scheme."""
    return isinstance(value, str) and value.startswith(STORE_URI_PREFIX)


@dataclass(frozen=True)
class StoreURI:
    """A parsed ``store://PATH#NAME[@VERSION]`` reference."""

    path: str
    name: str
    version: Optional[int] = None

    def __str__(self) -> str:
        return format_store_uri(self.path, self.name, self.version)


def format_store_uri(path: Any, name: str, version: Optional[int] = None) -> str:
    """Render a canonical ``store://`` URI for ``name`` in the catalog ``path``."""
    suffix = "" if version is None else f"@{version}"
    return f"{STORE_URI_PREFIX}{path}#{name}{suffix}"


def parse_store_uri(uri: str) -> StoreURI:
    """Parse a ``store://PATH#NAME[@VERSION]`` string.

    Raises :class:`StoreError` naming the malformed part; the CLI surfaces
    it as its usual one-line ``error: ...`` with exit status 2.
    """
    if not is_store_uri(uri):
        raise StoreError(
            f"not a store URI: {uri!r} (expected "
            f"{STORE_URI_PREFIX}PATH#NAME[@VERSION])"
        )
    rest = uri[len(STORE_URI_PREFIX):]
    path, separator, fragment = rest.partition("#")
    if not separator or not fragment:
        raise StoreError(
            f"store URI {uri!r} is missing the '#NAME' fragment naming the "
            "sketch (e.g. store://catalog.db#traffic)"
        )
    if not path:
        raise StoreError(
            f"store URI {uri!r} is missing the catalog path between "
            "'store://' and '#'"
        )
    name, at, version_text = fragment.partition("@")
    if not name:
        raise StoreError(
            f"store URI {uri!r} carries an empty sketch name"
        )
    if "#" in fragment:
        raise StoreError(
            f"store URI {uri!r} carries more than one '#'; the grammar is "
            f"{STORE_URI_PREFIX}PATH#NAME[@VERSION]"
        )
    version: Optional[int] = None
    if at:
        try:
            version = int(version_text)
        except ValueError:
            raise StoreError(
                f"store URI {uri!r} carries a non-integer version "
                f"{version_text!r}"
            ) from None
        if version < 1:
            raise StoreError(
                f"store URI {uri!r} carries version {version}; snapshot "
                "versions start at 1"
            )
    return StoreURI(path=path, name=name, version=version)
