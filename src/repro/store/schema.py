"""SQLite schema and connection discipline for the sketch store.

One store is one SQLite file.  The connection settings follow the
write-ahead-logging discipline for single-writer / many-reader workloads:

========================  =========  =================================================
pragma                    value      purpose
========================  =========  =================================================
``journal_mode``          WAL        readers never block the writer (and vice versa)
``synchronous``           NORMAL     fsync at checkpoints only; safe under WAL
``foreign_keys``          ON         snapshot rows die with their catalog entry
``busy_timeout``          30 000 ms  writers wait out short lock windows, not error
``user_version``          schema     loud failure on schema drift (see below)
========================  =========  =================================================

Timestamps are stored as ``TEXT`` in UTC ISO-8601; booleans as ``INTEGER``
0/1.  The schema version lives in SQLite's ``user_version`` pragma: opening
a store written by a build with a different schema raises
:class:`~repro.store.errors.StoreError` instead of misreading rows.  A
golden dump of the DDL is pinned under ``tests/data/golden_store/`` so any
drift fails loudly in CI.

Tables
------
``sketches``
    The catalog: one row per *name*.  Owns its snapshots.
``snapshots``
    Append-only versioned history: one row per :meth:`SketchStore.put`,
    carrying the wire payload (``RPSK`` sketch or ``RPWD`` window container)
    plus the indexed metadata that lets listings and history answer without
    decoding payloads.
``listing``
    The materialized catalog view :meth:`SketchStore.list` reads: one row
    per name with the latest-version metadata and aggregate sizes,
    maintained transactionally by every put/delete/compact.
"""

from __future__ import annotations

import sqlite3

#: bumped whenever the DDL below changes shape
SCHEMA_VERSION = 1

#: how long a connection waits on a locked database before failing (ms)
DEFAULT_BUSY_TIMEOUT_MS = 30_000

#: the store's DDL, executed once per fresh database (also the golden text
#: the schema-drift test pins)
SCHEMA_DDL = """\
CREATE TABLE sketches (
    sketch_id  INTEGER PRIMARY KEY,
    name       TEXT NOT NULL UNIQUE,
    created_at TEXT NOT NULL
);

CREATE TABLE snapshots (
    snapshot_id     INTEGER PRIMARY KEY,
    sketch_id       INTEGER NOT NULL
                    REFERENCES sketches(sketch_id) ON DELETE CASCADE,
    version         INTEGER NOT NULL,
    kind            TEXT NOT NULL,
    dimension       INTEGER,
    width           INTEGER NOT NULL,
    depth           INTEGER NOT NULL,
    seed            INTEGER,
    windowed        INTEGER NOT NULL DEFAULT 0,
    window_mode     TEXT,
    pane_count      INTEGER,
    items_processed INTEGER NOT NULL,
    payload_bytes   INTEGER NOT NULL,
    compacted       INTEGER NOT NULL DEFAULT 0,
    created_at      TEXT NOT NULL,
    payload         BLOB NOT NULL,
    UNIQUE (sketch_id, version)
);

CREATE TABLE listing (
    sketch_id       INTEGER PRIMARY KEY
                    REFERENCES sketches(sketch_id) ON DELETE CASCADE,
    name            TEXT NOT NULL UNIQUE,
    kind            TEXT NOT NULL,
    windowed        INTEGER NOT NULL,
    latest_version  INTEGER NOT NULL,
    snapshot_count  INTEGER NOT NULL,
    total_bytes     INTEGER NOT NULL,
    items_processed INTEGER NOT NULL,
    updated_at      TEXT NOT NULL
);
"""


def apply_connection_pragmas(
    connection: sqlite3.Connection,
    busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
) -> None:
    """Apply the per-connection settings every store connection runs under."""
    connection.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
    connection.execute("PRAGMA foreign_keys = ON")
    connection.execute("PRAGMA journal_mode = WAL")
    connection.execute("PRAGMA synchronous = NORMAL")


def initialize_schema(connection: sqlite3.Connection) -> None:
    """Create the store schema in a fresh database (one transaction)."""
    with connection:
        connection.executescript(SCHEMA_DDL)
        connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")


def schema_version(connection: sqlite3.Connection) -> int:
    """The schema version recorded in the database's ``user_version`` pragma."""
    return int(connection.execute("PRAGMA user_version").fetchone()[0])


def schema_dump(connection: sqlite3.Connection) -> str:
    """The normalized DDL of every table in the database, sorted by name.

    This is the string the golden schema-drift test compares against; it is
    exactly what SQLite preserved from :data:`SCHEMA_DDL`, so whitespace
    differences inside the authored DDL show up too.
    """
    rows = connection.execute(
        "SELECT sql FROM sqlite_master "
        "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' ORDER BY name"
    ).fetchall()
    return "\n\n".join(f"{row[0]};" for row in rows) + "\n"
