"""Debiased Count-Min (Deng & Rafiei 2007), the related-work comparator of [14].

Section 2 of the paper describes the earlier attempt by Deng and Rafiei to
remove bias from Count-Min: when recovering a coordinate mapped to a bucket,
estimate the "background" contribution of that bucket as the average mass of
the *other* buckets in the same row, and subtract it.  Concretely, for row
``r`` and queried coordinate ``j`` hashed to bucket ``b = h_r(j)``,

    estimate_r(j) = counter[r, b] - (‖x‖_1 - counter[r, b]) / (s - 1) · (π[r, b] - 1) / π̄

is the classical "CM with noise subtraction" estimator; the common simplified
form (and the one implemented here, following the description in the paper's
related-work section) subtracts the per-item average of the remaining mass:

    estimate_r(j) = counter[r, b] - (‖x‖_1 - counter[r, b]) / (n - π[r, b]) · (π[r, b] - 1)

i.e. the expected contribution of the π[r, b] - 1 colliding coordinates if
they behaved like an average coordinate outside the bucket.  The row
estimates are combined by the median (the estimator is no longer an upper
bound, so the min rule loses its meaning).

As the paper notes, this bias estimate is "too rough to be useful" beyond
bringing CM roughly to Count-Sketch quality — which is exactly what the
ablation benchmark shows.  It is included as an additional baseline so that
claim can be checked; it is linear (the correction is a linear function of
the counters and ``‖x‖_1``, which is itself maintained linearly).
"""

from __future__ import annotations

import numpy as np

from repro.serialization import register_serializable
from repro.sketches._tables import HashedCounterTable
from repro.sketches.base import LinearSketch
from repro.utils.rng import RandomSource


class DebiasedCountMin(LinearSketch):
    """Count-Min with the Deng-Rafiei per-bucket background subtraction."""

    name = "debiased_count_min"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        seed: RandomSource = None,
    ) -> None:
        if dimension is None:
            raise ValueError(
                "DebiasedCountMin requires a bounded dimension: its "
                "background subtraction divides by the number of coordinates "
                "outside each bucket"
            )
        super().__init__(dimension, width, depth, seed=seed)
        self._table = HashedCounterTable(
            dimension, width, depth, signed=False, seed=seed
        )
        self._total_mass = 0.0

    @property
    def _pi(self) -> np.ndarray:
        return self._table.cached_column_sums()

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        delta = float(delta)
        self._table.add_update(index, delta)
        self._total_mass += delta
        self._items_processed += 1

    def update_batch(self, indices, deltas=None) -> "DebiasedCountMin":
        """Vectorised batch ingestion: scatter-add plus the running ‖x‖₁."""
        idx, d = self._check_batch(indices, deltas)
        self._table.add_batch(idx, d)
        self._total_mass += float(np.sum(d))
        self._items_processed += idx.size
        return self

    def fit(self, x) -> "DebiasedCountMin":
        arr = self._check_vector(x)
        self._table.add_vector(arr)
        self._total_mass += float(np.sum(arr))
        self._items_processed += int(np.count_nonzero(arr))
        return self

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def query(self, index: int) -> float:
        index = self._check_index(index)
        rows = np.arange(self.depth)
        buckets = self._table.bucket_column(index)
        counters = self._table.table[rows, buckets]
        bucket_sizes = self._pi[rows, buckets]
        outside_mass = self._total_mass - counters
        outside_items = np.maximum(self.dimension - bucket_sizes, 1.0)
        background = outside_mass / outside_items * (bucket_sizes - 1.0)
        return float(np.median(counters - background))

    def query_batch(self, indices) -> np.ndarray:
        idx, _ = self._check_batch(indices, None)
        cols = self._table.bucket_columns(idx)
        counters = np.take_along_axis(self._table.table, cols, axis=1)
        bucket_sizes = np.take_along_axis(self._pi, cols, axis=1)
        outside_mass = self._total_mass - counters
        outside_items = np.maximum(self.dimension - bucket_sizes, 1.0)
        background = outside_mass / outside_items * (bucket_sizes - 1.0)
        return np.median(counters - background, axis=0)

    # ------------------------------------------------------------------ #
    # linearity
    # ------------------------------------------------------------------ #
    def merge(self, other: "DebiasedCountMin") -> "DebiasedCountMin":
        self._check_compatible(other)
        self._table.merge_from(other._table)
        self._total_mass += other._total_mass
        self._items_processed += other._items_processed
        return self

    def scale(self, factor: float) -> "DebiasedCountMin":
        factor = float(factor)
        self._table.scale_by(factor)
        self._total_mass *= factor
        return self

    def size_in_words(self) -> int:
        # the counters plus the single running total ‖x‖_1
        return self._table.counter_count + 1

    def _state_arrays(self):
        return {"table": self._table.table}

    def _state_scalars(self):
        return {"total_mass": float(self._total_mass)}

    def bind_state_buffers(self, buffers) -> None:
        self._table.bind_buffer(buffers["table"])

    def _fold_scalars(self, scalars) -> None:
        self._total_mass += float(scalars["total_mass"])

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        self._table.load_table(arrays["table"])
        self._total_mass = float(scalars["total_mass"])

    @property
    def table(self) -> np.ndarray:
        """The raw ``(depth, width)`` counter table (for inspection)."""
        return self._table.table

    @property
    def total_mass(self) -> float:
        """The maintained ``‖x‖_1`` (for non-negative inputs)."""
        return self._total_mass


register_serializable(DebiasedCountMin)
