"""Classical frequency sketches used as baselines in the paper's evaluation.

* :class:`CountMin` — Count-Min [Cormode & Muthukrishnan 2005]
* :class:`CountMedian` — Count-Median [Cormode & Muthukrishnan 2005], the
  ℓ∞/ℓ1 baseline (Theorem 1 of the paper)
* :class:`CountSketch` — Count-Sketch [Charikar, Chen & Farach-Colton 2002],
  the ℓ∞/ℓ2 baseline (Theorem 2 of the paper)
* :class:`CountMinCU` — Count-Min with conservative update (CM-CU)
* :class:`CountMinLogCU` — Count-Min-Log with conservative update (CML-CU)

All of them share the :class:`Sketch` interface; the linear ones additionally
implement :class:`LinearSketch` (mergeable, scalable), which is what the
distributed substrate relies on.  CM-CU and CML-CU deliberately do *not*
implement ``merge`` — the paper's point is exactly that conservative-update
sketches are not linear and cannot be composed in the distributed model.
"""

from repro.sketches.base import LinearSketch, Sketch
from repro.sketches.count_median import CountMedian
from repro.sketches.count_min import CountMin
from repro.sketches.count_sketch import CountSketch
from repro.sketches.conservative import CountMinCU
from repro.sketches.count_min_log import CountMinLogCU
from repro.sketches.debiased_count_min import DebiasedCountMin
from repro.sketches.registry import (
    SketchSpec,
    available_sketches,
    make_sketch,
    paper_reference_suite,
)

__all__ = [
    "Sketch",
    "LinearSketch",
    "CountMin",
    "CountMedian",
    "CountSketch",
    "CountMinCU",
    "CountMinLogCU",
    "DebiasedCountMin",
    "SketchSpec",
    "available_sketches",
    "make_sketch",
    "paper_reference_suite",
]
