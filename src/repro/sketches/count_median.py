"""Count-Median sketch (Cormode & Muthukrishnan; Theorem 1 of the paper).

Count-Median keeps ``d`` rows of ``s`` unsigned bucket sums and estimates a
coordinate by the **median** of its bucket sums across rows.  With
``s = Θ(k/α)`` and ``d = Θ(log n)`` it guarantees, with probability 1 - 1/n,

    ‖x̂ - x‖∞ ≤ α/k · Err_1^k(x)

which is the ℓ∞/ℓ1 guarantee the ℓ1 bias-aware sketch strictly improves on.
Unlike Count-Min it handles negative coordinates and deletions (turnstile
streams).
"""

from __future__ import annotations

import numpy as np

from repro.serialization import register_serializable
from repro.sketches._tables import HashedCounterTable
from repro.sketches.base import LinearSketch
from repro.utils.rng import RandomSource


class CountMedian(LinearSketch):
    """The Count-Median linear sketch with median-of-rows estimation."""

    name = "count_median"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        seed: RandomSource = None,
    ) -> None:
        super().__init__(dimension, width, depth, seed=seed)
        self._table = HashedCounterTable(
            dimension, width, depth, signed=False, seed=seed
        )

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        self._table.add_update(index, float(delta))
        self._items_processed += 1

    def update_batch(self, indices, deltas=None) -> "CountMedian":
        """Vectorised batch ingestion: one scatter-add per chunk."""
        idx, d = self._check_batch(indices, deltas)
        self._table.add_batch(idx, d)
        self._items_processed += idx.size
        return self

    def fit(self, x) -> "CountMedian":
        arr = self._check_vector(x)
        self._table.add_vector(arr)
        self._items_processed += int(np.count_nonzero(arr))
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, index: int) -> float:
        index = self._check_index(index)
        return float(np.median(self._table.row_estimates(index)))

    def query_batch(self, indices) -> np.ndarray:
        idx, _ = self._check_batch(indices, None)
        return np.median(self._table.row_estimates_batch(idx), axis=0)

    # ------------------------------------------------------------------ #
    # linearity
    # ------------------------------------------------------------------ #
    def merge(self, other: "CountMedian") -> "CountMedian":
        self._check_compatible(other)
        self._table.merge_from(other._table)
        self._items_processed += other._items_processed
        return self

    def scale(self, factor: float) -> "CountMedian":
        self._table.scale_by(float(factor))
        return self

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def size_in_words(self) -> int:
        return self._table.counter_count

    def _state_arrays(self):
        return {"table": self._table.table}

    def bind_state_buffers(self, buffers) -> None:
        self._table.bind_buffer(buffers["table"])

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        self._table.load_table(arrays["table"])

    @property
    def table(self) -> np.ndarray:
        """The raw ``(depth, width)`` counter table (read-mostly; for inspection)."""
        return self._table.table

    def bucket_column_sums(self) -> np.ndarray:
        """Per-row π vectors (how many coordinates hash to each bucket)."""
        return self._table.column_sums().copy()


register_serializable(CountMedian)
