"""Count-Min sketch (Cormode & Muthukrishnan 2005).

Count-Min shares the Count-Median sketching matrix (unsigned bucket sums) but
estimates a coordinate by the **minimum** across rows.  For non-negative
vectors this never under-estimates and guarantees, with ``s = Θ(k/α)`` and
``d = Θ(log n)``,

    x_i ≤ x̂_i ≤ x_i + α/k · Err_1^k(x)    with probability 1 - 1/n.

The paper does not plot plain Count-Min (it is dominated by CM-CU) but it is
included here because CM-CU and CML-CU build on it and because it is the most
widely deployed member of the family.
"""

from __future__ import annotations

import numpy as np

from repro.serialization import register_serializable
from repro.sketches._tables import HashedCounterTable
from repro.sketches.base import LinearSketch
from repro.utils.rng import RandomSource


class CountMin(LinearSketch):
    """The Count-Min linear sketch with min-of-rows estimation."""

    name = "count_min"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        seed: RandomSource = None,
    ) -> None:
        super().__init__(dimension, width, depth, seed=seed)
        self._table = HashedCounterTable(
            dimension, width, depth, signed=False, seed=seed
        )

    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        self._table.add_update(index, float(delta))
        self._items_processed += 1

    def update_batch(self, indices, deltas=None) -> "CountMin":
        """Vectorised batch ingestion: one scatter-add per chunk."""
        idx, d = self._check_batch(indices, deltas)
        self._table.add_batch(idx, d)
        self._items_processed += idx.size
        return self

    def fit(self, x) -> "CountMin":
        arr = self._check_vector(x)
        if np.any(arr < 0):
            raise ValueError(
                "Count-Min requires a non-negative frequency vector; "
                "use CountMedian or CountSketch for signed data"
            )
        self._table.add_vector(arr)
        self._items_processed += int(np.count_nonzero(arr))
        return self

    def query(self, index: int) -> float:
        index = self._check_index(index)
        return float(np.min(self._table.row_estimates(index)))

    def query_batch(self, indices) -> np.ndarray:
        idx, _ = self._check_batch(indices, None)
        return np.min(self._table.row_estimates_batch(idx), axis=0)

    def merge(self, other: "CountMin") -> "CountMin":
        self._check_compatible(other)
        self._table.merge_from(other._table)
        self._items_processed += other._items_processed
        return self

    def scale(self, factor: float) -> "CountMin":
        if factor < 0:
            raise ValueError("Count-Min state cannot be scaled by a negative factor")
        self._table.scale_by(float(factor))
        return self

    def size_in_words(self) -> int:
        return self._table.counter_count

    def _state_arrays(self):
        return {"table": self._table.table}

    def bind_state_buffers(self, buffers) -> None:
        self._table.bind_buffer(buffers["table"])

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        self._table.load_table(arrays["table"])

    @property
    def table(self) -> np.ndarray:
        """The raw ``(depth, width)`` counter table (for inspection)."""
        return self._table.table


register_serializable(CountMin)
