"""Registry of sketch constructors keyed by short algorithm name.

The evaluation harness (:mod:`repro.eval.harness`) compares many algorithms at
the same ``(width, depth)`` budget; the registry gives it a uniform way to
build any of them from its short name.  Baseline sketches register themselves
here; the bias-aware sketches in :mod:`repro.core` register themselves when
that package is imported (which :func:`paper_reference_suite` guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.sketches.base import Sketch
from repro.sketches.conservative import CountMinCU
from repro.sketches.count_median import CountMedian
from repro.sketches.count_min import CountMin
from repro.sketches.count_min_log import CountMinLogCU
from repro.sketches.count_sketch import CountSketch
from repro.sketches.debiased_count_min import DebiasedCountMin
from repro.utils.rng import RandomSource

#: factory signature: (dimension, width, depth, seed) -> Sketch
SketchFactory = Callable[[int, int, int, RandomSource], Sketch]


@dataclass(frozen=True)
class SketchSpec:
    """Metadata describing a registered sketch algorithm."""

    #: short name used in result tables (e.g. ``"l2_sr"``)
    name: str
    #: human-readable label matching the paper's figure legends (e.g. ``"ℓ2-S/R"``)
    label: str
    #: whether the sketch is linear (mergeable in the distributed model)
    linear: bool
    #: whether the sketch is one of the paper's contributions (vs a baseline)
    bias_aware: bool
    #: the constructor
    factory: SketchFactory


_REGISTRY: Dict[str, SketchSpec] = {}


def register_sketch(
    name: str,
    label: str,
    factory: SketchFactory,
    linear: bool,
    bias_aware: bool = False,
    overwrite: bool = False,
) -> SketchSpec:
    """Register a sketch constructor under ``name`` and return its spec."""
    if not name:
        raise ValueError("sketch name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"sketch {name!r} is already registered")
    spec = SketchSpec(
        name=name,
        label=label,
        linear=linear,
        bias_aware=bias_aware,
        factory=factory,
    )
    _REGISTRY[name] = spec
    return spec


def available_sketches(include_bias_aware: bool = True) -> List[str]:
    """Return the names of all registered sketches (baselines first)."""
    _ensure_core_registered()
    names = sorted(
        _REGISTRY,
        key=lambda name: (_REGISTRY[name].bias_aware, name),
    )
    if include_bias_aware:
        return names
    return [name for name in names if not _REGISTRY[name].bias_aware]


def get_spec(name: str) -> SketchSpec:
    """Look up the spec of a registered sketch, raising ``KeyError`` if unknown."""
    _ensure_core_registered()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown sketch {name!r}; available: {known}")
    return _REGISTRY[name]


def make_sketch(
    name: str,
    dimension: int,
    width: int,
    depth: int,
    seed: RandomSource = None,
) -> Sketch:
    """Construct the sketch registered under ``name``."""
    spec = get_spec(name)
    return spec.factory(dimension, width, depth, seed)


def paper_reference_suite() -> List[str]:
    """The six algorithms compared throughout Section 5 of the paper.

    Order matches the figure legends: the two bias-aware sketches first, then
    Count-Sketch, Count-Median, CM-CU and CML-CU.
    """
    _ensure_core_registered()
    return [
        "l1_sr",
        "l2_sr",
        "count_sketch",
        "count_median",
        "count_min_cu",
        "count_min_log_cu",
    ]


def mean_heuristic_suite() -> List[str]:
    """The algorithms of the mean-heuristic comparison (Figures 8 and 9)."""
    _ensure_core_registered()
    return ["l1_sr", "l2_sr", "l1_mean", "l2_mean"]


def _ensure_core_registered() -> None:
    """Import :mod:`repro.core` so the bias-aware sketches are registered."""
    import repro.core  # noqa: F401  (import for its registration side effect)


# --------------------------------------------------------------------------- #
# baseline registrations
# --------------------------------------------------------------------------- #
register_sketch(
    "count_min",
    "CM (plain Count-Min)",
    lambda n, s, d, seed: CountMin(n, s, d, seed=seed),
    linear=True,
)
register_sketch(
    "count_median",
    "CM (Count-Median)",
    lambda n, s, d, seed: CountMedian(n, s, d, seed=seed),
    linear=True,
)
register_sketch(
    "count_sketch",
    "CS (Count-Sketch)",
    lambda n, s, d, seed: CountSketch(n, s, d, seed=seed),
    linear=True,
)
register_sketch(
    "count_min_cu",
    "CM-CU (conservative update)",
    lambda n, s, d, seed: CountMinCU(n, s, d, seed=seed),
    linear=False,
)
register_sketch(
    "count_min_log_cu",
    "CML-CU (Count-Min-Log, conservative update)",
    lambda n, s, d, seed: CountMinLogCU(n, s, d, seed=seed),
    linear=False,
)
register_sketch(
    "debiased_count_min",
    "Debiased Count-Min (Deng & Rafiei)",
    lambda n, s, d, seed: DebiasedCountMin(n, s, d, seed=seed),
    linear=True,
)
