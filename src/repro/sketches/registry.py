"""Registry of sketch algorithms with capability metadata.

Every algorithm in the library registers a :class:`SketchSpec` here.  A spec
is more than a constructor: it declares the algorithm's *capabilities* —
linearity (mergeable in the distributed model), streaming support, the query
kinds it can answer, and the schema of its algorithm-specific keyword
arguments — so the :mod:`repro.api` facade can validate a declarative
:class:`~repro.api.SketchConfig` up front and reject unsupported operations
with a clear error instead of failing deep inside numpy.

Baseline sketches register themselves at import time; the bias-aware sketches
in :mod:`repro.core` register themselves when that package is imported (which
every lookup guarantees via :func:`_ensure_core_registered`).

All listing functions return deterministically ordered names so CLI output
and docs are stable across interpreter runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from repro.sketches.base import Sketch
from repro.sketches.conservative import CountMinCU
from repro.sketches.count_median import CountMedian
from repro.sketches.count_min import CountMin
from repro.sketches.count_min_log import CountMinLogCU
from repro.sketches.count_sketch import CountSketch
from repro.sketches.debiased_count_min import DebiasedCountMin
from repro.utils.deprecation import deprecated_entry_point
from repro.utils.rng import RandomSource

#: factory signature: (dimension, width, depth, seed, **algorithm_kwargs) -> Sketch
SketchFactory = Callable[..., Sketch]

#: the query kinds :meth:`repro.api.SketchSession.query` can dispatch
QUERY_KINDS: Tuple[str, ...] = ("point", "heavy_hitters", "range", "inner_product")

#: default capability set: every recovery-based sketch answers all four kinds
ALL_QUERY_KINDS: FrozenSet[str] = frozenset(QUERY_KINDS)


@dataclass(frozen=True)
class SketchSpec:
    """Metadata describing a registered sketch algorithm.

    Besides the constructor, a spec records the capability surface the
    :mod:`repro.api` facade dispatches on:

    * ``linear`` — mergeable/scalable; required for distributed aggregation
      and sharded ingestion;
    * ``exact_batch`` — batched ingestion (``update_batch``/``fit``)
      reproduces scalar replay exactly (bit-identical for integer deltas).
      Every linear sketch is exact-batchable; the conservative-update kinds
      are exact-batchable *without* being linear (segmented CU batching
      preserves stream order), which is what lets tumbling-mode windows —
      whose panes are independent and never merge — accept them;
    * ``streaming`` — supports one-update-at-a-time ingestion (``update``);
    * ``unbounded`` — supports hashed-key mode (``dimension=None``): the
      algorithm needs no O(n) data-independent structure, so arbitrary
      64-bit keys can be sketched in O(depth × width) memory;
    * ``queries`` — the :data:`QUERY_KINDS` subset the sketch can answer;
    * ``kwargs_schema`` — name → type of the algorithm-specific keyword
      arguments its factory accepts (e.g. ``head_size`` for ℓ2-S/R).
    """

    #: short name used in result tables (e.g. ``"l2_sr"``)
    name: str
    #: human-readable label matching the paper's figure legends (e.g. ``"ℓ2-S/R"``)
    label: str
    #: the constructor, called as ``factory(dimension, width, depth, seed, **kwargs)``
    factory: SketchFactory
    #: whether the sketch is linear (mergeable in the distributed model)
    linear: bool
    #: whether batched ingestion reproduces scalar replay exactly; true for
    #: every linear sketch and for the segmented conservative-update kinds
    exact_batch: bool = False
    #: whether the sketch is one of the paper's contributions (vs a baseline)
    bias_aware: bool = False
    #: whether the sketch supports single-update streaming ingestion
    streaming: bool = True
    #: whether the sketch supports hashed-key mode (``dimension=None``)
    unbounded: bool = False
    #: the query kinds the sketch can answer (subset of :data:`QUERY_KINDS`)
    queries: FrozenSet[str] = ALL_QUERY_KINDS
    #: algorithm-specific keyword arguments: name -> expected type
    kwargs_schema: Mapping[str, type] = field(default_factory=dict)

    def supports_query(self, kind: str) -> bool:
        """Whether the sketch can answer queries of ``kind``."""
        return kind in self.queries

    def supported_queries(self) -> List[str]:
        """The supported query kinds, in canonical dispatch order."""
        return [kind for kind in QUERY_KINDS if kind in self.queries]

    def validate_kwargs(self, kwargs: Mapping[str, Any]) -> Dict[str, Any]:
        """Check algorithm-specific kwargs against the schema and return them.

        Unknown names and mis-typed values raise ``ValueError``/``TypeError``
        naming the offending argument and the accepted schema, so a bad
        :class:`~repro.api.SketchConfig` fails at construction time.
        """
        validated: Dict[str, Any] = {}
        for key, value in kwargs.items():
            if key not in self.kwargs_schema:
                accepted = ", ".join(sorted(self.kwargs_schema)) or "none"
                raise ValueError(
                    f"sketch {self.name!r} does not accept the keyword "
                    f"argument {key!r}; accepted algorithm-specific "
                    f"arguments: {accepted}"
                )
            expected = self.kwargs_schema[key]
            if value is None:
                validated[key] = None
                continue
            # numpy scalars are first-class citizens in this library: coerce
            # them (and plain ints offered for floats) to the schema type
            if expected is int and isinstance(value, np.integer):
                value = int(value)
            if expected is float and isinstance(value, (np.integer, np.floating)):
                value = float(value)
            if expected is float and isinstance(value, int) and not isinstance(value, bool):
                value = float(value)
            wrong_type = not isinstance(value, expected)
            bool_masquerading = isinstance(value, bool) and expected is not bool
            if wrong_type or bool_masquerading:
                raise TypeError(
                    f"sketch {self.name!r} expects {key!r} to be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
            validated[key] = value
        return validated

    def build(
        self,
        dimension: int,
        width: int,
        depth: int,
        seed: RandomSource = None,
        **kwargs: Any,
    ) -> Sketch:
        """Construct the sketch, validating algorithm-specific kwargs."""
        options = self.validate_kwargs(kwargs)
        return self.factory(dimension, width, depth, seed, **options)

    def describe(self) -> Dict[str, Any]:
        """A plain-dict summary of the spec (used by CLI listings and docs)."""
        return {
            "name": self.name,
            "label": self.label,
            "linear": self.linear,
            "exact_batch": self.exact_batch,
            "bias_aware": self.bias_aware,
            "streaming": self.streaming,
            "unbounded": self.unbounded,
            "queries": self.supported_queries(),
            "kwargs": {key: t.__name__ for key, t in sorted(self.kwargs_schema.items())},
        }


_REGISTRY: Dict[str, SketchSpec] = {}


def register_sketch(
    name: str,
    label: str,
    factory: SketchFactory,
    linear: bool,
    exact_batch: Optional[bool] = None,
    bias_aware: bool = False,
    streaming: bool = True,
    unbounded: bool = False,
    queries: Optional[FrozenSet[str]] = None,
    kwargs_schema: Optional[Mapping[str, type]] = None,
    overwrite: bool = False,
) -> SketchSpec:
    """Register a sketch constructor under ``name`` and return its spec.

    ``exact_batch`` defaults to ``linear``: a linear sketch's batched
    ingestion is a scatter-add and trivially reproduces scalar replay.
    Non-linear kinds whose ``update_batch`` preserves stream order exactly
    (the segmented conservative-update kinds) pass ``exact_batch=True``
    explicitly.
    """
    if not name:
        raise ValueError("sketch name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"sketch {name!r} is already registered")
    queries = ALL_QUERY_KINDS if queries is None else frozenset(queries)
    unknown = queries - ALL_QUERY_KINDS
    if unknown:
        raise ValueError(
            f"unknown query kinds {sorted(unknown)}; known kinds: "
            f"{list(QUERY_KINDS)}"
        )
    spec = SketchSpec(
        name=name,
        label=label,
        factory=factory,
        linear=linear,
        exact_batch=linear if exact_batch is None else exact_batch,
        bias_aware=bias_aware,
        streaming=streaming,
        unbounded=unbounded,
        queries=queries,
        kwargs_schema=dict(kwargs_schema or {}),
    )
    _REGISTRY[name] = spec
    return spec


def unregister_sketch(name: str) -> None:
    """Remove a registered sketch (primarily for tests registering fakes)."""
    _REGISTRY.pop(name, None)


def available_sketches(include_bias_aware: bool = True) -> List[str]:
    """Names of all registered sketches, deterministically sorted.

    Baselines come first, then the bias-aware algorithms; within each group
    names are sorted alphabetically, so the listing is stable across
    interpreter runs.
    """
    _ensure_core_registered()
    names = sorted(
        _REGISTRY,
        key=lambda name: (_REGISTRY[name].bias_aware, name),
    )
    if include_bias_aware:
        return names
    return [name for name in names if not _REGISTRY[name].bias_aware]


def get_spec(name: str) -> SketchSpec:
    """Look up the spec of a registered sketch, raising ``KeyError`` if unknown."""
    _ensure_core_registered()
    if name not in _REGISTRY:
        known = ", ".join(available_sketches())
        raise KeyError(f"unknown sketch {name!r}; available: {known}")
    return _REGISTRY[name]


@deprecated_entry_point("repro.api.SketchConfig(...).build()")
def make_sketch(
    name: str,
    dimension: int,
    width: int,
    depth: int,
    seed: RandomSource = None,
) -> Sketch:
    """Construct the sketch registered under ``name``.

    .. deprecated::
        Use ``repro.api.SketchConfig(name, dimension=..., width=...,
        depth=..., seed=...).build()`` (or a full
        :class:`~repro.api.SketchSession`) instead.
    """
    return get_spec(name).build(dimension, width, depth, seed=seed)


def paper_reference_suite() -> List[str]:
    """The six algorithms compared throughout Section 5 of the paper.

    Order matches the figure legends: the two bias-aware sketches first, then
    Count-Sketch, Count-Median, CM-CU and CML-CU.
    """
    _ensure_core_registered()
    return [
        "l1_sr",
        "l2_sr",
        "count_sketch",
        "count_median",
        "count_min_cu",
        "count_min_log_cu",
    ]


def mean_heuristic_suite() -> List[str]:
    """The algorithms of the mean-heuristic comparison (Figures 8 and 9)."""
    _ensure_core_registered()
    return ["l1_sr", "l2_sr", "l1_mean", "l2_mean"]


def _ensure_core_registered() -> None:
    """Import :mod:`repro.core` so the bias-aware sketches are registered."""
    import repro.core  # noqa: F401  (import for its registration side effect)


# --------------------------------------------------------------------------- #
# baseline registrations
# --------------------------------------------------------------------------- #
register_sketch(
    "count_min",
    "CM (plain Count-Min)",
    lambda n, s, d, seed, **kw: CountMin(n, s, d, seed=seed, **kw),
    linear=True,
    unbounded=True,
)
register_sketch(
    "count_median",
    "CM (Count-Median)",
    lambda n, s, d, seed, **kw: CountMedian(n, s, d, seed=seed, **kw),
    linear=True,
    unbounded=True,
)
register_sketch(
    "count_sketch",
    "CS (Count-Sketch)",
    lambda n, s, d, seed, **kw: CountSketch(n, s, d, seed=seed, **kw),
    linear=True,
    unbounded=True,
)
register_sketch(
    "count_min_cu",
    "CM-CU (conservative update)",
    lambda n, s, d, seed, **kw: CountMinCU(n, s, d, seed=seed, **kw),
    linear=False,
    exact_batch=True,
    unbounded=True,
)
register_sketch(
    "count_min_log_cu",
    "CML-CU (Count-Min-Log, conservative update)",
    lambda n, s, d, seed, **kw: CountMinLogCU(n, s, d, seed=seed, **kw),
    linear=False,
    exact_batch=True,
    unbounded=True,
    kwargs_schema={"base": float},
)
register_sketch(
    "debiased_count_min",
    "Debiased Count-Min (Deng & Rafiei)",
    lambda n, s, d, seed, **kw: DebiasedCountMin(n, s, d, seed=seed, **kw),
    linear=True,
)
