"""Segmented conservative-update batching engine.

Conservative update (CM-CU / CML-CU) is order-dependent: every update reads
the *current* minimum of its counters before writing, so a batch cannot be
applied as one scatter-add the way the linear sketches are.  What it *can*
do is run in **conflict-free segments**.

The segment invariant
---------------------
Partition a run-coalesced batch into maximal groups of *consecutive* runs
whose ``(row, bucket)`` footprints are pairwise disjoint.  Within such a
segment no run can read a counter that another run in the segment writes, so
every run still observes exactly the table state left behind by the previous
segment — the same state the scalar replay would observe.  The conservative
min/max rule therefore vectorises *exactly* over the segment:

* one fancy-indexed gather of all the segment's counters,
* ``min`` over the depth axis,
* ``target = min + Δ`` per run,
* one ``np.maximum`` scatter back.

Because the segment's cells are pairwise distinct the scatter is
well-defined (no duplicate writes), and because ``min``/``max``/``+`` are
the very same float operations the scalar path performs, the final table is
bit-identical to scalar replay for integer deltas (float deltas match to
summation order, as consecutive equal indices are coalesced first).  Only a
true collision — two runs of the batch sharing a cell — forces a segment
boundary, and order across segments is preserved.

Segment construction
--------------------
Conceptually each run stamps its ``depth`` cells into a generation-stamped
visited array over the ``depth × width`` table; a run that touches an
already-stamped cell starts a new segment (bump the generation, no
clearing), which is O(batch × depth).  This module realises the same greedy
partition with array primitives so no per-run Python loop is needed:

1. flatten each run's cells to ids in ``[0, depth·width)`` and stable-sort
   the run-major cell stream (a radix sort for tables up to 2^16 cells);
2. equal adjacent sorted cells are conflict pairs ``(earlier, later)`` —
   within one sorted cell group run numbers increase, so adjacent pairs
   carry every constraint that matters (farther pairs are implied
   transitively through the running maximum);
3. a max-scatter of the pairs produces ``prev[j]`` — the nearest earlier
   run sharing a cell with run ``j`` — whose running maximum ``m`` is
   non-decreasing, so "first conflict at or after start ``s``" is a binary
   search; one vectorised ``searchsorted`` of every possible start yields a
   jump table the greedy scan follows.

The jump table equals the sequential stamped-array scan because boundaries
only advance: when a segment starts at ``s`` every conflict whose earlier
run precedes ``s`` is buried in completed segments, so the greedy boundary
is the first ``j`` with ``m[j] >= s`` (and ``prev[j] < j`` guarantees
strict progress).

Both :class:`~repro.sketches.conservative.CountMinCU` and
:class:`~repro.sketches.count_min_log.CountMinLogCU` flush through this
module; the log variant folds its probabilistic randomised-rounding
increments per segment through its own generator, keeping
seed-reproducibility.  The draws for a whole batch are taken as one block
up front (:meth:`numpy.random.Generator.random` consumes the identical
PCG64 stream whether drawn one at a time or as a block) and indexed by the
running count of fraction-bearing runs; the unused tail is handed back by
rewinding the bit generator, so the consumed stream — and the serialised
``rng_state`` — is exactly the scalar path's.

Numerical discipline: ``np.log``/``np.power`` may round the last ulp
differently from ``math.log``/``**`` (the SIMD loops round independently),
so all log-counter conversion tables are built with the scalar arithmetic
of ``counter_to_value``/``value_to_counter`` — bit-identity with the
scalar path is a test-pinned contract, not an accident.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "coalesce_runs",
    "flat_cells",
    "segment_bounds",
    "apply_conservative",
    "LogCounterCodec",
    "apply_log_conservative",
]

#: stable argsort is a radix sort for ids this narrow — sorting the cell
#: stream dominates segmentation, so the dtype matters
_RADIX_MAX = np.iinfo(np.uint16).max

#: encode tables are cached per distinct delta; constant-delta batches are
#: the streaming norm, so the cache stays tiny — bound it anyway
_MAX_ENCODE_TABLES = 16


def coalesce_runs(indices: np.ndarray, deltas: np.ndarray):
    """Coalesce consecutive runs of the same index into one weighted update.

    Exact for CM-CU (applying ``Δ₁`` then ``Δ₂`` to the same item raises its
    counters exactly as ``Δ₁ + Δ₂`` does, bit-identically for integer
    deltas); must NOT be used for CML-CU, whose randomised-rounding draw
    sequence depends on the individual updates.
    """
    starts = np.concatenate(([0], np.flatnonzero(np.diff(indices) != 0) + 1))
    return indices[starts], np.add.reduceat(deltas, starts)


def flat_cells(columns: np.ndarray, width: int) -> np.ndarray:
    """Flatten a ``(depth, n)`` bucket-column matrix into flat cell ids.

    Cell ids live in ``[0, depth·width)``; within one run (one column of the
    matrix) the ids are distinct because the rows occupy disjoint ranges.
    """
    depth = columns.shape[0]
    offsets = (np.arange(depth, dtype=np.int64) * width)[:, None]
    return columns + offsets


def segment_bounds(cells: np.ndarray, table_cells: int) -> list:
    """Greedy conflict-free segmentation of a run-major cell footprint.

    ``cells`` is the ``(depth, n_runs)`` flat-cell matrix; the return value
    is the list of segment boundaries ``b`` with ``b[0] == 0`` and
    ``b[-1] == n_runs`` such that runs ``b[k]:b[k+1]`` have pairwise
    disjoint footprints and every segment is maximal (extending any segment
    by one run would introduce a duplicate cell).
    """
    depth, n_runs = cells.shape
    if n_runs <= 1:
        return [0, n_runs] if n_runs else [0]
    stream = np.ascontiguousarray(cells.T).reshape(-1)
    if table_cells <= _RADIX_MAX:
        stream = stream.astype(np.uint16)
    order = np.argsort(stream, kind="stable")
    sorted_runs = order // depth
    sorted_cells = stream[order]
    positions = np.flatnonzero(sorted_cells[1:] == sorted_cells[:-1])
    if positions.size == 0:
        return [0, n_runs]
    prev = np.full(n_runs, -1, dtype=np.int64)
    np.maximum.at(prev, sorted_runs[positions + 1], sorted_runs[positions])
    m = np.maximum.accumulate(prev)
    jump = np.searchsorted(m, np.arange(n_runs), side="left").tolist()
    bounds = [0]
    append = bounds.append
    s = jump[0]
    while s < n_runs:
        append(s)
        s = jump[s]
    append(n_runs)
    return bounds


def apply_conservative(
    table: np.ndarray,
    cells: np.ndarray,
    deltas: np.ndarray,
    bounds: list,
) -> None:
    """Flush CM-CU segments: gather → min over depth → ``max(cur, min+Δ)``.

    Mutates ``table`` in place.  Within a segment the cells are pairwise
    distinct, so the fancy-indexed assignment is a well-defined scatter and
    the arithmetic matches the scalar path operation for operation.
    """
    flat = table.reshape(-1)
    maximum = np.maximum
    s = bounds[0]
    for e in bounds[1:]:
        seg = cells[:, s:e]
        current = flat[seg]
        target = current.min(axis=0) + deltas[s:e]
        flat[seg] = maximum(current, target)
        s = e


class LogCounterCodec:
    """Exact log-counter conversion tables for :class:`CountMinLogCU`.

    Stored counters are integral, so decoding is a table lookup, and for a
    constant-delta batch the *encode* of ``value(c) + Δ`` is a function of
    the integer counter alone — one lookup replaces the whole
    decode → add → ``math.log`` pipeline in the hot loop.  Every table is
    built with the scalar ``**``/``math.log`` arithmetic of
    ``counter_to_value``/``value_to_counter`` (``np.power``/``np.log`` may
    round the last ulp differently), which keeps the batched path
    bit-identical to scalar replay.
    """

    def __init__(self, base: float, log_base: float) -> None:
        self.base = base
        self.log_base = log_base
        self._decode = np.empty(0, dtype=np.float64)
        self._encode = {}

    def decode_table(self, top_counter: int) -> np.ndarray:
        """Decode values for counters up to ``top_counter`` (inclusive)."""
        if top_counter >= self._decode.size:
            grow_to = max(top_counter + 1, 2 * self._decode.size, 1024)
            base, denom = self.base, self.base - 1.0
            self._decode = np.array(
                [(base ** float(k) - 1.0) / denom for k in range(grow_to)],
                dtype=np.float64,
            )
        return self._decode

    def encode_tables(self, delta: float, top_counter: int):
        """Target floors and fractions for ``value(c) + delta``, ``c`` integral.

        Returns ``(floor, fraction)`` — ``np.modf`` of the fractional target
        counter — so the hot loop's rounding needs no per-segment ``modf``.
        """
        tables = self._encode.get(delta)
        if tables is None or tables[0].size <= top_counter:
            decode = self.decode_table(top_counter)
            scale, log_base, log = self.base - 1.0, self.log_base, math.log
            fractional = np.array(
                [
                    log((v + delta) * scale + 1.0) / log_base
                    for v in decode.tolist()
                ],
                dtype=np.float64,
            )
            fraction, floor = np.modf(fractional)
            if len(self._encode) >= _MAX_ENCODE_TABLES:
                self._encode.clear()
            tables = self._encode[delta] = (floor, fraction)
        return tables

    def top_counter(self, table: np.ndarray, deltas: np.ndarray) -> int:
        """Size estimate for the batch's lookup tables.

        The encode of the current total value plus everything the batch
        adds.  This is *almost always* an upper bound on any counter the
        batch produces, but not quite: a randomised round-up inflates the
        decoded value of a counter slightly, and under extreme collision
        pressure (every update contending for the same minimum counters)
        the inflation compounds past the estimate.
        :func:`apply_log_conservative` therefore treats this as a sizing
        hint and grows the tables on demand when a live counter outruns
        them.
        """
        scale = self.base - 1.0
        top_value = (
            (self.base ** float(table.max()) - 1.0) / scale
            + float(np.sum(deltas))
        )
        return int(math.log(top_value * scale + 1.0) / self.log_base) + 2


def apply_log_conservative(
    table: np.ndarray,
    cells: np.ndarray,
    deltas: np.ndarray,
    bounds: list,
    codec: LogCounterCodec,
    rng: np.random.Generator,
) -> None:
    """Flush CML-CU segments with per-segment randomised rounding.

    Per segment: decode the minimum counters, add the deltas in value
    space, re-encode with the scalar arithmetic of ``value_to_counter``
    (via the codec's exact lookup tables on the constant-delta fast path)
    and resolve the fractional parts against the pre-drawn block —
    consuming one draw per strictly-positive fraction, in run order,
    exactly as the scalar path does.  The unused tail of the block is
    rewound afterwards so the generator state matches scalar replay bit
    for bit.
    """
    n_runs = cells.shape[1]
    if n_runs == 0:
        return
    flat = table.reshape(-1)
    top = codec.top_counter(flat, deltas)
    first = deltas[0]
    constant_delta = bool(np.all(deltas == first))
    if constant_delta:
        floors, fractions = codec.encode_tables(float(first), top)
        floor_take, fraction_take = floors.take, fractions.take
    else:
        decode_take = codec.decode_table(top).take
        scale, log_base, log = codec.base - 1.0, codec.log_base, math.log
    # counters are integral, so the batch can run on an int64 image of the
    # table (exact both ways below 2^53) — lookup indices then need no
    # per-segment astype, and scatter assignment casts the targets back
    counters = flat.astype(np.int64)
    draws = rng.random(n_runs)
    maximum, modf = np.maximum, np.modf
    used = 0
    s = bounds[0]
    for e in bounds[1:]:
        seg = cells[:, s:e]
        current = counters[seg]
        minimum = current.min(axis=0)
        while True:
            try:
                if constant_delta:
                    target = floor_take(minimum)
                    fraction = fraction_take(minimum)
                else:
                    values = decode_take(minimum) + deltas[s:e]
                    fraction, target = modf(
                        np.array(
                            [
                                log(v * scale + 1.0) / log_base
                                for v in values.tolist()
                            ]
                        )
                    )
                break
            except IndexError:
                # compounding randomised round-ups outran the sizing
                # estimate (see top_counter); grow past the largest live
                # counter (geometric growth inside the codec) and retry —
                # the failed take had no side effects
                grown = int(minimum.max())
                if constant_delta:
                    floors, fractions = codec.encode_tables(
                        float(first), grown
                    )
                    floor_take, fraction_take = floors.take, fractions.take
                else:
                    decode_take = codec.decode_table(grown).take
        if fraction.all():
            stop = used + (e - s)
            target += draws[used:stop] < fraction
        else:
            rounds_up = np.flatnonzero(fraction)
            stop = used + rounds_up.size
            target[rounds_up] += draws[used:stop] < fraction[rounds_up]
        used = stop
        counters[seg] = maximum(current, target)
        s = e
    np.copyto(flat, counters, casting="unsafe")
    if used < n_runs:
        # hand the unconsumed draws back so the generator state — which is
        # serialised with the sketch — matches the scalar replay exactly
        rng.bit_generator.advance(used - n_runs)
