"""Abstract sketch interfaces.

Every sketch in the library supports three ingestion paths:

* **streaming** — :meth:`Sketch.update` applies a single ``(index, delta)``
  update, which is the streaming model of the paper (Section 1);
* **batched streaming** — :meth:`Sketch.update_batch` applies a chunk of
  ``(index, delta)`` updates in stream order; subclasses vectorise the chunk
  through numpy scatter-adds, which is what makes trace replay run at
  hardware speed rather than python-loop speed;
* **vectorised** — :meth:`Sketch.fit` ingests a whole frequency vector at
  once through numpy, which is how the evaluation harness sketches the
  datasets efficiently.

For *linear* sketches the two paths produce identical state, and sketches of
partial vectors can be merged (:meth:`LinearSketch.merge`), which is the
property that makes them usable in the distributed model (Section 1).
Non-linear sketches (conservative update variants) only guarantee that both
paths apply the same per-item updates in index order.
"""

from __future__ import annotations

import abc
from typing import Iterable, Tuple

import numpy as np

from repro.utils.rng import RandomSource
from repro.utils.validation import (
    ensure_1d_float_array,
    ensure_batch_arrays,
    require_index,
    require_positive_int,
)


class Sketch(abc.ABC):
    """Base class for all frequency sketches over vectors in ``R^dimension``.

    Parameters
    ----------
    dimension:
        Dimension ``n`` of the frequency vector being summarised.
    width:
        Number of buckets ``s`` per hash row.
    depth:
        Number of independent hash rows ``d``.
    seed:
        Randomness for the hash functions.  Two sketches constructed with the
        same ``(dimension, width, depth, seed)`` are *compatible*: they use the
        same hash functions and may be merged (if linear) or compared.
    """

    #: short name used in result tables (overridden by subclasses)
    name = "sketch"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        seed: RandomSource = None,
    ) -> None:
        self.dimension = require_positive_int(dimension, "dimension")
        self.width = require_positive_int(width, "width")
        self.depth = require_positive_int(depth, "depth")
        self.seed = seed
        self._items_processed = 0

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def update(self, index: int, delta: float = 1.0) -> None:
        """Apply the streaming update ``x[index] += delta``."""

    def fit(self, x) -> "Sketch":
        """Ingest a whole frequency vector ``x`` (length ``dimension``).

        The default implementation replays the non-zero coordinates as
        individual updates; vectorised subclasses override it.
        Returns ``self`` for chaining.
        """
        arr = self._check_vector(x)
        for index in np.flatnonzero(arr):
            self.update(int(index), float(arr[index]))
        return self

    def update_many(self, updates: Iterable[Tuple[int, float]]) -> "Sketch":
        """Apply a sequence of ``(index, delta)`` updates in order."""
        for index, delta in updates:
            self.update(int(index), float(delta))
        return self

    def update_batch(self, indices, deltas=None) -> "Sketch":
        """Apply a batch of streaming updates ``x[indices[j]] += deltas[j]``.

        Parameters
        ----------
        indices:
            1-D integer array-like of coordinates, in stream order.
        deltas:
            Matching 1-D float array-like of increments, a scalar broadcast to
            every index, or ``None`` for unit increments.

        The default implementation replays the batch through :meth:`update`
        one entry at a time; subclasses override it with a vectorised path.
        For *linear* sketches the batched path reaches exactly the same state
        as the scalar replay (bit-identical for integer-valued deltas, up to
        floating-point summation order otherwise); the conservative-update
        sketches preserve index-order semantics so the two paths stay
        equivalent as well.  Returns ``self`` for chaining.
        """
        idx, d = self._check_batch(indices, deltas)
        for index, delta in zip(idx.tolist(), d.tolist()):
            self.update(index, delta)
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def query(self, index: int) -> float:
        """Return the point-query estimate of coordinate ``index``."""

    def query_batch(self, indices) -> np.ndarray:
        """Point-query a batch of coordinates; returns one estimate per index.

        Equivalent to ``np.array([self.query(i) for i in indices])`` but
        vectorised by subclasses so the evaluation harness can issue thousands
        of queries per call.
        """
        idx, _ = self._check_batch(indices, None)
        return np.array([self.query(int(i)) for i in idx], dtype=np.float64)

    def recover(self) -> np.ndarray:
        """Return the full recovered vector ``x̂`` (one estimate per coordinate).

        The default implementation queries every coordinate; vectorised
        subclasses override it.
        """
        return np.array(
            [self.query(index) for index in range(self.dimension)],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def size_in_words(self) -> int:
        """Number of counter words the sketch stores (excluding O(d) hash seeds)."""

    @property
    def items_processed(self) -> int:
        """Total number of updates applied (vectorised fits count non-zeros)."""
        return self._items_processed

    def _check_vector(self, x) -> np.ndarray:
        arr = ensure_1d_float_array(x, "x")
        if arr.size != self.dimension:
            raise ValueError(
                f"vector has dimension {arr.size}, sketch expects {self.dimension}"
            )
        return arr

    def _check_index(self, index: int) -> int:
        return require_index(index, self.dimension)

    def _check_batch(self, indices, deltas):
        return ensure_batch_arrays(indices, deltas, self.dimension)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(dimension={self.dimension}, "
            f"width={self.width}, depth={self.depth})"
        )


class LinearSketch(Sketch):
    """A sketch that is a linear function of the input vector.

    Linearity gives two extra operations used by the distributed substrate:

    * :meth:`merge` — add the state of a compatible sketch (sketch of the sum
      equals sum of the sketches);
    * :meth:`scale` — multiply the state by a scalar (sketch of ``c·x``).
    """

    @abc.abstractmethod
    def merge(self, other: "LinearSketch") -> "LinearSketch":
        """Add ``other``'s state into this sketch in place and return ``self``."""

    @abc.abstractmethod
    def scale(self, factor: float) -> "LinearSketch":
        """Scale the sketch state in place by ``factor`` and return ``self``."""

    def _check_compatible(self, other: "LinearSketch") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if (
            other.dimension != self.dimension
            or other.width != self.width
            or other.depth != self.depth
        ):
            raise ValueError(
                "sketches must share (dimension, width, depth) to be merged; got "
                f"({self.dimension}, {self.width}, {self.depth}) vs "
                f"({other.dimension}, {other.width}, {other.depth})"
            )
        if self.seed is None or other.seed is None or self.seed != other.seed:
            raise ValueError(
                "sketches must be built from the same integer seed to share "
                "hash functions; construct both with an explicit seed"
            )

    def __add__(self, other: "LinearSketch") -> "LinearSketch":
        """Return a new sketch equal to the merge of ``self`` and ``other``."""
        merged = self.copy()
        merged.merge(other)
        return merged

    @abc.abstractmethod
    def copy(self) -> "LinearSketch":
        """Return a deep copy of this sketch (same hashes, copied counters)."""
