"""Abstract sketch interfaces.

Every sketch in the library supports three ingestion paths:

* **streaming** — :meth:`Sketch.update` applies a single ``(index, delta)``
  update, which is the streaming model of the paper (Section 1);
* **batched streaming** — :meth:`Sketch.update_batch` applies a chunk of
  ``(index, delta)`` updates in stream order; subclasses vectorise the chunk
  through numpy scatter-adds, which is what makes trace replay run at
  hardware speed rather than python-loop speed;
* **vectorised** — :meth:`Sketch.fit` ingests a whole frequency vector at
  once through numpy, which is how the evaluation harness sketches the
  datasets efficiently.

For *linear* sketches the two paths produce identical state, and sketches of
partial vectors can be merged (:meth:`LinearSketch.merge`), which is the
property that makes them usable in the distributed model (Section 1).
Non-linear sketches (conservative update variants) only guarantee that both
paths apply the same per-item updates in index order.

Every sketch additionally implements the **state protocol**: its complete
mutable state is an explicit, portable artifact.

* :meth:`Sketch.state_dict` / :meth:`Sketch.from_state` — snapshot and
  restore the state as a plain dict (config + scalars + meta + arrays);
* :meth:`Sketch.to_bytes` / :meth:`Sketch.from_bytes` — the same state in
  the versioned, seed-reproducible binary wire format of
  :mod:`repro.serialization`, suitable for shipping between processes or
  machines (the distributed protocol and the sharded ingestion engine both
  exchange exactly these payloads);
* :meth:`Sketch.copy` — a deep copy routed through
  ``from_state(state_dict())``, so every sketch (linear or not) copies
  through the same audited path.

Data-independent structure (hash buckets, signs, sampled indices) is *not*
part of the state: it is re-derived from the integer ``seed`` on restore,
which keeps payloads at the size of the counters.  Subclasses participate by
overriding the small hooks :meth:`Sketch._config_dict`,
:meth:`Sketch._state_arrays`, :meth:`Sketch._state_scalars`,
:meth:`Sketch._state_meta` and :meth:`Sketch._load_state_payload`.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.serialization import (
    StateProtocolMixin,
    check_reconstructible,
    check_state_version,
    lookup_kind,
)
from repro.utils.rng import RandomSource
from repro.utils.validation import (
    ensure_1d_float_array,
    ensure_batch_arrays,
    require_index,
    require_positive_int,
)


#: coordinates processed per block by every domain-enumerating scan in the
#: library (dense-vector ingestion, column-sum computation, blockwise query
#: evaluation in :mod:`repro.queries`); bounds transient memory at
#: O(depth × block) regardless of the universe size
SCAN_BLOCK = 1 << 16


class Sketch(StateProtocolMixin, abc.ABC):
    """Base class for all frequency sketches over vectors in ``R^dimension``.

    Parameters
    ----------
    dimension:
        Dimension ``n`` of the frequency vector being summarised, or ``None``
        for **hashed-key mode**: the universe is unbounded and any
        non-negative 64-bit integer is a valid key.  Streaming/batched
        updates and point queries work unchanged; operations that enumerate
        the universe (``fit`` on a dense vector, ``recover``) are
        unavailable, and the algorithm must not need O(n) data-independent
        structure (see ``SketchSpec.unbounded`` in the registry).
    width:
        Number of buckets ``s`` per hash row.
    depth:
        Number of independent hash rows ``d``.
    seed:
        Randomness for the hash functions.  Two sketches constructed with the
        same ``(dimension, width, depth, seed)`` are *compatible*: they use the
        same hash functions and may be merged (if linear) or compared.
    """

    #: short name used in result tables (overridden by subclasses); doubles
    #: as the ``kind`` tag of the serialized state
    name = "sketch"

    #: bumped by a subclass whenever the layout of its serialized state
    #: changes incompatibly; recorded in every payload next to the wire
    #: version so old snapshots fail loudly instead of silently misloading
    state_version = 1

    def __init__(
        self,
        dimension: Optional[int],
        width: int,
        depth: int,
        seed: RandomSource = None,
    ) -> None:
        if dimension is None:
            self.dimension: Optional[int] = None
        else:
            self.dimension = require_positive_int(dimension, "dimension")
        self.width = require_positive_int(width, "width")
        self.depth = require_positive_int(depth, "depth")
        self.seed = seed
        self._items_processed = 0

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def update(self, index: int, delta: float = 1.0) -> None:
        """Apply the streaming update ``x[index] += delta``."""

    def fit(self, x) -> "Sketch":
        """Ingest a whole frequency vector ``x`` (length ``dimension``).

        The default implementation replays the non-zero coordinates as
        individual updates; vectorised subclasses override it.
        Returns ``self`` for chaining.
        """
        arr = self._check_vector(x)
        for index in np.flatnonzero(arr):
            self.update(int(index), float(arr[index]))
        return self

    def update_many(self, updates: Iterable[Tuple[int, float]]) -> "Sketch":
        """Apply a sequence of ``(index, delta)`` updates in order."""
        for index, delta in updates:
            self.update(int(index), float(delta))
        return self

    def update_batch(self, indices, deltas=None) -> "Sketch":
        """Apply a batch of streaming updates ``x[indices[j]] += deltas[j]``.

        Parameters
        ----------
        indices:
            1-D integer array-like of coordinates, in stream order.
        deltas:
            Matching 1-D float array-like of increments, a scalar broadcast to
            every index, or ``None`` for unit increments.

        The default implementation replays the batch through :meth:`update`
        one entry at a time; subclasses override it with a vectorised path.
        For *linear* sketches the batched path reaches exactly the same state
        as the scalar replay (bit-identical for integer-valued deltas, up to
        floating-point summation order otherwise); the conservative-update
        sketches preserve index-order semantics so the two paths stay
        equivalent as well.  Returns ``self`` for chaining.
        """
        idx, d = self._check_batch(indices, deltas)
        for index, delta in zip(idx.tolist(), d.tolist()):
            self.update(index, delta)
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def query(self, index: int) -> float:
        """Return the point-query estimate of coordinate ``index``."""

    def query_batch(self, indices) -> np.ndarray:
        """Point-query a batch of coordinates; returns one estimate per index.

        Equivalent to ``np.array([self.query(i) for i in indices])`` but
        vectorised by subclasses so the evaluation harness can issue thousands
        of queries per call.
        """
        idx, _ = self._check_batch(indices, None)
        return np.array([self.query(int(i)) for i in idx], dtype=np.float64)

    def recover(self) -> np.ndarray:
        """Return the full recovered vector ``x̂`` (one estimate per coordinate).

        Evaluates the domain in :data:`SCAN_BLOCK` chunks of
        :meth:`query_batch`, so transient memory stays O(depth × block)
        even at huge dimensions (only the ``(n,)`` result itself scales
        with the universe).  Unavailable in hashed-key mode
        (``dimension=None``), whose universe cannot be enumerated.
        """
        self._require_bounded("recover()")
        return np.concatenate([
            np.asarray(
                self.query_batch(
                    np.arange(start, min(start + SCAN_BLOCK, self.dimension))
                ),
                dtype=np.float64,
            )
            for start in range(0, self.dimension, SCAN_BLOCK)
        ])

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def size_in_words(self) -> int:
        """Number of counter words the sketch stores (excluding O(d) hash seeds)."""

    @property
    def items_processed(self) -> int:
        """Total number of updates applied (vectorised fits count non-zeros)."""
        return self._items_processed

    # ------------------------------------------------------------------ #
    # state protocol
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the sketch's complete state as a plain dict.

        The dict has five fixed keys: ``kind`` (the registry name),
        ``state_version``, ``config`` (constructor arguments, including the
        seed from which data-independent structure is re-derived),
        ``scalars`` (scalar state counted in the sketch's word footprint),
        ``meta`` (uncounted bookkeeping) and ``arrays`` (the counter arrays;
        snapshots are copies, never views of live state).
        """
        return {
            "kind": self.name,
            "state_version": self.state_version,
            "config": self._config_dict(),
            "scalars": self._state_scalars(),
            "meta": {"items_processed": int(self._items_processed),
                     **self._state_meta()},
            "arrays": {name: np.array(array, copy=True)
                       for name, array in self._state_arrays().items()},
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "Sketch":
        """Reconstruct a sketch from a :meth:`state_dict` snapshot.

        Dispatches on ``state["kind"]`` through the serialization registry,
        so ``Sketch.from_state`` restores any registered sketch; calling it
        on a concrete subclass additionally checks the kind matches.  The
        state must carry an integer seed (structure is re-derived from it)
        and a matching ``state_version``; both are validated loudly.
        """
        klass = lookup_kind(state["kind"])
        if not issubclass(klass, cls):
            raise TypeError(
                f"state of kind {state['kind']!r} restores a "
                f"{klass.__name__}, which is not a {cls.__name__}"
            )
        check_state_version(state, klass)
        check_reconstructible(state)
        sketch = klass._from_config(state.get("config", {}))
        sketch._load_state_payload(
            state.get("arrays", {}), state.get("scalars", {}),
            state.get("meta", {}),
        )
        return sketch

    # to_bytes / from_bytes / size_in_bytes / copy come from
    # StateProtocolMixin, layered on state_dict() / from_state().

    # -- subclass hooks -------------------------------------------------- #
    def _config_dict(self) -> Dict[str, Any]:
        """Constructor arguments; subclasses append their extra parameters."""
        seed = self.seed
        if isinstance(seed, np.integer):
            seed = int(seed)
        return {
            "dimension": self.dimension,
            "width": self.width,
            "depth": self.depth,
            "seed": seed,
        }

    @classmethod
    def _from_config(cls, config: Dict[str, Any]) -> "Sketch":
        """Build a blank sketch from a ``config`` dict; subclasses extend."""
        return cls(config["dimension"], config["width"], config["depth"],
                   seed=config.get("seed"))

    def _state_arrays(self) -> Dict[str, np.ndarray]:
        """The mutable state arrays (counted toward the word footprint)."""
        return {}

    def _state_scalars(self) -> Dict[str, float]:
        """Scalar state counted toward the word footprint (e.g. ‖x‖₁)."""
        return {}

    def _state_meta(self) -> Dict[str, Any]:
        """Uncounted JSON-able bookkeeping (e.g. RNG state)."""
        return {}

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        """Restore mutable state from a snapshot; subclasses extend."""
        self._items_processed = int(meta.get("items_processed", 0))

    def _require_bounded(self, operation: str) -> None:
        if self.dimension is None:
            raise ValueError(
                f"{operation} requires a bounded dimension; this sketch was "
                "built in hashed-key mode (dimension=None), where the key "
                "universe cannot be enumerated"
            )

    def _check_vector(self, x) -> np.ndarray:
        self._require_bounded("ingesting a dense frequency vector")
        arr = ensure_1d_float_array(x, "x")
        if arr.size != self.dimension:
            raise ValueError(
                f"vector has dimension {arr.size}, sketch expects {self.dimension}"
            )
        return arr

    def _check_index(self, index: int) -> int:
        return require_index(index, self.dimension)

    def _check_batch(self, indices, deltas):
        return ensure_batch_arrays(indices, deltas, self.dimension)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(dimension={self.dimension}, "
            f"width={self.width}, depth={self.depth})"
        )


class LinearSketch(Sketch):
    """A sketch that is a linear function of the input vector.

    Linearity gives two extra operations used by the distributed substrate:

    * :meth:`merge` — add the state of a compatible sketch (sketch of the sum
      equals sum of the sketches);
    * :meth:`scale` — multiply the state by a scalar (sketch of ``c·x``).
    """

    @abc.abstractmethod
    def merge(self, other: "LinearSketch") -> "LinearSketch":
        """Add ``other``'s state into this sketch in place and return ``self``."""

    @abc.abstractmethod
    def scale(self, factor: float) -> "LinearSketch":
        """Scale the sketch state in place by ``factor`` and return ``self``."""

    # ------------------------------------------------------------------ #
    # shared-memory fold protocol (zero-copy sharded ingestion)
    # ------------------------------------------------------------------ #
    def shared_state_layout(self) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
        """The ``(field, shape)`` layout of this sketch's foldable arrays.

        Derived from :meth:`_state_arrays` (every linear kind's mutable
        array state is float64), in sorted field order so the parent and the
        workers — which compute the layout independently from the same
        config — always agree byte-for-byte on the shared block layout.
        """
        return tuple(
            (name, tuple(array.shape))
            for name, array in sorted(self._state_arrays().items())
        )

    def bind_state_buffers(self, buffers: Dict[str, np.ndarray]) -> None:
        """Rebind every state array to a caller-owned buffer (copy-in).

        ``buffers`` maps :meth:`_state_arrays` field names to C-contiguous
        float64 arrays of matching shape — typically views into a
        :class:`~repro.sketches._tables.SharedCounterBlock`.  After binding,
        all in-place mutation (``update_batch``, ``merge``, ``scale``)
        writes through to the buffers, which is what lets a sharded-ingest
        worker scatter-add directly into memory the parent folds without
        serialization.  Subclasses with array state must override.
        """
        if self._state_arrays():
            raise NotImplementedError(
                f"{type(self).__name__} has state arrays but does not "
                "implement bind_state_buffers"
            )

    def fold_state(
        self,
        arrays: Dict[str, np.ndarray],
        scalars: Dict[str, float],
        items_processed: int,
    ) -> "LinearSketch":
        """Add a compatible sketch's raw state into this one (vectorized).

        The zero-copy counterpart of :meth:`merge`: ``arrays`` / ``scalars``
        are the peer's :meth:`_state_arrays` / :meth:`_state_scalars`
        contents (e.g. read straight out of a worker's shared-memory block)
        rather than a sketch object, so nothing needs to be decoded or even
        pickled.  Every linear kind's array *and scalar* state is additive
        under merge, so the fold is ``+=`` all the way down; kinds with
        derived structures (heaps, sorted mirrors) rebuild them in
        :meth:`_post_fold`.  The caller is responsible for compatibility
        (same config/seed) — this is an engine-internal hot path.
        """
        live = self._state_arrays()
        if set(arrays) != set(live):
            raise ValueError(
                f"fold_state got fields {sorted(arrays)}, "
                f"{type(self).__name__} has {sorted(live)}"
            )
        for name, view in live.items():
            view += arrays[name]
        self._fold_scalars(scalars)
        self._items_processed += int(items_processed)
        self._post_fold()
        return self

    def _fold_scalars(self, scalars: Dict[str, float]) -> None:
        """Add a peer's scalar state; kinds with scalars must override."""
        if scalars:
            raise NotImplementedError(
                f"{type(self).__name__} received scalars {sorted(scalars)} "
                "but does not implement _fold_scalars"
            )

    def _post_fold(self) -> None:
        """Rebuild any derived structures after a raw-state fold (hook)."""

    def _check_compatible(self, other: "LinearSketch") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if (
            other.dimension != self.dimension
            or other.width != self.width
            or other.depth != self.depth
        ):
            raise ValueError(
                "sketches must share (dimension, width, depth) to be merged; got "
                f"({self.dimension}, {self.width}, {self.depth}) vs "
                f"({other.dimension}, {other.width}, {other.depth})"
            )
        if self.seed is None or other.seed is None or self.seed != other.seed:
            raise ValueError(
                "sketches must be built from the same integer seed to share "
                "hash functions; construct both with an explicit seed"
            )

    def __add__(self, other: "LinearSketch") -> "LinearSketch":
        """Return a new sketch equal to the merge of ``self`` and ``other``."""
        merged = self.copy()
        merged.merge(other)
        return merged
