"""Count-Min-Log with conservative update (CML-CU) [Pitel & Fouquier 2015].

Count-Min-Log replaces the linear counters of Count-Min with *logarithmic*
counters: a cell holding the integer value ``c`` represents the estimate

    value(c) = (base^c - 1) / (base - 1)

so that a small (8/16-bit) counter can represent very large counts, at the
cost of multiplicative noise.  Increments are probabilistic — a unit increment
raises ``c`` by one with probability ``base^{-c}`` — and conservative update
raises only the minimal counters.  The paper evaluates CML-CU with
``base = 1.00025`` (Section 5.1), where the log counters behave almost
linearly but still introduce the extra variance visible in its error curves.

For weighted updates (ingesting a whole frequency vector, or streams with
large deltas) this implementation uses the standard batch generalisation:
the target *value* ``min-estimate + Δ`` is converted back to counter units,
``c' = log_base(target · (base-1) + 1)``, and the fractional part is resolved
by a Bernoulli draw so the update is unbiased in counter space.  Unit
increments with ``Δ = 1`` reduce to (a numerically equivalent form of) the
original probabilistic increment.

Like CM-CU this sketch is not linear and cannot be merged
(:meth:`merge` raises :class:`~repro.api.CapabilityError`), but it *is*
exact-batchable: batches flush through the conflict-free segments of
:mod:`repro.sketches._cu_batch`, folding the randomised-rounding draws per
segment through the sketch's own generator in the scalar draw order — the
batched table **and** the serialised RNG state are bit-identical to scalar
replay.
"""

from __future__ import annotations

import math

import numpy as np

from repro.serialization import register_serializable
from repro.sketches import _cu_batch
from repro.sketches._tables import HashedCounterTable
from repro.sketches.base import SCAN_BLOCK, Sketch
from repro.utils.rng import RandomSource, as_rng, derive_seed

#: the counter base used throughout the paper's experiments
PAPER_BASE = 1.00025


class CountMinLogCU(Sketch):
    """Count-Min-Log with conservative update (non-linear, cash-register only)."""

    name = "count_min_log_cu"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        base: float = PAPER_BASE,
        seed: RandomSource = None,
    ) -> None:
        super().__init__(dimension, width, depth, seed=seed)
        base = float(base)
        if base <= 1.0:
            raise ValueError(f"base must be > 1, got {base}")
        self.base = base
        self._log_base = math.log(base)
        self._table = HashedCounterTable(
            dimension, width, depth, signed=False, seed=seed
        )
        self._rows = np.arange(depth)
        self._rng = as_rng(derive_seed(seed, 303))
        # lazily-built exact conversion tables for the segmented batch path;
        # derived state only (never serialized — rebuilt on first batch)
        self._codec = None

    # ------------------------------------------------------------------ #
    # log-counter arithmetic
    # ------------------------------------------------------------------ #
    def counter_to_value(self, counter: float) -> float:
        """Decode a log counter into the count it represents."""
        return (self.base ** counter - 1.0) / (self.base - 1.0)

    def _decode_counters(self, counters: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`counter_to_value` (may differ by 1 ulp from the
        scalar ``**`` path, as ``np.power`` rounds independently)."""
        return (np.power(self.base, counters) - 1.0) / (self.base - 1.0)

    def value_to_counter(self, value: float) -> float:
        """Encode a count into (fractional) log-counter units."""
        if value < 0:
            raise ValueError(f"counts must be non-negative, got {value}")
        return math.log(value * (self.base - 1.0) + 1.0) / self._log_base

    def _randomised_round(self, counter: float) -> float:
        """Round a fractional counter to an integer, unbiasedly in counter space."""
        floor = math.floor(counter)
        fraction = counter - floor
        if fraction > 0 and self._rng.random() < fraction:
            floor += 1
        return float(floor)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        delta = float(delta)
        if delta < 0:
            raise ValueError(
                "Count-Min-Log only supports non-negative increments"
            )
        if delta == 0:
            return
        cols = self._table.bucket_column(index)
        counters = self._table.table[self._rows, cols]
        current_value = self.counter_to_value(float(np.min(counters)))
        target_counter = self._randomised_round(
            self.value_to_counter(current_value + delta)
        )
        # conservative update: only raise counters below the target
        self._table.table[self._rows, cols] = np.maximum(counters, target_counter)
        self._items_processed += 1

    def update_batch(self, indices, deltas=None) -> "CountMinLogCU":
        """Segmented vectorised batch ingestion preserving stream order.

        The updates flush through the conflict-free segments of
        :mod:`repro.sketches._cu_batch`, applying exactly the arithmetic of
        :meth:`update` in stream order and consuming the randomised-rounding
        draws in the scalar sequence (one block draw per chunk, indexed in
        run order, unused tail rewound), so the batched path reaches a
        bit-identical state — table *and* generator.  (Unlike CM-CU,
        consecutive equal indices are *not* coalesced: merging them would
        change the draw sequence.)  Work proceeds one :data:`SCAN_BLOCK`
        chunk at a time so transient memory stays O(depth × block) however
        large the batch.
        """
        idx, d = self._check_batch(indices, deltas)
        if np.any(d < 0):
            raise ValueError(
                "Count-Min-Log only supports non-negative increments"
            )
        # zero-delta updates consume no draw on the scalar path either;
        # drop them before anything touches the generator
        live = d != 0
        if not live.all():
            idx = idx[live]
            d = d[live]
        if idx.size == 0:
            return self
        codec = self._codec
        if codec is None:
            codec = self._codec = _cu_batch.LogCounterCodec(
                self.base, self._log_base
            )
        table = self._table.table
        table_cells = self.depth * self.width
        for begin in range(0, idx.size, SCAN_BLOCK):
            stop = begin + SCAN_BLOCK
            cols = self._table.bucket_columns(idx[begin:stop])
            cells = _cu_batch.flat_cells(cols, self.width)
            bounds = _cu_batch.segment_bounds(cells, table_cells)
            _cu_batch.apply_log_conservative(
                table, cells, d[begin:stop], bounds, codec, self._rng
            )
        self._items_processed += int(idx.size)
        return self

    def fit(self, x) -> "CountMinLogCU":
        """Ingest a frequency vector by weighted conservative updates per item.

        Replays the non-zero coordinates in increasing index order with
        their full weight, through the segmented batch path — the draw
        sequence (and hence the resulting table and generator state) is
        exactly the scalar loop's.
        """
        arr = self._check_vector(x)
        if np.any(arr < 0):
            raise ValueError("CML-CU requires a non-negative frequency vector")
        indices = np.flatnonzero(arr)
        if indices.size:
            self.update_batch(indices, arr[indices])
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, index: int) -> float:
        index = self._check_index(index)
        min_counter = float(np.min(self._table.row_estimates(index)))
        return self.counter_to_value(min_counter)

    def query_batch(self, indices) -> np.ndarray:
        idx, _ = self._check_batch(indices, None)
        min_counters = np.min(self._table.row_estimates_batch(idx), axis=0)
        return self._decode_counters(min_counters)

    def merge(self, other) -> "CountMinLogCU":
        """CML-CU is not a linear sketch; merging is undefined."""
        # local import: repro.api.errors is below the sketch layer only at
        # runtime (the registry imports this module at api import time)
        from repro.api.errors import CapabilityError

        raise CapabilityError(
            "Count-Min-Log with conservative update is not linear and cannot "
            "be merged; use CountMin, CountMedian, CountSketch or the "
            "bias-aware sketches in the distributed model"
        )

    def size_in_words(self) -> int:
        return self._table.counter_count

    def _config_dict(self):
        config = super()._config_dict()
        config["base"] = self.base
        return config

    @classmethod
    def _from_config(cls, config):
        return cls(config["dimension"], config["width"], config["depth"],
                   base=config.get("base", PAPER_BASE), seed=config.get("seed"))

    def _state_arrays(self):
        return {"table": self._table.table}

    def _state_meta(self):
        # the generator state makes post-restore randomised rounding replay
        # the exact draw sequence the original sketch would have used
        return {"rng_state": self._rng.bit_generator.state}

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        self._table.load_table(arrays["table"])
        if "rng_state" in meta:
            self._rng.bit_generator.state = meta["rng_state"]

    @property
    def table(self) -> np.ndarray:
        """The raw ``(depth, width)`` log-counter table (for inspection)."""
        return self._table.table


register_serializable(CountMinLogCU)
