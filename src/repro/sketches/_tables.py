"""Internal helper: a depth × width counter table addressed by hashed buckets.

All table-based sketches (Count-Min, Count-Median, Count-Sketch and their
conservative-update variants, plus the bias-aware sketches built on top) share
the same storage layout: a ``(depth, width)`` array of counters, a per-row
hash function assigning coordinates to buckets, and optionally a per-row sign
function.  This module centralises that machinery so the individual sketch
classes stay focused on their estimation rule.

Bucket (and sign) assignments are computed **on demand** with the fused
row-stacked :func:`~repro.hashing.families.hash_matrix` evaluator rather than
being precomputed per coordinate, so a table occupies O(depth × width) memory
regardless of the universe size — ``dimension`` may even be ``None``
(hashed-key mode), in which case any non-negative 64-bit integer is a valid
key.  A small block cache keeps the assignments of the hottest (lowest) keys
materialised, which restores the one-gather fast path for the dense small
universes the evaluation harness sweeps.

Data-independent structure that *is* O(width) — the per-bucket coordinate
counts π / sign sums ψ needed by the bias-aware recovery — is computed by a
blockwise scan over the (necessarily bounded) domain and memoised in a
module-level cache keyed by the table's structural identity, so copies,
restored shards and distributed replicas share one array instead of paying
the O(n) scan each.
"""

from __future__ import annotations

from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hashing.families import KWiseHash, hash_family, hash_matrix
from repro.hashing.signs import SignHash, sign_family, sign_matrix
from repro.sketches.base import SCAN_BLOCK
from repro.utils.rng import RandomSource, derive_seed

#: keys below this bound have their bucket/sign assignments cached (hot-key
#: block cache); memory cost is O(depth × block), independent of ``dimension``,
#: and for universes up to the block size the cache restores the exact
#: one-gather fast path of the old precomputed tables
DEFAULT_CACHE_BLOCK = 1 << 16


#: memoised column sums shared across tables with identical structure;
#: bounded both by entry count and by total bytes so a long-lived process
#: sweeping many seeds (or large widths) cannot pin unbounded memory
_COLUMN_SUMS_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
_COLUMN_SUMS_CACHE_LIMIT = 32
_COLUMN_SUMS_CACHE_MAX_BYTES = 64 * 2**20

#: memoised hot-key block caches (bucket + sign assignments of the lowest
#: keys), shared across tables with identical structure the same way: the
#: assignments are pure functions of the seed-derived hash family, so the
#: panes of a sliding window, shard replicas and copies all read one
#: read-only block instead of re-hashing the hot range per instance
_HOT_BLOCK_CACHE: "OrderedDict[Tuple, Tuple]" = OrderedDict()
_HOT_BLOCK_CACHE_LIMIT = 16
_HOT_BLOCK_CACHE_MAX_BYTES = 128 * 2**20


def _unbounded_error(operation: str) -> ValueError:
    return ValueError(
        f"{operation} requires a bounded dimension; this table was built in "
        "hashed-key mode (dimension=None), where the key universe cannot be "
        "enumerated"
    )


class HashedCounterTable:
    """A ``(depth, width)`` counter table with per-row hashed bucket assignment.

    Parameters
    ----------
    dimension:
        Vector dimension ``n``, or ``None`` for hashed-key mode (any
        non-negative 64-bit integer key; domain-enumerating operations
        such as :meth:`add_vector` and :meth:`column_sums` become
        unavailable).
    width, depth:
        Buckets per row ``s``, number of rows ``d``.
    signed:
        When True, a per-row random sign function is drawn and applied to
        every update (Count-Sketch layout); when False updates are unsigned
        (Count-Min / Count-Median layout).
    seed:
        Randomness for the hash (and sign) functions.  The table derives
        distinct child seeds for the hash family and the sign family so that
        tables built from the same seed are identical.
    """

    def __init__(
        self,
        dimension: Optional[int],
        width: int,
        depth: int,
        signed: bool = False,
        seed: RandomSource = None,
    ) -> None:
        self.dimension = None if dimension is None else int(dimension)
        self.width = int(width)
        self.depth = int(depth)
        self.signed = bool(signed)
        self._seed = seed

        hash_seed = derive_seed(seed, 101)
        self.hashes: List[KWiseHash] = hash_family(depth, width, seed=hash_seed)

        self.signs: Optional[List[SignHash]] = None
        if signed:
            sign_seed = derive_seed(seed, 202)
            self.signs = sign_family(depth, seed=sign_seed)

        #: the counters themselves — the only O(width) mutable state
        self.table = np.zeros((depth, width), dtype=np.float64)
        # per-row offsets into the flattened table, used by the batched
        # scatter-add (shape (depth, 1) so it broadcasts against gathers)
        self._row_offsets = (np.arange(depth, dtype=np.int64) * width)[:, None]

        # hot-key block cache: assignments of keys in [0, cache_limit)
        if self.dimension is None:
            self._cache_limit = DEFAULT_CACHE_BLOCK
        else:
            self._cache_limit = min(self.dimension, DEFAULT_CACHE_BLOCK)
        self._bucket_cache: Optional[np.ndarray] = None
        self._sign_cache: Optional[np.ndarray] = None
        if self.dimension is not None and self.dimension <= DEFAULT_CACHE_BLOCK:
            # a small bounded universe is fully covered by the cache — fill
            # it now, which is exactly the (capped) precomputation the old
            # dense tables did at construction; large and unbounded
            # universes stay lazy so construction is O(depth × width)
            self._ensure_hot_cache()
        # per-instance memo of column_sums() (which itself consults the
        # module-level structural cache); the bias-aware sketches read their
        # π/ψ through this
        self._cached_column_sums: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # on-demand addressing
    # ------------------------------------------------------------------ #
    def _ensure_hot_cache(self) -> None:
        if self._bucket_cache is not None:
            return
        key = self._structure_key()
        if key is not None:
            cached = _HOT_BLOCK_CACHE.get(key)
            if cached is not None:
                _HOT_BLOCK_CACHE.move_to_end(key)
                self._bucket_cache, self._sign_cache = cached
                return
        hot = np.arange(self._cache_limit, dtype=np.int64)
        self._bucket_cache = hash_matrix(self.hashes, hot)
        if self.signed:
            self._sign_cache = sign_matrix(self.signs, hot).astype(np.float64)
        if key is not None:
            self._bucket_cache.setflags(write=False)
            if self._sign_cache is not None:
                self._sign_cache.setflags(write=False)
            _HOT_BLOCK_CACHE[key] = (self._bucket_cache, self._sign_cache)
            while len(_HOT_BLOCK_CACHE) > _HOT_BLOCK_CACHE_LIMIT or (
                len(_HOT_BLOCK_CACHE) > 1
                and sum(
                    bucket.nbytes + (0 if sign is None else sign.nbytes)
                    for bucket, sign in _HOT_BLOCK_CACHE.values()
                ) > _HOT_BLOCK_CACHE_MAX_BYTES
            ):
                _HOT_BLOCK_CACHE.popitem(last=False)

    def _checked_keys(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            low = int(indices.min())
            if low < 0:
                raise IndexError(f"keys must be non-negative, got {low}")
            if self.dimension is not None:
                high = int(indices.max())
                if high >= self.dimension:
                    raise IndexError(
                        f"keys must be in [0, {self.dimension}), got {high}"
                    )
        return indices

    def _gather(self, indices: np.ndarray, cache_name: str, evaluate,
                dtype) -> np.ndarray:
        """Serve a batch of keys from the hot cache, ``evaluate``, or both."""
        indices = self._checked_keys(indices)
        if indices.size == 0:
            return np.empty((self.depth, 0), dtype=dtype)
        cold = indices >= self._cache_limit
        if not cold.any():
            self._ensure_hot_cache()
            return getattr(self, cache_name)[:, indices]
        if cold.all():
            return evaluate(indices)
        self._ensure_hot_cache()
        out = np.empty((self.depth, indices.size), dtype=dtype)
        hot = ~cold
        out[:, hot] = getattr(self, cache_name)[:, indices[hot]]
        out[:, cold] = evaluate(indices[cold])
        return out

    def bucket_columns(self, indices: np.ndarray) -> np.ndarray:
        """The ``(depth, len(indices))`` bucket matrix for a batch of keys.

        Column ``j`` holds ``h_r(indices[j])`` for every row ``r``, computed
        with one fused :func:`hash_matrix` pass (hot keys come from the block
        cache instead).
        """
        return self._gather(
            indices, "_bucket_cache",
            lambda keys: hash_matrix(self.hashes, keys), np.int64,
        )

    def _checked_key(self, index: int) -> None:
        if index < 0:
            raise IndexError(f"keys must be non-negative, got {index}")
        if self.dimension is not None and index >= self.dimension:
            raise IndexError(
                f"keys must be in [0, {self.dimension}), got {index}"
            )

    def bucket_column(self, index: int) -> np.ndarray:
        """The ``(depth,)`` bucket assignments of one key."""
        self._checked_key(index)
        if index < self._cache_limit:
            self._ensure_hot_cache()
            return self._bucket_cache[:, index]
        # cold scalar path: the exact-integer scalar evaluator beats
        # one-element numpy array machinery by several microseconds per
        # update (bit-identical results)
        return np.array([h(index) for h in self.hashes], dtype=np.int64)

    def _require_signed(self) -> None:
        if not self.signed:
            raise ValueError(
                "this table is unsigned (Count-Min / Count-Median layout); "
                "sign functions exist only for signed (Count-Sketch) tables"
            )

    def sign_columns(self, indices: np.ndarray) -> np.ndarray:
        """The ``(depth, len(indices))`` ±1 sign matrix for a batch of keys."""
        self._require_signed()
        return self._gather(
            indices, "_sign_cache",
            lambda keys: sign_matrix(self.signs, keys).astype(np.float64),
            np.float64,
        )

    def sign_column(self, index: int) -> np.ndarray:
        """The ``(depth,)`` ±1 signs of one key."""
        self._require_signed()
        self._checked_key(index)
        if index < self._cache_limit:
            self._ensure_hot_cache()
            return self._sign_cache[:, index]
        return np.array([r(index) for r in self.signs], dtype=np.float64)

    @property
    def buckets(self) -> np.ndarray:
        """The dense ``(depth, dimension)`` bucket table, materialised on read.

        Kept for inspection and backwards compatibility only: it costs
        O(depth × dimension) memory per access and is unavailable in
        hashed-key mode.  Production code addresses the table through
        :meth:`bucket_columns` / :meth:`bucket_column`.
        """
        if self.dimension is None:
            raise _unbounded_error("materialising the dense bucket table")
        return self.bucket_columns(np.arange(self.dimension, dtype=np.int64))

    @property
    def sign_values(self) -> Optional[np.ndarray]:
        """Dense ``(depth, dimension)`` sign table (see :attr:`buckets`)."""
        if not self.signed:
            return None
        if self.dimension is None:
            raise _unbounded_error("materialising the dense sign table")
        return self.sign_columns(np.arange(self.dimension, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def add_update(self, index: int, delta: float) -> None:
        """Apply ``x[index] += delta`` to every row of the table."""
        rows = np.arange(self.depth)
        cols = self.bucket_column(index)
        if self.signed:
            self.table[rows, cols] += delta * self.sign_column(index)
        else:
            self.table[rows, cols] += delta

    def add_batch(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a batch of ``(index, delta)`` updates to every row at once.

        The scatter-add is performed with one ``np.bincount`` over the
        flattened ``(depth, width)`` table per :data:`SCAN_BLOCK` chunk:
        per-row bucket columns are hashed for the chunk in one fused pass,
        offset by ``row * width``, and accumulated in one go — so transient
        memory stays O(depth × block) no matter how large the batch.  For
        integer-valued deltas the resulting counters are bit-exact equal to
        replaying the batch through :meth:`add_update`; for general floats
        they agree up to summation order.
        """
        indices = np.asarray(indices)
        if indices.size == 0:
            return
        deltas = np.broadcast_to(deltas, indices.shape)
        for start in range(0, indices.size, SCAN_BLOCK):
            stop = start + SCAN_BLOCK
            chunk = indices[start:stop]
            cols = self.bucket_columns(chunk)
            if self.signed:
                weights = deltas[start:stop] * self.sign_columns(chunk)
            else:
                weights = np.broadcast_to(deltas[start:stop], cols.shape)
            flat = cols + self._row_offsets
            self.table += np.bincount(
                flat.ravel(), weights=weights.ravel(),
                minlength=self.table.size,
            ).reshape(self.depth, self.width)

    def add_vector(self, x: np.ndarray) -> None:
        """Apply a whole frequency vector ``x`` at once (vectorised path).

        The domain is scanned in blocks of :data:`SCAN_BLOCK` coordinates so
        transient memory stays O(depth × block) even for huge universes.
        """
        if self.dimension is None:
            raise _unbounded_error("ingesting a dense frequency vector")
        x = np.asarray(x, dtype=np.float64)
        for start in range(0, self.dimension, SCAN_BLOCK):
            stop = min(start + SCAN_BLOCK, self.dimension)
            block = np.arange(start, stop, dtype=np.int64)
            cols = self.bucket_columns(block)
            signs = self.sign_columns(block) if self.signed else None
            values = x[start:stop]
            for row in range(self.depth):
                weights = values if signs is None else values * signs[row]
                self.table[row] += np.bincount(
                    cols[row], weights=weights, minlength=self.width
                )

    # ------------------------------------------------------------------ #
    # estimates
    # ------------------------------------------------------------------ #
    def row_estimates(self, index: int) -> np.ndarray:
        """Per-row estimates of coordinate ``index`` (sign-corrected if signed)."""
        rows = np.arange(self.depth)
        values = self.table[rows, self.bucket_column(index)]
        if self.signed:
            values = values * self.sign_column(index)
        return values

    def row_estimates_batch(self, indices: np.ndarray) -> np.ndarray:
        """A ``(depth, len(indices))`` array of per-row estimates for a batch.

        Column ``j`` equals :meth:`row_estimates` of ``indices[j]``; the whole
        batch is hashed and gathered in one pass.
        """
        cols = self.bucket_columns(indices)
        values = np.take_along_axis(self.table, cols, axis=1)
        if self.signed:
            values = values * self.sign_columns(indices)
        return values

    # ------------------------------------------------------------------ #
    # structural vectors used by the bias-aware recovery
    # ------------------------------------------------------------------ #
    def _structure_key(self) -> Optional[Tuple]:
        """Cache key identifying this table's data-independent structure."""
        seed = self._seed
        if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
            return None
        return (int(seed), self.dimension, self.width, self.depth, self.signed)

    def column_sums(self) -> np.ndarray:
        """Per-row column sums: π (unsigned) or ψ (signed), shape (depth, width).

        Row ``r`` holds the coordinate-wise sum of the columns of the r-th
        CM/CS matrix, i.e. the per-bucket count of coordinates (unsigned) or
        the per-bucket sum of signs (signed).  The bias-aware recovery
        subtracts ``β̂`` times these from the counters.

        Computed by a blockwise scan over the domain (O(n) time once,
        O(depth × block) transient memory) and memoised per structural
        identity, so copies and restored replicas of the same table share a
        single read-only array instead of re-scanning the domain.
        """
        if self.dimension is None:
            raise _unbounded_error("computing per-bucket coordinate counts")
        key = self._structure_key()
        if key is not None:
            cached = _COLUMN_SUMS_CACHE.get(key)
            if cached is not None:
                _COLUMN_SUMS_CACHE.move_to_end(key)
                return cached
        sums = np.zeros((self.depth, self.width), dtype=np.float64)
        for start in range(0, self.dimension, SCAN_BLOCK):
            stop = min(start + SCAN_BLOCK, self.dimension)
            block = np.arange(start, stop, dtype=np.int64)
            cols = self.bucket_columns(block)
            signs = self.sign_columns(block) if self.signed else None
            for row in range(self.depth):
                weights = None if signs is None else signs[row]
                sums[row] += np.bincount(
                    cols[row], weights=weights, minlength=self.width
                )
        if key is not None:
            sums.setflags(write=False)
            _COLUMN_SUMS_CACHE[key] = sums
            while len(_COLUMN_SUMS_CACHE) > _COLUMN_SUMS_CACHE_LIMIT or (
                len(_COLUMN_SUMS_CACHE) > 1
                and sum(a.nbytes for a in _COLUMN_SUMS_CACHE.values())
                > _COLUMN_SUMS_CACHE_MAX_BYTES
            ):
                _COLUMN_SUMS_CACHE.popitem(last=False)
        return sums

    def cached_column_sums(self) -> np.ndarray:
        """:meth:`column_sums`, memoised on the instance.

        π/ψ are data-independent and O(n) to scan for; computing them lazily
        on first use keeps construction O(depth × width).  The result must be
        treated as read-only (int-seeded tables share it across replicas).
        """
        if self._cached_column_sums is None:
            self._cached_column_sums = self.column_sums()
        return self._cached_column_sums

    # ------------------------------------------------------------------ #
    # linear-algebra operations
    # ------------------------------------------------------------------ #
    def merge_from(self, other: "HashedCounterTable") -> None:
        """Add another table's counters (caller checks hash compatibility)."""
        self.table += other.table

    def scale_by(self, factor: float) -> None:
        """Multiply all counters by ``factor``."""
        self.table *= factor

    # ------------------------------------------------------------------ #
    # shared-memory support
    # ------------------------------------------------------------------ #
    def bind_buffer(self, buffer: np.ndarray) -> None:
        """Rebind the counters to a caller-owned buffer (copy-in, then alias).

        ``buffer`` must be a C-contiguous float64 array of shape
        ``(depth, width)`` — typically a view into a
        :class:`SharedCounterBlock` — and becomes the table's live counter
        storage: the current counters are copied into it and every subsequent
        in-place mutation (:meth:`add_update`, :meth:`add_batch`,
        :meth:`merge_from`, :meth:`scale_by`) writes through to it.  This is
        what lets a worker process scatter-add directly into memory the
        parent can fold without any serialization.
        """
        if not isinstance(buffer, np.ndarray):
            raise TypeError("bind_buffer expects a numpy array view")
        if buffer.shape != (self.depth, self.width):
            raise ValueError(
                f"buffer has shape {buffer.shape}, expected "
                f"({self.depth}, {self.width})"
            )
        if buffer.dtype != np.float64 or not buffer.flags.c_contiguous:
            raise ValueError("buffer must be C-contiguous float64")
        buffer[...] = self.table
        self.table = buffer

    # ------------------------------------------------------------------ #
    # state protocol support
    # ------------------------------------------------------------------ #
    def load_table(self, table) -> None:
        """Replace the counters with a restored snapshot (shape-checked)."""
        arr = np.array(table, dtype=np.float64)
        if arr.shape != (self.depth, self.width):
            raise ValueError(
                f"restored table has shape {arr.shape}, expected "
                f"({self.depth}, {self.width})"
            )
        self.table = arr

    @property
    def counter_count(self) -> int:
        """Number of counters stored."""
        return self.depth * self.width


# ---------------------------------------------------------------------- #
# shared-memory counter storage
# ---------------------------------------------------------------------- #

#: a block layout: ``(field_name, shape, dtype_str)`` triples describing the
#: arrays packed C-contiguously into one shared-memory segment
BlockLayout = Tuple[Tuple[str, Tuple[int, ...], str], ...]


def _normalize_layout(layout: Sequence) -> BlockLayout:
    normalized = []
    for entry in layout:
        if len(entry) == 2:
            field, shape = entry
            dtype = "float64"
        else:
            field, shape, dtype = entry
        normalized.append(
            (str(field), tuple(int(s) for s in shape), np.dtype(dtype).name)
        )
    if not normalized:
        raise ValueError("a SharedCounterBlock needs at least one field")
    names = [field for field, _, _ in normalized]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate field names in block layout: {names}")
    return tuple(normalized)


def _layout_nbytes(layout: BlockLayout) -> int:
    return sum(
        int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        for _, shape, dtype in layout
    )


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment by name without resource-tracker registration.

    Before Python 3.13 (``track=False``), ``SharedMemory(name=...)``
    unconditionally registers the segment with the resource tracker, which
    is wrong for a non-owning attachment: under ``spawn`` the attacher's own
    tracker would warn about (and unlink) "leaked" segments the owner is
    still using, and under ``fork`` — where parent and child *share* one
    tracker process — an unregister-after-attach would cancel the owner's
    registration instead.  Suppressing registration during the attach is the
    one behaviour correct for both start methods: the owner's registration
    stays the single source of cleanup truth.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - python < 3.13
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class SharedCounterBlock:
    """A set of named counter arrays living in one shared-memory segment.

    This is the storage layer of the zero-copy sharded-ingestion engine: the
    parent process *creates* one block per worker (owning the segment), each
    worker *attaches* to its block by name and binds its sketch's state
    arrays to the views (:meth:`HashedCounterTable.bind_buffer`), scatter-adds
    land directly in shared memory, and the parent folds the views with
    vectorized ``+=`` — no counter bytes ever cross a pipe.

    Parameters are expressed as a *layout*: a sequence of
    ``(field_name, shape[, dtype])`` entries (dtype defaults to float64),
    packed C-contiguously into a single segment.  The attaching side must
    pass the identical layout — the block has no header; the layout travels
    out of band (it is derived deterministically from the sketch config on
    both sides).

    Lifecycle
    ---------
    * :meth:`create` — allocate a new zero-filled segment (owner).
    * :meth:`attach` — map an existing segment by name (non-owner; the
      attachment is unregistered from the resource tracker so worker exit
      never unlinks a segment the parent still owns).
    * :meth:`close` — drop this process's mapping (views become invalid).
    * :meth:`unlink` — remove the segment from the system (owner only);
      idempotent, and safe to call with workers still mapped (the memory is
      reclaimed once the last mapping closes).

    The owner is a context manager: ``with SharedCounterBlock.create(...) as
    block: ...`` closes *and unlinks* on exit, even on error.
    """

    def __init__(self, layout: Sequence, segment: shared_memory.SharedMemory,
                 owner: bool) -> None:
        self._layout = _normalize_layout(layout)
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self._segment_name = segment.name
        self._owner = bool(owner)
        self._unlinked = False
        self._arrays: Dict[str, np.ndarray] = {}
        offset = 0
        for field, shape, dtype in self._layout:
            count = int(np.prod(shape, dtype=np.int64))
            view = np.frombuffer(
                segment.buf, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
            self._arrays[field] = view
            offset += count * np.dtype(dtype).itemsize

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def create(cls, layout: Sequence,
               name: Optional[str] = None) -> "SharedCounterBlock":
        """Allocate a new zero-filled block; the caller owns the segment."""
        layout = _normalize_layout(layout)
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, _layout_nbytes(layout))
        )
        # POSIX shm is zero-filled on creation; make it explicit anyway so a
        # recycled name can never leak stale counters
        segment.buf[: _layout_nbytes(layout)] = bytes(_layout_nbytes(layout))
        return cls(layout, segment, owner=True)

    @classmethod
    def attach(cls, name: str, layout: Sequence) -> "SharedCounterBlock":
        """Map an existing block by segment name (non-owning)."""
        layout = _normalize_layout(layout)
        segment = _attach_untracked(name)
        if segment.size < _layout_nbytes(layout):
            segment.close()
            raise ValueError(
                f"segment {name!r} holds {segment.size} bytes, layout "
                f"needs {_layout_nbytes(layout)}"
            )
        return cls(layout, segment, owner=False)

    # -- access ---------------------------------------------------------- #
    @property
    def name(self) -> str:
        """System-wide segment name workers attach by."""
        return self._segment_name

    @property
    def layout(self) -> BlockLayout:
        return self._layout

    @property
    def nbytes(self) -> int:
        """Payload bytes of the layout (segment may be page-rounded larger)."""
        return _layout_nbytes(self._layout)

    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def closed(self) -> bool:
        return self._segment is None

    @property
    def arrays(self) -> Dict[str, np.ndarray]:
        """Live views into the segment, keyed by layout field name."""
        if self._segment is None:
            raise ValueError("block is closed")
        return self._arrays

    def zero(self) -> None:
        """Reset every field to zero in place."""
        for view in self.arrays.values():
            view[...] = 0

    # -- lifecycle ------------------------------------------------------- #
    def close(self) -> None:
        """Drop this process's mapping.  Views handed out become invalid.

        If a bound sketch still references a view, the underlying mmap
        cannot be released yet — the mapping then dies with the process,
        which is fine (``unlink`` is what returns the memory to the OS).
        """
        if self._segment is None:
            return
        segment, self._segment = self._segment, None
        self._arrays = {}
        try:
            segment.close()
        except BufferError:
            # views are still referenced elsewhere (e.g. a sketch bound to
            # this block): the mapping dies with the process instead.
            # Neutralise the handle's close so its __del__ at interpreter
            # shutdown does not retry and spew "Exception ignored" noise.
            segment.close = lambda: None  # type: ignore[method-assign]

    def unlink(self) -> None:
        """Remove the segment system-wide (owner only; idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        if self._segment is not None:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        else:  # pragma: no cover - close() before unlink()
            try:
                shared_memory.SharedMemory(name=self._segment_name).unlink()
            except Exception:
                pass

    def __enter__(self) -> "SharedCounterBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()
        self.close()

    def __del__(self) -> None:
        # Route garbage collection through the BufferError-safe close: when
        # a block and its view-holding arrays die in the same gc pass, the
        # raw SharedMemory.__del__ might run first and raise.  (Unlinking
        # stays the owner's explicit job — for pools, the weakref.finalize
        # backstop in repro.streaming.sharded.)
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._segment is None else self._segment.name
        fields = ", ".join(field for field, _, _ in self._layout)
        return f"SharedCounterBlock({state}, fields=[{fields}])"
