"""Internal helper: a depth × width counter table addressed by hashed buckets.

All table-based sketches (Count-Min, Count-Median, Count-Sketch and their
conservative-update variants, plus the bias-aware sketches built on top) share
the same storage layout: a ``(depth, width)`` array of counters, a per-row
hash function assigning coordinates to buckets, and optionally a per-row sign
function.  This module centralises that machinery so the individual sketch
classes stay focused on their estimation rule.

Bucket (and sign) assignments are computed **on demand** with the fused
row-stacked :func:`~repro.hashing.families.hash_matrix` evaluator rather than
being precomputed per coordinate, so a table occupies O(depth × width) memory
regardless of the universe size — ``dimension`` may even be ``None``
(hashed-key mode), in which case any non-negative 64-bit integer is a valid
key.  A small block cache keeps the assignments of the hottest (lowest) keys
materialised, which restores the one-gather fast path for the dense small
universes the evaluation harness sweeps.

Data-independent structure that *is* O(width) — the per-bucket coordinate
counts π / sign sums ψ needed by the bias-aware recovery — is computed by a
blockwise scan over the (necessarily bounded) domain and memoised in a
module-level cache keyed by the table's structural identity, so copies,
restored shards and distributed replicas share one array instead of paying
the O(n) scan each.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro.hashing.families import KWiseHash, hash_family, hash_matrix
from repro.hashing.signs import SignHash, sign_family, sign_matrix
from repro.sketches.base import SCAN_BLOCK
from repro.utils.rng import RandomSource, derive_seed

#: keys below this bound have their bucket/sign assignments cached (hot-key
#: block cache); memory cost is O(depth × block), independent of ``dimension``,
#: and for universes up to the block size the cache restores the exact
#: one-gather fast path of the old precomputed tables
DEFAULT_CACHE_BLOCK = 1 << 16


#: memoised column sums shared across tables with identical structure;
#: bounded both by entry count and by total bytes so a long-lived process
#: sweeping many seeds (or large widths) cannot pin unbounded memory
_COLUMN_SUMS_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
_COLUMN_SUMS_CACHE_LIMIT = 32
_COLUMN_SUMS_CACHE_MAX_BYTES = 64 * 2**20

#: memoised hot-key block caches (bucket + sign assignments of the lowest
#: keys), shared across tables with identical structure the same way: the
#: assignments are pure functions of the seed-derived hash family, so the
#: panes of a sliding window, shard replicas and copies all read one
#: read-only block instead of re-hashing the hot range per instance
_HOT_BLOCK_CACHE: "OrderedDict[Tuple, Tuple]" = OrderedDict()
_HOT_BLOCK_CACHE_LIMIT = 16
_HOT_BLOCK_CACHE_MAX_BYTES = 128 * 2**20


def _unbounded_error(operation: str) -> ValueError:
    return ValueError(
        f"{operation} requires a bounded dimension; this table was built in "
        "hashed-key mode (dimension=None), where the key universe cannot be "
        "enumerated"
    )


class HashedCounterTable:
    """A ``(depth, width)`` counter table with per-row hashed bucket assignment.

    Parameters
    ----------
    dimension:
        Vector dimension ``n``, or ``None`` for hashed-key mode (any
        non-negative 64-bit integer key; domain-enumerating operations
        such as :meth:`add_vector` and :meth:`column_sums` become
        unavailable).
    width, depth:
        Buckets per row ``s``, number of rows ``d``.
    signed:
        When True, a per-row random sign function is drawn and applied to
        every update (Count-Sketch layout); when False updates are unsigned
        (Count-Min / Count-Median layout).
    seed:
        Randomness for the hash (and sign) functions.  The table derives
        distinct child seeds for the hash family and the sign family so that
        tables built from the same seed are identical.
    """

    def __init__(
        self,
        dimension: Optional[int],
        width: int,
        depth: int,
        signed: bool = False,
        seed: RandomSource = None,
    ) -> None:
        self.dimension = None if dimension is None else int(dimension)
        self.width = int(width)
        self.depth = int(depth)
        self.signed = bool(signed)
        self._seed = seed

        hash_seed = derive_seed(seed, 101)
        self.hashes: List[KWiseHash] = hash_family(depth, width, seed=hash_seed)

        self.signs: Optional[List[SignHash]] = None
        if signed:
            sign_seed = derive_seed(seed, 202)
            self.signs = sign_family(depth, seed=sign_seed)

        #: the counters themselves — the only O(width) mutable state
        self.table = np.zeros((depth, width), dtype=np.float64)
        # per-row offsets into the flattened table, used by the batched
        # scatter-add (shape (depth, 1) so it broadcasts against gathers)
        self._row_offsets = (np.arange(depth, dtype=np.int64) * width)[:, None]

        # hot-key block cache: assignments of keys in [0, cache_limit)
        if self.dimension is None:
            self._cache_limit = DEFAULT_CACHE_BLOCK
        else:
            self._cache_limit = min(self.dimension, DEFAULT_CACHE_BLOCK)
        self._bucket_cache: Optional[np.ndarray] = None
        self._sign_cache: Optional[np.ndarray] = None
        if self.dimension is not None and self.dimension <= DEFAULT_CACHE_BLOCK:
            # a small bounded universe is fully covered by the cache — fill
            # it now, which is exactly the (capped) precomputation the old
            # dense tables did at construction; large and unbounded
            # universes stay lazy so construction is O(depth × width)
            self._ensure_hot_cache()
        # per-instance memo of column_sums() (which itself consults the
        # module-level structural cache); the bias-aware sketches read their
        # π/ψ through this
        self._cached_column_sums: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # on-demand addressing
    # ------------------------------------------------------------------ #
    def _ensure_hot_cache(self) -> None:
        if self._bucket_cache is not None:
            return
        key = self._structure_key()
        if key is not None:
            cached = _HOT_BLOCK_CACHE.get(key)
            if cached is not None:
                _HOT_BLOCK_CACHE.move_to_end(key)
                self._bucket_cache, self._sign_cache = cached
                return
        hot = np.arange(self._cache_limit, dtype=np.int64)
        self._bucket_cache = hash_matrix(self.hashes, hot)
        if self.signed:
            self._sign_cache = sign_matrix(self.signs, hot).astype(np.float64)
        if key is not None:
            self._bucket_cache.setflags(write=False)
            if self._sign_cache is not None:
                self._sign_cache.setflags(write=False)
            _HOT_BLOCK_CACHE[key] = (self._bucket_cache, self._sign_cache)
            while len(_HOT_BLOCK_CACHE) > _HOT_BLOCK_CACHE_LIMIT or (
                len(_HOT_BLOCK_CACHE) > 1
                and sum(
                    bucket.nbytes + (0 if sign is None else sign.nbytes)
                    for bucket, sign in _HOT_BLOCK_CACHE.values()
                ) > _HOT_BLOCK_CACHE_MAX_BYTES
            ):
                _HOT_BLOCK_CACHE.popitem(last=False)

    def _checked_keys(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            low = int(indices.min())
            if low < 0:
                raise IndexError(f"keys must be non-negative, got {low}")
            if self.dimension is not None:
                high = int(indices.max())
                if high >= self.dimension:
                    raise IndexError(
                        f"keys must be in [0, {self.dimension}), got {high}"
                    )
        return indices

    def _gather(self, indices: np.ndarray, cache_name: str, evaluate,
                dtype) -> np.ndarray:
        """Serve a batch of keys from the hot cache, ``evaluate``, or both."""
        indices = self._checked_keys(indices)
        if indices.size == 0:
            return np.empty((self.depth, 0), dtype=dtype)
        cold = indices >= self._cache_limit
        if not cold.any():
            self._ensure_hot_cache()
            return getattr(self, cache_name)[:, indices]
        if cold.all():
            return evaluate(indices)
        self._ensure_hot_cache()
        out = np.empty((self.depth, indices.size), dtype=dtype)
        hot = ~cold
        out[:, hot] = getattr(self, cache_name)[:, indices[hot]]
        out[:, cold] = evaluate(indices[cold])
        return out

    def bucket_columns(self, indices: np.ndarray) -> np.ndarray:
        """The ``(depth, len(indices))`` bucket matrix for a batch of keys.

        Column ``j`` holds ``h_r(indices[j])`` for every row ``r``, computed
        with one fused :func:`hash_matrix` pass (hot keys come from the block
        cache instead).
        """
        return self._gather(
            indices, "_bucket_cache",
            lambda keys: hash_matrix(self.hashes, keys), np.int64,
        )

    def _checked_key(self, index: int) -> None:
        if index < 0:
            raise IndexError(f"keys must be non-negative, got {index}")
        if self.dimension is not None and index >= self.dimension:
            raise IndexError(
                f"keys must be in [0, {self.dimension}), got {index}"
            )

    def bucket_column(self, index: int) -> np.ndarray:
        """The ``(depth,)`` bucket assignments of one key."""
        self._checked_key(index)
        if index < self._cache_limit:
            self._ensure_hot_cache()
            return self._bucket_cache[:, index]
        # cold scalar path: the exact-integer scalar evaluator beats
        # one-element numpy array machinery by several microseconds per
        # update (bit-identical results)
        return np.array([h(index) for h in self.hashes], dtype=np.int64)

    def _require_signed(self) -> None:
        if not self.signed:
            raise ValueError(
                "this table is unsigned (Count-Min / Count-Median layout); "
                "sign functions exist only for signed (Count-Sketch) tables"
            )

    def sign_columns(self, indices: np.ndarray) -> np.ndarray:
        """The ``(depth, len(indices))`` ±1 sign matrix for a batch of keys."""
        self._require_signed()
        return self._gather(
            indices, "_sign_cache",
            lambda keys: sign_matrix(self.signs, keys).astype(np.float64),
            np.float64,
        )

    def sign_column(self, index: int) -> np.ndarray:
        """The ``(depth,)`` ±1 signs of one key."""
        self._require_signed()
        self._checked_key(index)
        if index < self._cache_limit:
            self._ensure_hot_cache()
            return self._sign_cache[:, index]
        return np.array([r(index) for r in self.signs], dtype=np.float64)

    @property
    def buckets(self) -> np.ndarray:
        """The dense ``(depth, dimension)`` bucket table, materialised on read.

        Kept for inspection and backwards compatibility only: it costs
        O(depth × dimension) memory per access and is unavailable in
        hashed-key mode.  Production code addresses the table through
        :meth:`bucket_columns` / :meth:`bucket_column`.
        """
        if self.dimension is None:
            raise _unbounded_error("materialising the dense bucket table")
        return self.bucket_columns(np.arange(self.dimension, dtype=np.int64))

    @property
    def sign_values(self) -> Optional[np.ndarray]:
        """Dense ``(depth, dimension)`` sign table (see :attr:`buckets`)."""
        if not self.signed:
            return None
        if self.dimension is None:
            raise _unbounded_error("materialising the dense sign table")
        return self.sign_columns(np.arange(self.dimension, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def add_update(self, index: int, delta: float) -> None:
        """Apply ``x[index] += delta`` to every row of the table."""
        rows = np.arange(self.depth)
        cols = self.bucket_column(index)
        if self.signed:
            self.table[rows, cols] += delta * self.sign_column(index)
        else:
            self.table[rows, cols] += delta

    def add_batch(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a batch of ``(index, delta)`` updates to every row at once.

        The scatter-add is performed with one ``np.bincount`` over the
        flattened ``(depth, width)`` table per :data:`SCAN_BLOCK` chunk:
        per-row bucket columns are hashed for the chunk in one fused pass,
        offset by ``row * width``, and accumulated in one go — so transient
        memory stays O(depth × block) no matter how large the batch.  For
        integer-valued deltas the resulting counters are bit-exact equal to
        replaying the batch through :meth:`add_update`; for general floats
        they agree up to summation order.
        """
        indices = np.asarray(indices)
        if indices.size == 0:
            return
        deltas = np.broadcast_to(deltas, indices.shape)
        for start in range(0, indices.size, SCAN_BLOCK):
            stop = start + SCAN_BLOCK
            chunk = indices[start:stop]
            cols = self.bucket_columns(chunk)
            if self.signed:
                weights = deltas[start:stop] * self.sign_columns(chunk)
            else:
                weights = np.broadcast_to(deltas[start:stop], cols.shape)
            flat = cols + self._row_offsets
            self.table += np.bincount(
                flat.ravel(), weights=weights.ravel(),
                minlength=self.table.size,
            ).reshape(self.depth, self.width)

    def add_vector(self, x: np.ndarray) -> None:
        """Apply a whole frequency vector ``x`` at once (vectorised path).

        The domain is scanned in blocks of :data:`SCAN_BLOCK` coordinates so
        transient memory stays O(depth × block) even for huge universes.
        """
        if self.dimension is None:
            raise _unbounded_error("ingesting a dense frequency vector")
        x = np.asarray(x, dtype=np.float64)
        for start in range(0, self.dimension, SCAN_BLOCK):
            stop = min(start + SCAN_BLOCK, self.dimension)
            block = np.arange(start, stop, dtype=np.int64)
            cols = self.bucket_columns(block)
            signs = self.sign_columns(block) if self.signed else None
            values = x[start:stop]
            for row in range(self.depth):
                weights = values if signs is None else values * signs[row]
                self.table[row] += np.bincount(
                    cols[row], weights=weights, minlength=self.width
                )

    # ------------------------------------------------------------------ #
    # estimates
    # ------------------------------------------------------------------ #
    def row_estimates(self, index: int) -> np.ndarray:
        """Per-row estimates of coordinate ``index`` (sign-corrected if signed)."""
        rows = np.arange(self.depth)
        values = self.table[rows, self.bucket_column(index)]
        if self.signed:
            values = values * self.sign_column(index)
        return values

    def row_estimates_batch(self, indices: np.ndarray) -> np.ndarray:
        """A ``(depth, len(indices))`` array of per-row estimates for a batch.

        Column ``j`` equals :meth:`row_estimates` of ``indices[j]``; the whole
        batch is hashed and gathered in one pass.
        """
        cols = self.bucket_columns(indices)
        values = np.take_along_axis(self.table, cols, axis=1)
        if self.signed:
            values = values * self.sign_columns(indices)
        return values

    # ------------------------------------------------------------------ #
    # structural vectors used by the bias-aware recovery
    # ------------------------------------------------------------------ #
    def _structure_key(self) -> Optional[Tuple]:
        """Cache key identifying this table's data-independent structure."""
        seed = self._seed
        if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
            return None
        return (int(seed), self.dimension, self.width, self.depth, self.signed)

    def column_sums(self) -> np.ndarray:
        """Per-row column sums: π (unsigned) or ψ (signed), shape (depth, width).

        Row ``r`` holds the coordinate-wise sum of the columns of the r-th
        CM/CS matrix, i.e. the per-bucket count of coordinates (unsigned) or
        the per-bucket sum of signs (signed).  The bias-aware recovery
        subtracts ``β̂`` times these from the counters.

        Computed by a blockwise scan over the domain (O(n) time once,
        O(depth × block) transient memory) and memoised per structural
        identity, so copies and restored replicas of the same table share a
        single read-only array instead of re-scanning the domain.
        """
        if self.dimension is None:
            raise _unbounded_error("computing per-bucket coordinate counts")
        key = self._structure_key()
        if key is not None:
            cached = _COLUMN_SUMS_CACHE.get(key)
            if cached is not None:
                _COLUMN_SUMS_CACHE.move_to_end(key)
                return cached
        sums = np.zeros((self.depth, self.width), dtype=np.float64)
        for start in range(0, self.dimension, SCAN_BLOCK):
            stop = min(start + SCAN_BLOCK, self.dimension)
            block = np.arange(start, stop, dtype=np.int64)
            cols = self.bucket_columns(block)
            signs = self.sign_columns(block) if self.signed else None
            for row in range(self.depth):
                weights = None if signs is None else signs[row]
                sums[row] += np.bincount(
                    cols[row], weights=weights, minlength=self.width
                )
        if key is not None:
            sums.setflags(write=False)
            _COLUMN_SUMS_CACHE[key] = sums
            while len(_COLUMN_SUMS_CACHE) > _COLUMN_SUMS_CACHE_LIMIT or (
                len(_COLUMN_SUMS_CACHE) > 1
                and sum(a.nbytes for a in _COLUMN_SUMS_CACHE.values())
                > _COLUMN_SUMS_CACHE_MAX_BYTES
            ):
                _COLUMN_SUMS_CACHE.popitem(last=False)
        return sums

    def cached_column_sums(self) -> np.ndarray:
        """:meth:`column_sums`, memoised on the instance.

        π/ψ are data-independent and O(n) to scan for; computing them lazily
        on first use keeps construction O(depth × width).  The result must be
        treated as read-only (int-seeded tables share it across replicas).
        """
        if self._cached_column_sums is None:
            self._cached_column_sums = self.column_sums()
        return self._cached_column_sums

    # ------------------------------------------------------------------ #
    # linear-algebra operations
    # ------------------------------------------------------------------ #
    def merge_from(self, other: "HashedCounterTable") -> None:
        """Add another table's counters (caller checks hash compatibility)."""
        self.table += other.table

    def scale_by(self, factor: float) -> None:
        """Multiply all counters by ``factor``."""
        self.table *= factor

    # ------------------------------------------------------------------ #
    # state protocol support
    # ------------------------------------------------------------------ #
    def load_table(self, table) -> None:
        """Replace the counters with a restored snapshot (shape-checked)."""
        arr = np.array(table, dtype=np.float64)
        if arr.shape != (self.depth, self.width):
            raise ValueError(
                f"restored table has shape {arr.shape}, expected "
                f"({self.depth}, {self.width})"
            )
        self.table = arr

    @property
    def counter_count(self) -> int:
        """Number of counters stored."""
        return self.depth * self.width
