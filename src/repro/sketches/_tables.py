"""Internal helper: a depth × width counter table addressed by hashed buckets.

All table-based sketches (Count-Min, Count-Median, Count-Sketch and their
conservative-update variants, plus the bias-aware sketches built on top) share
the same storage layout: a ``(depth, width)`` array of counters, a per-row
hash function assigning each of the ``dimension`` coordinates to a bucket, and
optionally a per-row sign function.  This module centralises that machinery so
the individual sketch classes stay focused on their estimation rule.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hashing.families import KWiseHash, hash_family
from repro.hashing.signs import SignHash, sign_family
from repro.utils.rng import RandomSource, derive_seed


class HashedCounterTable:
    """A ``(depth, width)`` counter table with per-row hashed bucket assignment.

    Parameters
    ----------
    dimension, width, depth:
        Vector dimension ``n``, buckets per row ``s``, number of rows ``d``.
    signed:
        When True, a per-row random sign function is drawn and applied to
        every update (Count-Sketch layout); when False updates are unsigned
        (Count-Min / Count-Median layout).
    seed:
        Randomness for the hash (and sign) functions.  The table derives
        distinct child seeds for the hash family and the sign family so that
        tables built from the same seed are identical.
    """

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        signed: bool = False,
        seed: RandomSource = None,
    ) -> None:
        self.dimension = int(dimension)
        self.width = int(width)
        self.depth = int(depth)
        self.signed = bool(signed)

        hash_seed = derive_seed(seed, 101)
        self.hashes: List[KWiseHash] = hash_family(depth, width, seed=hash_seed)
        #: bucket assignment per row: buckets[r, j] = h_r(j)
        self.buckets = np.vstack([h.hash_all(dimension) for h in self.hashes])

        self.signs: Optional[List[SignHash]] = None
        self.sign_values: Optional[np.ndarray] = None
        if signed:
            sign_seed = derive_seed(seed, 202)
            self.signs = sign_family(depth, seed=sign_seed)
            self.sign_values = np.vstack(
                [r.sign_all(dimension) for r in self.signs]
            ).astype(np.float64)

        #: the counters themselves
        self.table = np.zeros((depth, width), dtype=np.float64)
        # per-row offsets into the flattened table, used by the batched
        # scatter-add (shape (depth, 1) so it broadcasts against gathers)
        self._row_offsets = (np.arange(depth, dtype=np.int64) * width)[:, None]

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def add_update(self, index: int, delta: float) -> None:
        """Apply ``x[index] += delta`` to every row of the table."""
        rows = np.arange(self.depth)
        cols = self.buckets[:, index]
        if self.signed:
            self.table[rows, cols] += delta * self.sign_values[:, index]
        else:
            self.table[rows, cols] += delta

    def add_batch(self, indices: np.ndarray, deltas: np.ndarray) -> None:
        """Apply a batch of ``(index, delta)`` updates to every row at once.

        The scatter-add is performed with a single ``np.bincount`` over the
        flattened ``(depth, width)`` table: per-row bucket columns are gathered
        for the whole batch, offset by ``row * width``, and accumulated in one
        pass.  For integer-valued deltas the resulting counters are bit-exact
        equal to replaying the batch through :meth:`add_update`; for general
        floats they agree up to summation order.
        """
        indices = np.asarray(indices)
        if indices.size == 0:
            return
        cols = self.buckets[:, indices]
        if self.signed:
            weights = deltas * self.sign_values[:, indices]
        else:
            weights = np.broadcast_to(deltas, cols.shape)
        flat = cols + self._row_offsets
        self.table += np.bincount(
            flat.ravel(), weights=weights.ravel(), minlength=self.table.size
        ).reshape(self.depth, self.width)

    def add_vector(self, x: np.ndarray) -> None:
        """Apply a whole frequency vector ``x`` at once (vectorised path)."""
        for row in range(self.depth):
            weights = x if not self.signed else x * self.sign_values[row]
            self.table[row] += np.bincount(
                self.buckets[row], weights=weights, minlength=self.width
            )

    # ------------------------------------------------------------------ #
    # estimates
    # ------------------------------------------------------------------ #
    def row_estimates(self, index: int) -> np.ndarray:
        """Per-row estimates of coordinate ``index`` (sign-corrected if signed)."""
        rows = np.arange(self.depth)
        values = self.table[rows, self.buckets[:, index]]
        if self.signed:
            values = values * self.sign_values[:, index]
        return values

    def row_estimates_batch(self, indices: np.ndarray) -> np.ndarray:
        """A ``(depth, len(indices))`` array of per-row estimates for a batch.

        Column ``j`` equals :meth:`row_estimates` of ``indices[j]``; the whole
        batch is gathered with one fancy-indexing pass.
        """
        cols = self.buckets[:, indices]
        values = np.take_along_axis(self.table, cols, axis=1)
        if self.signed:
            values = values * self.sign_values[:, indices]
        return values

    def all_row_estimates(self) -> np.ndarray:
        """A ``(depth, dimension)`` array of per-row estimates for all coordinates."""
        estimates = np.take_along_axis(self.table, self.buckets, axis=1)
        if self.signed:
            estimates = estimates * self.sign_values
        return estimates

    # ------------------------------------------------------------------ #
    # structural vectors used by the bias-aware recovery
    # ------------------------------------------------------------------ #
    def column_sums(self) -> np.ndarray:
        """Per-row column sums: π (unsigned) or ψ (signed), shape (depth, width).

        Row ``r`` holds the coordinate-wise sum of the columns of the r-th
        CM/CS matrix, i.e. the per-bucket count of coordinates (unsigned) or
        the per-bucket sum of signs (signed).  The bias-aware recovery
        subtracts ``β̂`` times these from the counters.
        """
        sums = np.zeros((self.depth, self.width), dtype=np.float64)
        for row in range(self.depth):
            weights = None if not self.signed else self.sign_values[row]
            sums[row] = np.bincount(
                self.buckets[row], weights=weights, minlength=self.width
            )
        return sums

    # ------------------------------------------------------------------ #
    # linear-algebra operations
    # ------------------------------------------------------------------ #
    def merge_from(self, other: "HashedCounterTable") -> None:
        """Add another table's counters (caller checks hash compatibility)."""
        self.table += other.table

    def scale_by(self, factor: float) -> None:
        """Multiply all counters by ``factor``."""
        self.table *= factor

    # ------------------------------------------------------------------ #
    # state protocol support
    # ------------------------------------------------------------------ #
    def load_table(self, table) -> None:
        """Replace the counters with a restored snapshot (shape-checked)."""
        arr = np.array(table, dtype=np.float64)
        if arr.shape != (self.depth, self.width):
            raise ValueError(
                f"restored table has shape {arr.shape}, expected "
                f"({self.depth}, {self.width})"
            )
        self.table = arr

    @property
    def counter_count(self) -> int:
        """Number of counters stored."""
        return self.depth * self.width
