"""Count-Min with conservative update (CM-CU) [Estan & Varghese 2002; Goyal et al. 2012].

Conservative update only raises a counter as far as is necessary for the
current item's estimate to reflect the new total: on an update ``(i, Δ)`` the
current estimate ``m = min_r table[r, h_r(i)]`` is computed and every counter
of item ``i`` is set to ``max(counter, m + Δ)``.  This strictly tightens the
Count-Min over-estimate, which is why the paper compares against CM-CU rather
than plain Count-Min (Section 5.1).

The price is the loss of linearity: CM-CU sketches of two sub-streams cannot
be merged into the sketch of their union, so CM-CU cannot be used in the
distributed model.  Accordingly this class implements :class:`Sketch` but not
:class:`LinearSketch`; calling :meth:`merge` raises
:class:`~repro.api.CapabilityError` (a ``TypeError`` subclass).

Order-dependence does **not** force scalar ingestion, though.  Batches flush
through the segmented engine of :mod:`repro.sketches._cu_batch`: a
run-coalesced batch is split into maximal *conflict-free segments* —
consecutive runs whose ``(row, bucket)`` footprints are pairwise disjoint.
Within a segment no run can read a counter another run writes, so every run
observes exactly the table state the scalar replay would show it, and the
min/max rule vectorises over the whole segment (one gather, ``min`` over
depth, ``target = min + Δ``, one ``np.maximum`` scatter).  Only true
collisions force a segment boundary and order across segments is preserved,
so the batched state is **bit-identical** to scalar replay for integer
deltas (float deltas match to coalescing order).  This is what makes CM-CU
*exact-batchable* without being linear — the capability
(``SketchSpec.exact_batch``) that lets tumbling-mode windows accept CU
kinds: tumbling panes are independent and never merge, so the pane ring
never needs the merge algebra (sliding and decay windows still do, and
still reject CU kinds).

Only non-negative increments are supported (cash-register streams), matching
the original definition.
"""

from __future__ import annotations

import numpy as np

from repro.serialization import register_serializable
from repro.sketches import _cu_batch
from repro.sketches._tables import HashedCounterTable
from repro.sketches.base import SCAN_BLOCK, Sketch
from repro.utils.rng import RandomSource


class CountMinCU(Sketch):
    """Count-Min with conservative update (non-linear, cash-register only)."""

    name = "count_min_cu"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        seed: RandomSource = None,
    ) -> None:
        super().__init__(dimension, width, depth, seed=seed)
        self._table = HashedCounterTable(
            dimension, width, depth, signed=False, seed=seed
        )
        self._rows = np.arange(depth)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        delta = float(delta)
        if delta < 0:
            raise ValueError(
                "conservative update only supports non-negative increments"
            )
        if delta == 0:
            return
        cols = self._table.bucket_column(index)
        current = self._table.table[self._rows, cols]
        target = float(np.min(current)) + delta
        self._table.table[self._rows, cols] = np.maximum(current, target)
        self._items_processed += 1

    def update_batch(self, indices, deltas=None) -> "CountMinCU":
        """Segmented vectorised batch ingestion preserving stream order.

        Consecutive runs of the same index are coalesced into one weighted
        update (exact for CM-CU: applying ``Δ₁`` then ``Δ₂`` to an untouched
        item raises its counters exactly as ``Δ₁ + Δ₂`` does), then the runs
        flush through the conflict-free segments of
        :mod:`repro.sketches._cu_batch` — the final state equals scalar
        replay bit-identically for integer deltas.  Work proceeds one
        :data:`SCAN_BLOCK` chunk at a time so transient memory stays
        O(depth × block) however large the batch.
        """
        idx, d = self._check_batch(indices, deltas)
        if np.any(d < 0):
            raise ValueError(
                "conservative update only supports non-negative increments"
            )
        if idx.size == 0:
            return self
        applied = int(np.count_nonzero(d))
        run_indices, run_deltas = _cu_batch.coalesce_runs(idx, d)
        live = run_deltas != 0
        if not live.all():
            run_indices = run_indices[live]
            run_deltas = run_deltas[live]
        self._flush_runs(run_indices, run_deltas)
        self._items_processed += applied
        return self

    def _flush_runs(self, run_indices: np.ndarray, run_deltas: np.ndarray) -> None:
        """Apply coalesced non-zero runs through the segmented engine."""
        table = self._table.table
        table_cells = self.depth * self.width
        for begin in range(0, run_indices.size, SCAN_BLOCK):
            stop = begin + SCAN_BLOCK
            cols = self._table.bucket_columns(run_indices[begin:stop])
            cells = _cu_batch.flat_cells(cols, self.width)
            bounds = _cu_batch.segment_bounds(cells, table_cells)
            _cu_batch.apply_conservative(
                table, cells, run_deltas[begin:stop], bounds
            )

    def fit(self, x) -> "CountMinCU":
        """Ingest a frequency vector by one weighted conservative update per item.

        Conservative update is order-dependent; this replays the non-zero
        coordinates in increasing index order with their full weight — the
        standard batch convention, and what the evaluation harness uses for
        every algorithm so the comparison stays fair.  The replay rides the
        segmented batch path (the coordinates are distinct and sorted, so
        coalescing is a no-op and the result matches the scalar loop
        bit-identically).
        """
        arr = self._check_vector(x)
        if np.any(arr < 0):
            raise ValueError("CM-CU requires a non-negative frequency vector")
        indices = np.flatnonzero(arr)
        if indices.size:
            self.update_batch(indices, arr[indices])
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, index: int) -> float:
        index = self._check_index(index)
        return float(np.min(self._table.row_estimates(index)))

    def query_batch(self, indices) -> np.ndarray:
        idx, _ = self._check_batch(indices, None)
        return np.min(self._table.row_estimates_batch(idx), axis=0)

    # ------------------------------------------------------------------ #
    # non-linearity is the point
    # ------------------------------------------------------------------ #
    def merge(self, other) -> "CountMinCU":
        """CM-CU is not a linear sketch; merging is undefined."""
        # local import: repro.api.errors is below the sketch layer only at
        # runtime (the registry imports this module at api import time)
        from repro.api.errors import CapabilityError

        raise CapabilityError(
            "Count-Min with conservative update is not linear and cannot be "
            "merged; use CountMin, CountMedian, CountSketch or the bias-aware "
            "sketches in the distributed model"
        )

    def size_in_words(self) -> int:
        return self._table.counter_count

    def _state_arrays(self):
        return {"table": self._table.table}

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        self._table.load_table(arrays["table"])

    @property
    def table(self) -> np.ndarray:
        """The raw ``(depth, width)`` counter table (for inspection)."""
        return self._table.table


register_serializable(CountMinCU)
