"""Count-Min with conservative update (CM-CU) [Estan & Varghese 2002; Goyal et al. 2012].

Conservative update only raises a counter as far as is necessary for the
current item's estimate to reflect the new total: on an update ``(i, Δ)`` the
current estimate ``m = min_r table[r, h_r(i)]`` is computed and every counter
of item ``i`` is set to ``max(counter, m + Δ)``.  This strictly tightens the
Count-Min over-estimate, which is why the paper compares against CM-CU rather
than plain Count-Min (Section 5.1).

The price is the loss of linearity: CM-CU sketches of two sub-streams cannot
be merged into the sketch of their union, so CM-CU cannot be used in the
distributed model.  Accordingly this class implements :class:`Sketch` but not
:class:`LinearSketch`; calling :meth:`merge` raises ``TypeError``.

Only non-negative increments are supported (cash-register streams), matching
the original definition.
"""

from __future__ import annotations

import numpy as np

from repro.serialization import register_serializable
from repro.sketches._tables import HashedCounterTable
from repro.sketches.base import SCAN_BLOCK, Sketch
from repro.utils.rng import RandomSource


class CountMinCU(Sketch):
    """Count-Min with conservative update (non-linear, cash-register only)."""

    name = "count_min_cu"

    def __init__(
        self,
        dimension: int,
        width: int,
        depth: int,
        seed: RandomSource = None,
    ) -> None:
        super().__init__(dimension, width, depth, seed=seed)
        self._table = HashedCounterTable(
            dimension, width, depth, signed=False, seed=seed
        )
        self._rows = np.arange(depth)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def update(self, index: int, delta: float = 1.0) -> None:
        index = self._check_index(index)
        delta = float(delta)
        if delta < 0:
            raise ValueError(
                "conservative update only supports non-negative increments"
            )
        if delta == 0:
            return
        cols = self._table.bucket_column(index)
        current = self._table.table[self._rows, cols]
        target = float(np.min(current)) + delta
        self._table.table[self._rows, cols] = np.maximum(current, target)
        self._items_processed += 1

    def update_batch(self, indices, deltas=None) -> "CountMinCU":
        """Chunked semi-vectorised batch ingestion preserving stream order.

        Conservative update is order-dependent, so the batch cannot be a
        single scatter-add.  Instead the bucket columns of the whole chunk are
        gathered up front (one fancy-indexing pass instead of one per update)
        and consecutive runs of the *same* index are coalesced into one
        weighted update — exact for CM-CU, since applying ``Δ₁`` then ``Δ₂``
        to an untouched item raises its counters exactly as ``Δ₁ + Δ₂`` does.
        The remaining per-run loop applies the usual min/max rule in stream
        order, so the final state equals the scalar replay (bit-identical for
        integer-valued deltas).
        """
        idx, d = self._check_batch(indices, deltas)
        if np.any(d < 0):
            raise ValueError(
                "conservative update only supports non-negative increments"
            )
        if idx.size == 0:
            return self
        applied = int(np.count_nonzero(d))
        # coalesce consecutive runs of the same index
        starts = np.concatenate(([0], np.flatnonzero(np.diff(idx) != 0) + 1))
        run_indices = idx[starts]
        run_deltas = np.add.reduceat(d, starts)
        table = self._table.table
        rows = self._rows
        # gather bucket columns one SCAN_BLOCK chunk at a time so transient
        # memory stays O(depth × block) however large the batch; the
        # conservative min/max rule itself stays sequential in stream order
        for begin in range(0, run_indices.size, SCAN_BLOCK):
            stop = begin + SCAN_BLOCK
            cols = self._table.bucket_columns(run_indices[begin:stop])
            chunk_deltas = run_deltas[begin:stop]
            for j in range(chunk_deltas.size):
                delta = chunk_deltas[j]
                if delta == 0:
                    continue
                run_cols = cols[:, j]
                current = table[rows, run_cols]
                target = float(np.min(current)) + delta
                table[rows, run_cols] = np.maximum(current, target)
        self._items_processed += applied
        return self

    def fit(self, x) -> "CountMinCU":
        """Ingest a frequency vector by one weighted conservative update per item.

        Conservative update is order-dependent; this replays the non-zero
        coordinates in increasing index order with their full weight, which is
        the standard batch convention and what the evaluation harness uses for
        every algorithm so the comparison stays fair.
        """
        arr = self._check_vector(x)
        if np.any(arr < 0):
            raise ValueError("CM-CU requires a non-negative frequency vector")
        for index in np.flatnonzero(arr):
            self.update(int(index), float(arr[index]))
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, index: int) -> float:
        index = self._check_index(index)
        return float(np.min(self._table.row_estimates(index)))

    def query_batch(self, indices) -> np.ndarray:
        idx, _ = self._check_batch(indices, None)
        return np.min(self._table.row_estimates_batch(idx), axis=0)

    # ------------------------------------------------------------------ #
    # non-linearity is the point
    # ------------------------------------------------------------------ #
    def merge(self, other) -> "CountMinCU":
        """CM-CU is not a linear sketch; merging is undefined."""
        raise TypeError(
            "Count-Min with conservative update is not linear and cannot be "
            "merged; use CountMin, CountMedian, CountSketch or the bias-aware "
            "sketches in the distributed model"
        )

    def size_in_words(self) -> int:
        return self._table.counter_count

    def _state_arrays(self):
        return {"table": self._table.table}

    def _load_state_payload(self, arrays, scalars, meta) -> None:
        super()._load_state_payload(arrays, scalars, meta)
        self._table.load_table(arrays["table"])

    @property
    def table(self) -> np.ndarray:
        """The raw ``(depth, width)`` counter table (for inspection)."""
        return self._table.table


register_serializable(CountMinCU)
