"""End-to-end integration tests across packages.

These exercise the realistic usage paths a downstream user would follow:
streaming ingestion + real-time queries, distributed aggregation over sites,
and the consistency between all three ingestion modes (vector, stream,
distributed merge).
"""

import numpy as np
import pytest

from repro.core import StreamingL2BiasAwareSketch
from repro.data.hudong import simulated_hudong
from repro.data.registry import load_dataset
from repro.distributed import Coordinator, Site, partition_vector
from repro.queries.heavy_hitters import heavy_hitters
from repro.sketches.registry import make_sketch
from repro.streaming.generators import stream_from_items, stream_from_vector
from repro.streaming.runner import StreamRunner


class TestThreeIngestionModesAgree:
    """Vector fit, stream replay and distributed merge give the same sketch."""

    @pytest.mark.parametrize("algorithm", ["l1_sr", "l2_sr", "count_sketch"])
    def test_consistency(self, algorithm, rng):
        dimension = 1_200
        vector = rng.poisson(35.0, size=dimension).astype(float)

        batch = make_sketch(algorithm, dimension, 64, 5, seed=101).fit(vector)

        streamed = make_sketch(algorithm, dimension, 64, 5, seed=101)
        for update in stream_from_vector(vector, shuffle=True, seed=3):
            streamed.update(update.index, update.delta)

        locals_ = partition_vector(vector, 3, seed=5, by="items")
        sites = [
            Site(f"site-{i}", lambda: make_sketch(algorithm, dimension, 64, 5,
                                                  seed=101)).observe_vector(local)
            for i, local in enumerate(locals_)
        ]
        merged = Coordinator().collect_all(sites).global_sketch

        np.testing.assert_allclose(batch.recover(), streamed.recover())
        np.testing.assert_allclose(batch.recover(), merged.recover())


class TestStreamingMonitoringScenario:
    """The Hudong-style scenario: ingest an edge stream, query hubs in real time."""

    def test_degree_monitoring(self):
        stream_data = simulated_hudong(dimension=3_000, edges=30_000, seed=21)
        sketch = StreamingL2BiasAwareSketch(3_000, 1_024, 7, seed=23)
        for article, delta in stream_data.iter_updates():
            sketch.update(article, delta)

        truth = stream_data.degree_vector()
        top_articles = np.argsort(truth)[-5:]
        for article in top_articles:
            assert sketch.query(int(article)) == pytest.approx(
                truth[article], abs=0.25 * truth[top_articles].max() + 5.0
            )

    def test_stream_runner_end_to_end(self):
        stream_data = simulated_hudong(dimension=2_000, edges=10_000, seed=25)
        stream = stream_from_items(stream_data.sources, stream_data.dimension)
        runner = StreamRunner(stream)
        report = runner.run(
            StreamingL2BiasAwareSketch(2_000, 512, 5, seed=27), query_count=200,
            seed=29,
        )
        assert report.updates == 10_000
        # average degree is 5; the sketch error stays well below it
        assert report.average_error < 4.0


class TestHeavyHitterScenario:
    """Web-traffic style anomaly detection over a biased count vector."""

    def test_finds_flash_crowd_seconds(self):
        dataset = load_dataset("worldcup", seed=31, dimension=10_000,
                               flash_crowds=3, flash_multiplier=30.0)
        sketch = make_sketch("l2_sr", dataset.dimension, 512, 7, seed=33)
        sketch.fit(dataset.vector)

        threshold = 5.0 * float(np.median(dataset.vector))
        reported = {h.index for h in heavy_hitters(sketch, threshold=threshold)}
        truly_hot = set(np.flatnonzero(dataset.vector > 1.5 * threshold))
        # every strongly hot second is reported (no false negatives among the
        # clear cases); the sketch may add a few borderline false positives
        assert truly_hot <= reported


class TestPublicApiSurface:
    def test_star_import_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_string(self):
        import re

        import repro
        from repro.version import __version__ as module_version

        # sourced from the installed distribution metadata, falling back to
        # the pyproject-pinned version for source checkouts
        assert repro.__version__ == module_version
        assert re.fullmatch(r"\d+\.\d+\.\d+([.\w]*)?", repro.__version__)
