"""Large-universe and hashed-key sessions: the new scenario class.

The refactor's acceptance bar: ``SketchSession.from_config`` with
``dimension = 10^8`` must construct in O(depth × width) memory — nothing
the session allocates may scale with the universe — and the full
ingest → query → save → restore → merge lifecycle must work both at huge
bounded dimensions and in unbounded (``dimension=None``) hashed-key mode.
The CI large-universe smoke job runs this module under a hard RSS cap.
"""

import tracemalloc

import numpy as np
import pytest

from repro.api import CapabilityError, ConfigError, SketchConfig, SketchSession
from repro.queries.heavy_hitters import _heavy_hitters
from repro.queries.topk import StreamingTopK
from repro.sketches.registry import available_sketches, get_spec

HUGE = 10**8
WIDTH = 4_096
DEPTH = 9

#: hard cap on what constructing a huge-universe session may allocate —
#: the counters are depth × width × 8 ≈ 295 KB; anything within the cap is
#: structure-free, anything O(n) would blow it by orders of magnitude
CONSTRUCTION_ALLOCATION_CAP = 8 * 2**20


class TestHugeBoundedUniverse:
    def test_construction_memory_is_universe_independent(self):
        tracemalloc.start()
        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=HUGE, width=WIDTH,
                         depth=DEPTH, seed=3)
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < CONSTRUCTION_ALLOCATION_CAP, (
            f"construction allocated {peak / 2**20:.1f} MiB for n={HUGE}; "
            "the on-demand path must be O(depth × width)"
        )
        assert session.size_in_words() == WIDTH * DEPTH

    def test_ingest_and_query_arbitrary_coordinates(self):
        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=HUGE, width=WIDTH,
                         depth=DEPTH, seed=3)
        )
        rng = np.random.default_rng(0)
        keys = rng.integers(0, HUGE, size=50_000)
        session.ingest(keys, deltas=1.0)
        session.ingest(int(HUGE - 1), 5.0)
        assert session.query(kind="point", index=HUGE - 1) >= 5.0
        estimates = session.query(kind="point", index=keys[:100])
        assert np.all(estimates >= 1.0)

    def test_save_restore_and_merge_at_huge_dimension(self, tmp_path):
        config = SketchConfig("count_sketch", dimension=HUGE, width=256,
                              depth=5, seed=11)
        a = SketchSession.from_config(config).ingest(
            np.array([10**7, 5 * 10**7, 99_999_999]), deltas=7.0
        )
        path = a.save(tmp_path / "huge.sketch")
        restored = SketchSession.open(path)
        assert restored.dimension == HUGE
        b = SketchSession.from_config(config).ingest(
            np.array([10**7]), deltas=3.0
        )
        restored.merge(b)
        assert restored.query(kind="point", index=10**7) == pytest.approx(10.0)

    def test_recover_scans_blockwise(self):
        """recover() transients stay O(block): hashing a 1M-coordinate
        domain in one shot would peak near a gigabyte of uint64 temporaries."""
        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=2**20, width=256, depth=5,
                         seed=3)
        )
        session.ingest(np.array([123_456]), deltas=9.0)
        tracemalloc.start()
        recovered = session.recover()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert recovered.size == 2**20
        assert recovered[123_456] >= 9.0
        assert peak < 150 * 2**20, (
            f"recover peaked at {peak / 2**20:.0f} MiB; the domain must be "
            "evaluated in SCAN_BLOCK chunks"
        )

    def test_range_query_over_huge_key_span(self):
        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=HUGE, width=WIDTH,
                         depth=DEPTH, seed=3)
        )
        session.ingest(np.arange(1000, 1010), deltas=2.0)
        estimate = session.query(kind="range", low=1000, high=1010)
        assert estimate >= 20.0


class TestUnboundedHashedKeyMode:
    def test_unbounded_config_builds_for_declared_algorithms(self):
        for name in available_sketches():
            spec = get_spec(name)
            if spec.unbounded:
                session = SketchSession.from_config(
                    SketchConfig(name, dimension=None, width=64, depth=3,
                                 seed=1)
                )
                assert session.unbounded
                assert session.dimension is None
            else:
                with pytest.raises(ConfigError, match="bounded dimension"):
                    SketchConfig(name, dimension=None, width=64, depth=3)

    def test_streaming_and_batched_updates_with_64_bit_keys(self):
        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=None, width=128, depth=5,
                         seed=2)
        )
        giant_key = 2**62 + 12345
        session.ingest(giant_key, 3.0)
        session.ingest(np.array([giant_key, 17, 2**40]), deltas=2.0)
        assert session.query(kind="point", index=giant_key) >= 5.0
        assert session.query(giant_key) >= 5.0

    def test_float_pairs_with_unrepresentable_keys_are_rejected(self):
        """(index, delta) pairs travel through float64; keys >= 2^53 would
        silently round to a different coordinate, so they must be refused."""
        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=None, width=64, depth=3,
                         seed=2)
        )
        with pytest.raises(ConfigError, match="2\\^53"):
            session.ingest(np.array([[float(2**62 + 12345), 5.0]]))
        # integer-dtype pairs keep full 64-bit precision
        session.ingest(np.array([[2**62 + 12345, 5]], dtype=np.int64))
        assert session.query(kind="point", index=2**62 + 12345) >= 5.0
        # small float pairs keep working
        session.ingest(np.array([[7.0, 2.0]]))
        assert session.query(kind="point", index=7) >= 2.0

    def test_dense_vectors_and_recovery_are_rejected(self):
        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=None, width=64, depth=3,
                         seed=2)
        )
        with pytest.raises(ConfigError, match="dense frequency vector"):
            session.ingest(np.ones(64))
        with pytest.raises(CapabilityError, match="recover"):
            session.recover()
        with pytest.raises(CapabilityError, match="candidates"):
            session.query(kind="heavy_hitters", threshold=1.0)
        with pytest.raises(CapabilityError, match="inner_product"):
            session.query(kind="inner_product", vector=np.ones(4))
        assert not session.supports("inner_product")
        assert session.supports("point")

    def test_candidate_driven_heavy_hitters_via_topk_tracker(self):
        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=None, width=256, depth=5,
                         seed=4)
        )
        tracker = StreamingTopK(session.sketch, k=3)
        rng = np.random.default_rng(1)
        noise = rng.integers(0, 2**60, size=2000)
        hot = [2**55, 2**56 + 1, 2**57 + 2]
        for key in noise.tolist():
            tracker.update(int(key))
        for key in hot:
            for _ in range(50):
                tracker.update(key)
        found = session.query(
            kind="heavy_hitters", threshold=25.0,
            candidates=tracker.candidates(),
        )
        assert set(hot) <= {h.index for h in found}
        assert set(tracker.top_indices()) == set(hot)

    def test_topk_batched_path_tracks_the_same_heavies(self):
        session = SketchSession.from_config(
            SketchConfig("count_sketch", dimension=None, width=256, depth=5,
                         seed=4)
        )
        tracker = StreamingTopK(session.sketch, k=2)
        tracker.update_batch(
            np.array([2**50] * 40 + [7] * 30 + list(range(100, 140)))
        )
        assert set(tracker.top_indices()) == {2**50, 7}

    def test_unbounded_round_trip_preserves_mode(self, tmp_path):
        config = SketchConfig("count_median", dimension=None, width=64,
                              depth=3, seed=9)
        session = SketchSession.from_config(config)
        session.ingest(np.array([2**61, 5]), deltas=4.0)
        restored = SketchSession.open(session.save(tmp_path / "u.sketch"))
        assert restored.unbounded
        assert restored.query(kind="point", index=2**61) == pytest.approx(
            session.query(kind="point", index=2**61)
        )

    def test_unbounded_range_queries_are_capped(self):
        from repro.queries.range_query import MAX_UNBOUNDED_RANGE

        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=None, width=64, depth=3,
                         seed=2)
        )
        session.ingest(np.arange(100, 110), deltas=1.0)
        assert session.query(kind="range", low=100, high=110) >= 10.0
        with pytest.raises(ValueError, match="at most"):
            session.query(kind="range", low=0,
                          high=MAX_UNBOUNDED_RANGE + 2)

    def test_negative_keys_are_rejected_by_the_addressing_layer(self):
        from repro.sketches._tables import HashedCounterTable

        table = HashedCounterTable(None, 32, 3, seed=1)
        with pytest.raises(IndexError, match="non-negative"):
            table.bucket_columns(np.array([3, -1]))
        with pytest.raises(IndexError, match="non-negative"):
            table.bucket_column(-1)

    def test_unbounded_sharded_ingest_matches_single_process(self):
        config = SketchConfig("count_min", dimension=None, width=128,
                              depth=4, seed=6)
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 2**62, size=20_000)
        single = SketchSession.from_config(config).ingest(keys, deltas=1.0)
        sharded = SketchSession.from_config(config).ingest(
            keys, deltas=1.0, shards=2
        )
        np.testing.assert_array_equal(
            single.sketch.table, sharded.sketch.table
        )

    def test_bounded_candidates_mode_matches_domain_scan(self):
        """On bounded sketches candidates= agrees with the full scan."""
        vector = np.zeros(500)
        vector[42] = 100.0
        vector[7] = 80.0
        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=500, width=128, depth=5,
                         seed=5)
        ).ingest(vector)
        scanned = session.query(kind="heavy_hitters", threshold=50.0)
        candidate = _heavy_hitters(
            session.sketch, threshold=50.0, candidates=np.arange(500)
        )
        assert [h.index for h in scanned] == [h.index for h in candidate]
        assert [h.estimate for h in scanned] == [
            h.estimate for h in candidate
        ]
