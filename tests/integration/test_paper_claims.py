"""Integration tests checking the paper's headline experimental claims.

These tests run the same harness as the benchmarks on scaled-down workloads
and assert the *qualitative* outcomes the paper reports (who wins, by roughly
what factor) — the reproduction criteria recorded in EXPERIMENTS.md.
"""

import pytest

from repro.data.registry import load_dataset
from repro.data.synthetic import gaussian2_dataset, gaussian_dataset
from repro.eval.harness import evaluate_algorithms
from repro.sketches.registry import mean_heuristic_suite


@pytest.mark.slow
class TestGaussianClaims:
    """Figure 1: on biased Gaussian data the bias-aware sketches win by a lot."""

    @pytest.fixture(scope="class")
    def table(self):
        dataset = gaussian_dataset(dimension=30_000, bias=100.0, sigma=15.0, seed=1)
        return evaluate_algorithms(dataset, width=512, depth=9, seed=7)

    def _error(self, table, algorithm):
        return table.filter(algorithm=algorithm).rows[0].average_error

    def test_bias_aware_beats_count_sketch_by_a_wide_margin(self, table):
        assert self._error(table, "l2_sr") < self._error(table, "count_sketch") / 3.0
        assert self._error(table, "l1_sr") < self._error(table, "count_sketch") / 3.0

    def test_bias_aware_beats_count_min_family(self, table):
        for baseline in ("count_median", "count_min_cu", "count_min_log_cu"):
            assert self._error(table, "l2_sr") < self._error(table, baseline) / 5.0

    def test_count_median_is_the_worst_baseline(self, table):
        cm_error = self._error(table, "count_median")
        for other in ("count_sketch", "count_min_cu", "count_min_log_cu"):
            assert cm_error > self._error(table, other)

    def test_errors_insensitive_to_bias_value(self):
        """Figure 1c-1d: raising b from 100 to 500 leaves ℓ-S/R errors flat."""
        low = gaussian_dataset(dimension=20_000, bias=100.0, sigma=15.0, seed=2)
        high = gaussian_dataset(dimension=20_000, bias=500.0, sigma=15.0, seed=2)
        ours_low = evaluate_algorithms(low, algorithms=["l2_sr"], width=256,
                                       depth=9, seed=3).rows[0].average_error
        ours_high = evaluate_algorithms(high, algorithms=["l2_sr"], width=256,
                                        depth=9, seed=3).rows[0].average_error
        baseline_low = evaluate_algorithms(low, algorithms=["count_sketch"],
                                           width=256, depth=9, seed=3
                                           ).rows[0].average_error
        baseline_high = evaluate_algorithms(high, algorithms=["count_sketch"],
                                            width=256, depth=9, seed=3
                                            ).rows[0].average_error
        assert ours_high == pytest.approx(ours_low, rel=0.5)
        assert baseline_high > 2.0 * baseline_low


@pytest.mark.slow
class TestMeanHeuristicClaims:
    """Figure 8: mean heuristics match ℓ-S/R on clean data, break when shifted."""

    def test_clean_gaussian2(self):
        dataset = gaussian2_dataset(dimension=20_000, shifted_entries=0, seed=4)
        table = evaluate_algorithms(
            dataset, algorithms=mean_heuristic_suite(), width=256, depth=9, seed=5
        )
        errors = {row.algorithm: row.average_error for row in table}
        assert errors["l2_mean"] == pytest.approx(errors["l2_sr"], rel=1.0)

    def test_shifted_gaussian2(self):
        # the number of shifted entries stays below s/4 so they fit in the
        # head the bias-aware sketches are allowed to ignore (the paper keeps
        # 500 shifted entries against sketch widths of 10^4 and more)
        dataset = gaussian2_dataset(dimension=20_000, shifted_entries=25,
                                    shift=100_000.0, seed=6)
        table = evaluate_algorithms(
            dataset, algorithms=mean_heuristic_suite(), width=256, depth=9, seed=7
        )
        errors = {row.algorithm: row.average_error for row in table}
        assert errors["l1_mean"] > 3.0 * errors["l1_sr"]
        assert errors["l2_mean"] > 3.0 * errors["l2_sr"]


@pytest.mark.slow
class TestRealDatasetSubstituteClaims:
    """Figures 2-5 (shape only): ℓ2-S/R is the best or tied-best algorithm."""

    @pytest.mark.parametrize("name", ["wiki", "worldcup", "higgs", "meme"])
    def test_l2_sr_is_best_or_close(self, name):
        dataset = load_dataset(name, seed=11, dimension=20_000)
        table = evaluate_algorithms(dataset, width=256, depth=9, seed=13)
        errors = {row.algorithm: row.average_error for row in table}
        best = min(errors.values())
        # ℓ2-S/R wins outright or sits within 25% of the best (the paper's
        # WorldCup plot has CS and ℓ1-S/R very close to it)
        assert errors["l2_sr"] <= 1.25 * best

    def test_wiki_substitute_shows_order_of_magnitude_gap(self):
        """Figure 2: on the strongly biased Wiki workload ℓ2-S/R wins ~10×."""
        dataset = load_dataset("wiki", seed=17, dimension=20_000)
        table = evaluate_algorithms(dataset, width=256, depth=9, seed=19)
        errors = {row.algorithm: row.average_error for row in table}
        assert errors["l2_sr"] < errors["count_median"] / 5.0
        assert errors["l2_sr"] < errors["count_min_cu"] / 5.0
