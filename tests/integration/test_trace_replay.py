"""Integration test: record a trace, replay it elsewhere, get the same sketch.

This is the deployment loop a downstream user would actually run: capture an
update trace on one machine, ship the (tiny) trace or the (even tinier)
sketch, and verify that replaying the trace into a fresh sketch reproduces
the original state exactly.
"""

import numpy as np

from repro.core import StreamingL2BiasAwareSketch
from repro.data.hudong import simulated_hudong
from repro.streaming.generators import stream_from_items
from repro.streaming.trace import (
    read_csv_trace,
    read_npz_trace,
    write_csv_trace,
    write_npz_trace,
)


def _build_sketch(stream, seed=17):
    sketch = StreamingL2BiasAwareSketch(stream.dimension, 128, 5, seed=seed)
    for update in stream:
        sketch.update(update.index, update.delta)
    return sketch


class TestTraceReplay:
    def test_csv_trace_replay_reproduces_the_sketch(self, tmp_path):
        data = simulated_hudong(dimension=1_000, edges=5_000, seed=9)
        stream = stream_from_items(data.sources, data.dimension)
        original = _build_sketch(stream)

        path = tmp_path / "edges.csv"
        write_csv_trace(stream, path)
        replayed = _build_sketch(read_csv_trace(path))

        np.testing.assert_allclose(original.recover(), replayed.recover())
        assert original.estimate_bias() == replayed.estimate_bias()

    def test_npz_trace_replay_reproduces_the_sketch(self, tmp_path):
        data = simulated_hudong(dimension=1_000, edges=5_000, seed=11)
        stream = stream_from_items(data.sources, data.dimension)
        original = _build_sketch(stream)

        path = tmp_path / "edges.npz"
        write_npz_trace(stream, path)
        replayed = _build_sketch(read_npz_trace(path))

        np.testing.assert_allclose(original.recover(), replayed.recover())

    def test_trace_is_much_smaller_than_shipping_the_vector_naively(self, tmp_path):
        """Sanity check of the storage story: the sketch is smaller than both
        the trace and the dense vector."""
        data = simulated_hudong(dimension=5_000, edges=20_000, seed=13)
        stream = stream_from_items(data.sources, data.dimension)
        sketch = _build_sketch(stream)
        assert sketch.size_in_words() < stream.dimension
        assert sketch.size_in_words() < len(stream)
