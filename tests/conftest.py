"""Shared fixtures for the test suite.

All fixtures are deterministic: anything random is seeded, so failures are
reproducible from the test name alone.

Hypothesis profiles: the property suites run under the profile named by the
``HYPOTHESIS_PROFILE`` environment variable (CI pins ``ci``).  The ``ci``
profile derandomises example generation and disables deadlines so the
property budget is fixed and runs are reproducible; ``dev`` is a slightly
richer local profile.  Individual suites may still cap ``max_examples``
per-test where a case iterates over every registered sketch.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=50, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for per-test randomness."""
    return np.random.default_rng(20170509)


@pytest.fixture
def paper_example_vector() -> np.ndarray:
    """The running example of the paper's introduction (Equation 3).

    x = (3, 100, 101, 500, 102, 98, 97, 100, 99, 103) with k = 2:
    Err_1^2 = 700, Err_2^2 ≈ 263.49, and after optimal de-biasing (β = 100)
    the errors drop to 12 and √28 ≈ 5.29.
    """
    return np.array([3, 100, 101, 500, 102, 98, 97, 100, 99, 103], dtype=float)


@pytest.fixture
def biased_gaussian_vector(rng) -> np.ndarray:
    """A mid-sized biased vector: N(100, 15²) with a few large outliers."""
    vector = rng.normal(100.0, 15.0, size=5_000)
    outliers = rng.choice(vector.size, size=10, replace=False)
    vector[outliers] += 10_000.0
    return vector


@pytest.fixture
def small_count_vector(rng) -> np.ndarray:
    """A small non-negative integer count vector (cash-register friendly)."""
    return rng.poisson(30.0, size=800).astype(float)


@pytest.fixture
def sketch_params() -> dict:
    """A small but non-trivial sketch configuration shared across tests."""
    return {"width": 64, "depth": 5, "seed": 4242}
