"""Unit tests for the experiment registry (one entry per paper figure)."""

import pytest

from repro.eval.experiments import (
    available_experiments,
    get_experiment,
    run_experiment,
)


class TestRegistryContents:
    def test_every_paper_figure_is_registered(self):
        names = available_experiments()
        figures = {get_experiment(name).figure for name in names}
        for expected in ("Figure 1a-1b", "Figure 1c-1d", "Figure 2", "Figure 3",
                         "Figure 4", "Figure 5", "Figure 6", "Figure 7",
                         "Figure 8a-8b", "Figure 8c-8d", "Figure 9"):
            assert expected in figures

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_experiment("fig99")

    def test_specs_have_descriptions(self):
        for name in available_experiments():
            spec = get_experiment(name)
            assert spec.description
            assert spec.sweep in ("width", "depth", "streaming")


class TestRunExperiment:
    def test_width_experiment_runs_scaled_down(self):
        table = run_experiment("fig1_b100", seed=1, widths=[64, 128], depth=3)
        assert len(table) == 2 * 6
        assert {row.width for row in table} == {64, 128}

    def test_mean_suite_experiment(self):
        table = run_experiment("fig8_shifted", seed=1, widths=[128], depth=3)
        assert set(table.algorithms()) == {"l1_sr", "l2_sr", "l1_mean", "l2_mean"}

    def test_depth_experiment_uses_registered_depths(self):
        spec = get_experiment("fig7")
        assert spec.sweep == "depth"
        assert spec.depths == (1, 3, 5, 7, 9)
