"""Unit tests for the recovery-quality metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    average_error,
    error_profile,
    maximum_error,
    quantile_error,
    relative_average_error,
    rmse,
)


class TestBasicMetrics:
    def test_average_error_is_scaled_l1(self):
        truth = np.array([1.0, 2.0, 3.0, 4.0])
        estimate = np.array([1.0, 1.0, 5.0, 4.0])
        assert average_error(truth, estimate) == pytest.approx(3.0 / 4.0)

    def test_maximum_error_is_l_infinity(self):
        truth = np.array([0.0, 0.0, 0.0])
        estimate = np.array([1.0, -5.0, 2.0])
        assert maximum_error(truth, estimate) == pytest.approx(5.0)

    def test_rmse(self):
        truth = np.zeros(4)
        estimate = np.array([1.0, 1.0, 1.0, 1.0])
        assert rmse(truth, estimate) == pytest.approx(1.0)

    def test_zero_error_for_identical_vectors(self, rng):
        x = rng.normal(size=100)
        assert average_error(x, x) == 0.0
        assert maximum_error(x, x) == 0.0
        assert rmse(x, x) == 0.0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_error(np.ones(3), np.ones(4))

    def test_max_error_at_least_average_error(self, rng):
        truth = rng.normal(size=200)
        estimate = truth + rng.normal(size=200)
        assert maximum_error(truth, estimate) >= average_error(truth, estimate)


class TestRelativeAndQuantile:
    def test_relative_average_error_normalisation(self):
        truth = np.full(10, 100.0)
        estimate = truth + 10.0
        assert relative_average_error(truth, estimate) == pytest.approx(0.1)

    def test_relative_error_of_zero_truth(self):
        assert relative_average_error(np.zeros(3), np.zeros(3)) == 0.0
        assert relative_average_error(np.zeros(3), np.ones(3)) == float("inf")

    def test_quantile_error_bounds(self, rng):
        truth = rng.normal(size=500)
        estimate = truth + rng.normal(size=500)
        p50 = quantile_error(truth, estimate, 0.5)
        p99 = quantile_error(truth, estimate, 0.99)
        assert p50 <= p99 <= maximum_error(truth, estimate)

    def test_quantile_error_invalid_q(self):
        with pytest.raises(ValueError):
            quantile_error(np.ones(3), np.ones(3), q=2.0)

    def test_error_profile_contains_all_metrics(self, rng):
        truth = rng.normal(size=50)
        estimate = truth + 1.0
        profile = error_profile(truth, estimate)
        assert set(profile) == {
            "average_error",
            "maximum_error",
            "rmse",
            "relative_average_error",
            "p99_error",
        }
        assert profile["average_error"] == pytest.approx(1.0)
