"""Unit tests for the experiment harness."""

import pytest

from repro.data.synthetic import gaussian_dataset
from repro.eval.harness import (
    depth_sweep,
    evaluate_algorithms,
    streaming_comparison,
    width_sweep,
)
from repro.eval.timing import TimingResult, time_callable
from repro.streaming.generators import stream_from_vector


@pytest.fixture(scope="module")
def small_dataset():
    return gaussian_dataset(dimension=3_000, bias=100.0, sigma=15.0, seed=5)


class TestEvaluateAlgorithms:
    def test_default_suite_produces_one_row_per_algorithm(self, small_dataset):
        table = evaluate_algorithms(small_dataset, width=128, depth=3, seed=1)
        assert len(table) == 6
        assert set(table.algorithms()) == {
            "l1_sr", "l2_sr", "count_sketch", "count_median",
            "count_min_cu", "count_min_log_cu",
        }

    def test_space_budget_convention(self, small_dataset):
        """Baselines get d+1 rows so every algorithm uses the same words."""
        table = evaluate_algorithms(small_dataset, width=128, depth=3, seed=1)
        words = {row.algorithm: row.sketch_words for row in table}
        assert words["l2_sr"] == 128 * 3 + 128
        assert words["count_sketch"] == 128 * 4
        assert words["l2_sr"] == words["count_sketch"]

    def test_bias_aware_wins_on_biased_gaussian(self, small_dataset):
        table = evaluate_algorithms(small_dataset, width=128, depth=5, seed=2)
        assert table.best_algorithm("average_error") in {"l1_sr", "l2_sr"}

    def test_explicit_algorithm_subset(self, small_dataset):
        table = evaluate_algorithms(
            small_dataset, algorithms=["l2_sr", "count_sketch"], width=64, depth=3
        )
        assert table.algorithms() == ["l2_sr", "count_sketch"]

    def test_accepts_raw_vectors(self, rng):
        table = evaluate_algorithms(
            rng.normal(50.0, 5.0, size=500),
            algorithms=["l2_sr"],
            width=32,
            depth=3,
        )
        assert table.rows[0].dataset == "vector"

    def test_repetitions_average_the_errors(self, small_dataset):
        """Repetition averages differ from a single draw (fresh hash functions)."""
        once = evaluate_algorithms(
            small_dataset, algorithms=["count_sketch"], width=64, depth=3,
            seed=3, repetitions=1,
        )
        thrice = evaluate_algorithms(
            small_dataset, algorithms=["count_sketch"], width=64, depth=3,
            seed=3, repetitions=3,
        )
        assert once.rows[0].average_error > 0
        assert thrice.rows[0].average_error > 0
        assert thrice.rows[0].average_error != once.rows[0].average_error

    def test_same_seed_is_reproducible(self, small_dataset):
        first = evaluate_algorithms(
            small_dataset, algorithms=["l2_sr"], width=64, depth=3, seed=9
        )
        second = evaluate_algorithms(
            small_dataset, algorithms=["l2_sr"], width=64, depth=3, seed=9
        )
        assert first.rows[0].average_error == second.rows[0].average_error


class TestSweeps:
    def test_width_sweep_row_count(self, small_dataset):
        table = width_sweep(
            small_dataset, widths=[32, 64], algorithms=["l2_sr", "count_sketch"],
            depth=3, seed=1,
        )
        assert len(table) == 4
        assert sorted({row.width for row in table}) == [32, 64]

    def test_error_decreases_with_width(self, small_dataset):
        table = width_sweep(
            small_dataset, widths=[32, 256], algorithms=["count_sketch"],
            depth=5, seed=1,
        )
        series = table.series("average_error")["count_sketch"]
        assert series[-1][1] < series[0][1]

    def test_depth_sweep_row_count_and_depths(self, small_dataset):
        table = depth_sweep(
            small_dataset, depths=[1, 3], algorithms=["l2_sr", "count_sketch"],
            width=64, seed=1,
        )
        assert len(table) == 4
        l2_depths = {row.depth for row in table.filter(algorithm="l2_sr")}
        cs_depths = {row.depth for row in table.filter(algorithm="count_sketch")}
        assert l2_depths == {1, 3}
        assert cs_depths == {2, 4}  # baseline gets d + 1


class TestStreamingComparison:
    def test_reports_timing_columns(self, rng):
        vector = rng.poisson(20.0, size=600).astype(float)
        stream = stream_from_vector(vector)
        table = streaming_comparison(
            stream, algorithms=["l2_sr", "count_sketch"], width=64, depth=3,
            query_count=50, seed=1,
        )
        assert len(table) == 2
        for row in table:
            assert row.update_seconds > 0
            assert row.query_seconds > 0


class TestTiming:
    def test_time_callable(self):
        result = time_callable(lambda: sum(range(1_000)), repetitions=5)
        assert isinstance(result, TimingResult)
        assert result.repetitions == 5
        assert result.seconds_per_call > 0

    def test_time_callable_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repetitions=0)
