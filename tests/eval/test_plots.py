"""Unit tests for the ASCII plotting helpers."""

import pytest

from repro.eval.plots import ascii_series_plot, plot_result_table
from repro.eval.results import ResultRow, ResultTable


def _table():
    rows = []
    for algorithm, errors in [("l2_sr", [10.0, 5.0, 2.0]),
                              ("count_sketch", [50.0, 30.0, 20.0])]:
        for width, error in zip([100, 200, 400], errors):
            rows.append(ResultRow(
                dataset="gaussian", algorithm=algorithm, width=width, depth=9,
                sketch_words=width * 10, average_error=error,
                maximum_error=error * 3,
            ))
    return ResultTable("demo", rows=rows)


class TestAsciiSeriesPlot:
    def test_contains_markers_and_legend(self):
        chart = ascii_series_plot(
            {"a": [(1, 10.0), (2, 5.0)], "b": [(1, 100.0), (2, 50.0)]},
            title="demo chart",
        )
        assert "demo chart" in chart
        assert "o a" in chart and "x b" in chart
        assert "o" in chart and "x" in chart

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            ascii_series_plot({})

    def test_linear_scale_fallback_for_non_positive_values(self):
        chart = ascii_series_plot({"a": [(0, -1.0), (1, 0.0)]}, log_y=True)
        assert "log scale" not in chart

    def test_dimensions_respected(self):
        chart = ascii_series_plot({"a": [(0, 1.0), (10, 2.0)]},
                                  width=30, height=8)
        plotting_rows = [line for line in chart.splitlines() if "|" in line]
        assert len(plotting_rows) == 8


class TestPlotResultTable:
    def test_renders_from_table(self):
        chart = plot_result_table(_table())
        assert "l2_sr" in chart
        assert "count_sketch" in chart
        assert "average_error" in chart

    def test_algorithm_subset(self):
        chart = plot_result_table(_table(), algorithms=["l2_sr"])
        assert "count_sketch" not in chart

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            plot_result_table(_table(), algorithms=["nope"])

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            plot_result_table(_table(), metric="nope")
