"""Unit tests for the result tables."""

import pytest

from repro.eval.results import ResultRow, ResultTable


def make_row(algorithm="l2_sr", width=100, average_error=1.0, maximum_error=2.0,
             dataset="gaussian"):
    return ResultRow(
        dataset=dataset,
        algorithm=algorithm,
        width=width,
        depth=9,
        sketch_words=width * 10,
        average_error=average_error,
        maximum_error=maximum_error,
    )


class TestResultTable:
    def test_add_and_len(self):
        table = ResultTable("t")
        table.add(make_row())
        table.extend([make_row(width=200), make_row(width=300)])
        assert len(table) == 3

    def test_filter_by_field(self):
        table = ResultTable(rows=[make_row("l2_sr"), make_row("count_sketch")])
        filtered = table.filter(algorithm="l2_sr")
        assert len(filtered) == 1
        assert filtered.rows[0].algorithm == "l2_sr"

    def test_filter_unknown_field_rejected(self):
        table = ResultTable(rows=[make_row()])
        with pytest.raises(ValueError):
            table.filter(bogus=1)

    def test_series_sorted_by_width(self):
        table = ResultTable(
            rows=[
                make_row(width=300, average_error=1.0),
                make_row(width=100, average_error=3.0),
                make_row(width=200, average_error=2.0),
            ]
        )
        series = table.series("average_error")
        assert series["l2_sr"] == [(100, 3.0), (200, 2.0), (300, 1.0)]

    def test_series_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            ResultTable(rows=[make_row()]).series("nope")

    def test_best_algorithm(self):
        table = ResultTable(
            rows=[
                make_row("l2_sr", average_error=1.0),
                make_row("count_sketch", average_error=5.0),
                make_row("l2_sr", average_error=2.0, width=200),
                make_row("count_sketch", average_error=6.0, width=200),
            ]
        )
        assert table.best_algorithm("average_error") == "l2_sr"

    def test_best_algorithm_empty_table_raises(self):
        with pytest.raises(ValueError):
            ResultTable().best_algorithm()

    def test_algorithms_in_first_seen_order(self):
        table = ResultTable(rows=[make_row("b"), make_row("a"), make_row("b")])
        assert table.algorithms() == ["b", "a"]

    def test_to_text_contains_rows_and_title(self):
        table = ResultTable("my experiment", rows=[make_row()])
        text = table.to_text()
        assert "my experiment" in text
        assert "l2_sr" in text
        assert "average_error" in text

    def test_to_csv_round_trips_row_count(self):
        table = ResultTable(rows=[make_row(), make_row(width=200)])
        csv_text = table.to_csv()
        assert len(csv_text.strip().splitlines()) == 3  # header + 2 rows
        assert csv_text.splitlines()[0].startswith("dataset,algorithm")
