"""Unit tests for the declarative ``SketchConfig``."""

import pytest

from repro.api import ConfigError, SketchConfig
from repro.core import L2BiasAwareSketch
from repro.sketches.count_sketch import CountSketch


class TestValidation:
    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigError, match="available"):
            SketchConfig("no_such_sketch", dimension=10, width=4, depth=2)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            SketchConfig("", dimension=10, width=4, depth=2)

    @pytest.mark.parametrize("field", ["dimension", "width", "depth"])
    @pytest.mark.parametrize("bad", [0, -3, 2.5, "8", True])
    def test_geometry_must_be_positive_ints(self, field, bad):
        fields = {"dimension": 100, "width": 8, "depth": 3, field: bad}
        with pytest.raises(ConfigError, match=field):
            SketchConfig("count_sketch", **fields)

    @pytest.mark.parametrize("field", ["width", "depth"])
    def test_width_and_depth_cannot_be_none(self, field):
        fields = {"dimension": 100, "width": 8, "depth": 3, field: None}
        with pytest.raises(ConfigError, match=field):
            SketchConfig("count_sketch", **fields)

    def test_dimension_none_selects_hashed_key_mode(self):
        """dimension=None is valid exactly for algorithms declaring unbounded."""
        config = SketchConfig("count_sketch", dimension=None, width=8, depth=3)
        assert config.dimension is None
        assert config.build().dimension is None

    def test_dimension_none_rejected_for_bounded_only_algorithms(self):
        with pytest.raises(ConfigError, match="bounded dimension"):
            SketchConfig("l2_sr", dimension=None, width=8, depth=3)

    def test_seed_must_be_int_or_none(self):
        with pytest.raises(ConfigError, match="seed"):
            SketchConfig("count_sketch", dimension=10, width=4, depth=2,
                         seed="seven")
        assert SketchConfig(
            "count_sketch", dimension=10, width=4, depth=2
        ).seed is None

    def test_unknown_kwarg_rejected_with_schema(self):
        with pytest.raises(ConfigError, match="head_size"):
            SketchConfig("l2_sr", dimension=100, width=16, depth=3, bogus=1)

    def test_kwarg_type_checked(self):
        with pytest.raises(ConfigError, match="head_size"):
            SketchConfig("l2_sr", dimension=100, width=16, depth=3,
                         head_size="four")

    def test_kwargs_only_for_algorithms_that_declare_them(self):
        with pytest.raises(ConfigError, match="does not accept"):
            SketchConfig("count_sketch", dimension=100, width=16, depth=3,
                         head_size=4)

    def test_validation_is_eager(self):
        # nothing is constructed lazily: a bad config never exists
        with pytest.raises(ConfigError):
            SketchConfig("l2_sr", dimension=-1, width=16, depth=3)


class TestBuild:
    def test_build_constructs_the_registered_class(self):
        config = SketchConfig("count_sketch", dimension=100, width=16, depth=3,
                              seed=7)
        sketch = config.build()
        assert isinstance(sketch, CountSketch)
        assert (sketch.dimension, sketch.width, sketch.depth) == (100, 16, 3)
        assert sketch.seed == 7

    def test_build_forwards_algorithm_kwargs(self):
        config = SketchConfig("l2_sr", dimension=100, width=16, depth=3,
                              seed=7, head_size=4)
        sketch = config.build()
        assert isinstance(sketch, L2BiasAwareSketch)
        assert sketch.head_size == 4

    def test_float_kwarg_accepts_int(self):
        config = SketchConfig("count_min_log_cu", dimension=100, width=16,
                              depth=3, seed=1, base=2)
        assert config.build().base == 2.0

    def test_kwargs_accept_numpy_scalars(self):
        import numpy as np

        config = SketchConfig("l2_sr", dimension=np.int64(100), width=16,
                              depth=3, seed=np.int64(1),
                              head_size=np.int64(4))
        assert config.build().head_size == 4
        log = SketchConfig("count_min_log_cu", dimension=100, width=16,
                           depth=3, seed=1, base=np.float64(1.5))
        assert log.build().base == 1.5


class TestImmutabilityAndDerivation:
    def test_immutable(self):
        config = SketchConfig("count_sketch", dimension=100, width=16, depth=3)
        with pytest.raises(AttributeError):
            config.width = 32

    def test_replace_overrides_fields_and_options(self):
        config = SketchConfig("l2_sr", dimension=100, width=16, depth=3,
                              seed=7, head_size=4)
        wider = config.replace(width=32)
        assert wider.width == 32
        assert wider.options == {"head_size": 4}
        renamed = config.replace(name="count_sketch", head_size=None)
        assert renamed.name == "count_sketch"
        # the original is untouched
        assert config.width == 16

    def test_replace_revalidates(self):
        config = SketchConfig("count_sketch", dimension=100, width=16, depth=3)
        with pytest.raises(ConfigError):
            config.replace(width=-1)

    def test_dict_round_trip(self):
        config = SketchConfig("l2_sr", dimension=100, width=16, depth=3,
                              seed=7, head_size=4)
        rebuilt = SketchConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert hash(rebuilt) == hash(config)

    def test_equality_covers_options(self):
        one = SketchConfig("l2_sr", dimension=100, width=16, depth=3, head_size=4)
        two = SketchConfig("l2_sr", dimension=100, width=16, depth=3, head_size=5)
        assert one != two


class TestFromState:
    def test_round_trip_through_state(self):
        config = SketchConfig("l2_sr", dimension=100, width=16, depth=3,
                              seed=7, head_size=4)
        state = config.build().state_dict()
        recovered = SketchConfig.from_state(state)
        assert recovered.name == "l2_sr"
        assert recovered.options["head_size"] == 4
        assert recovered.seed == 7

    def test_non_schema_config_keys_are_dropped(self):
        # mean sketches record an internal 'signed' flag the class fixes
        config = SketchConfig("l2_mean", dimension=100, width=16, depth=3, seed=1)
        state = config.build().state_dict()
        assert "signed" in state["config"]
        assert SketchConfig.from_state(state).options == {}

    def test_unregistered_kind_rejected(self):
        with pytest.raises(ConfigError, match="registered"):
            SketchConfig.from_state({"kind": "mystery", "config": {}})


class TestSpecView:
    def test_spec_exposes_capabilities(self):
        config = SketchConfig("count_min_cu", dimension=100, width=16, depth=3)
        assert config.spec.linear is False
        assert config.spec.streaming is True
        assert config.spec.supports_query("point")

    def test_portable_requires_integer_seed(self):
        seeded = SketchConfig("count_sketch", dimension=10, width=4, depth=2,
                              seed=3)
        unseeded = SketchConfig("count_sketch", dimension=10, width=4, depth=2)
        assert seeded.portable is True
        assert unseeded.portable is False
