"""Unit tests for the ``SketchSession`` facade."""

import numpy as np
import pytest

from repro.api import CapabilityError, ConfigError, SketchConfig, SketchSession
from repro.queries.heavy_hitters import HeavyHitter
from repro.sketches.base import LinearSketch
from repro.sketches.registry import register_sketch, unregister_sketch
from repro.streaming.stream import UpdateStream

DIMENSION = 2_000


def make_session(name="count_sketch", seed=7, **options):
    return SketchSession.from_config(
        SketchConfig(name, dimension=DIMENSION, width=128, depth=5, seed=seed,
                     **options)
    )


def reference_sketch(name="count_sketch", seed=7):
    return SketchConfig(
        name, dimension=DIMENSION, width=128, depth=5, seed=seed
    ).build()


@pytest.fixture
def vector(rng):
    return rng.normal(50.0, 8.0, size=DIMENSION)


class TestConstruction:
    def test_from_config_accepts_config_or_name(self):
        by_config = make_session()
        by_name = SketchSession.from_config(
            "count_sketch", dimension=DIMENSION, width=128, depth=5, seed=7
        )
        assert by_config.config == by_name.config

    def test_from_config_rejects_mixing_config_and_fields(self):
        config = SketchConfig("count_sketch", dimension=10, width=4, depth=2)
        with pytest.raises(ConfigError, match="not both"):
            SketchSession.from_config(config, width=8)

    def test_from_config_rejects_non_configs(self):
        with pytest.raises(ConfigError):
            SketchSession.from_config(42)


class TestIngestDispatch:
    def test_scalar_update(self):
        session = make_session()
        session.ingest(3)
        session.ingest(3, 2.5)
        direct = reference_sketch()
        direct.update(3)
        direct.update(3, 2.5)
        np.testing.assert_array_equal(session.recover(), direct.recover())
        assert session.items_processed == 2

    def test_integer_array_is_coordinate_updates(self):
        session = make_session()
        session.ingest(np.array([1, 5, 1, 9]))
        direct = reference_sketch().update_batch([1, 5, 1, 9])
        np.testing.assert_array_equal(session.recover(), direct.recover())

    def test_coordinates_with_deltas(self):
        session = make_session()
        session.ingest([1, 5, 9], [2.0, 3.0, 4.0])
        direct = reference_sketch().update_batch([1, 5, 9], [2.0, 3.0, 4.0])
        np.testing.assert_array_equal(session.recover(), direct.recover())

    def test_pairs_array(self):
        session = make_session()
        session.ingest([(1, 2.0), (5, 3.0), (9, 4.0)])
        direct = reference_sketch().update_batch([1, 5, 9], [2.0, 3.0, 4.0])
        np.testing.assert_array_equal(session.recover(), direct.recover())

    def test_float_vector_is_fit(self, vector):
        session = make_session()
        session.ingest(vector)
        direct = reference_sketch().fit(vector)
        np.testing.assert_array_equal(session.recover(), direct.recover())

    def test_float_vector_of_wrong_length_rejected(self):
        session = make_session()
        with pytest.raises(ConfigError, match="frequency vector"):
            session.ingest(np.ones(17))

    def test_dimension_length_integer_array_is_ambiguous(self):
        # an int array of exactly `dimension` entries could be counts or
        # coordinates; the session must refuse rather than guess
        session = make_session()
        counts = np.zeros(DIMENSION, dtype=np.int64)
        counts[3] = 2
        with pytest.raises(ConfigError, match="ambiguous"):
            session.ingest(counts)
        # both disambiguations work
        session.ingest(counts.astype(float))                # dense vector
        make_session().ingest(counts % 10, deltas=1.0)      # coordinates

    def test_dataset_is_fit(self):
        from repro.data import load_dataset

        dataset = load_dataset("gaussian", seed=3, dimension=DIMENSION)
        session = make_session()
        session.ingest(dataset)
        direct = reference_sketch().fit(dataset.vector)
        np.testing.assert_array_equal(session.recover(), direct.recover())

    def test_update_stream_replay(self, rng):
        indices = rng.integers(0, DIMENSION, size=500)
        stream = UpdateStream.from_arrays(DIMENSION, indices)
        session = make_session()
        session.ingest(stream)
        direct = reference_sketch().update_batch(indices)
        np.testing.assert_array_equal(session.recover(), direct.recover())

    def test_stream_dimension_mismatch_rejected(self):
        stream = UpdateStream.from_arrays(17, [0, 1])
        with pytest.raises(ConfigError, match="dimension"):
            make_session().ingest(stream)

    def test_batch_size_chunking_matches_single_call(self, rng):
        indices = rng.integers(0, DIMENSION, size=999)
        chunked = make_session()
        chunked.ingest(indices, batch_size=100)
        whole = make_session()
        whole.ingest(indices)
        np.testing.assert_array_equal(chunked.recover(), whole.recover())

    def test_ingest_returns_self_for_chaining(self, vector):
        session = make_session()
        assert session.ingest(vector) is session


class TestShardedIngest:
    def test_explicit_shards_match_inline(self, rng):
        indices = rng.integers(0, DIMENSION, size=20_000)
        sharded = make_session(seed=3)
        sharded.ingest(indices, shards=3)
        inline = make_session(seed=3)
        inline.ingest(indices)
        np.testing.assert_array_equal(sharded.recover(), inline.recover())
        assert sharded.last_shard_report is not None
        assert sharded.last_shard_report.shards == 3
        assert inline.last_shard_report is None

    def test_sharded_ingest_folds_into_existing_state(self, rng):
        indices = rng.integers(0, DIMENSION, size=6_000)
        session = make_session(seed=3)
        session.ingest(indices[:3_000])
        session.ingest(indices[3_000:], shards=2)
        whole = make_session(seed=3)
        whole.ingest(indices)
        np.testing.assert_array_equal(session.recover(), whole.recover())

    def test_auto_shard_by_size(self, rng):
        indices = rng.integers(0, DIMENSION, size=5_000)
        session = SketchSession.from_config(
            SketchConfig("count_sketch", dimension=DIMENSION, width=128,
                         depth=5, seed=3),
            auto_shard_threshold=1_000,
        )
        session.ingest(indices)
        import os
        if (os.cpu_count() or 1) > 1:
            assert session.last_shard_report is not None
            assert session.last_shard_report.shards > 1
        inline = make_session(seed=3)
        inline.ingest(indices, shards=1)
        np.testing.assert_array_equal(session.recover(), inline.recover())

    def test_auto_shard_skips_unseeded_sessions(self, rng):
        indices = rng.integers(0, DIMENSION, size=5_000)
        session = SketchSession.from_config(
            SketchConfig("count_sketch", dimension=DIMENSION, width=128,
                         depth=5),
            auto_shard_threshold=1_000,
        )
        session.ingest(indices)
        assert session.last_shard_report is None

    def test_non_linear_sketch_cannot_shard(self):
        session = make_session("count_min_cu", seed=1)
        with pytest.raises(CapabilityError, match="not a linear sketch"):
            session.ingest(np.arange(100), shards=2)

    def test_sharding_requires_integer_seed(self):
        session = make_session(seed=None)
        with pytest.raises(ConfigError, match="seed"):
            session.ingest(np.arange(100), shards=2)

    def test_sharded_ingest_respects_algorithm_options(self, rng):
        indices = rng.integers(0, DIMENSION, size=8_000)
        sharded = make_session("l2_sr", seed=3, head_size=8)
        sharded.ingest(indices, shards=2)
        inline = make_session("l2_sr", seed=3, head_size=8)
        inline.ingest(indices)
        np.testing.assert_array_equal(sharded.recover(), inline.recover())


class TestQueryDispatch:
    def test_point_scalar_and_batch(self, vector):
        session = make_session()
        session.ingest(vector)
        direct = reference_sketch().fit(vector)
        assert session.query(kind="point", index=11) == direct.query(11)
        np.testing.assert_array_equal(
            session.query(kind="point", index=[1, 2, 3]),
            direct.query_batch([1, 2, 3]),
        )

    def test_integer_shorthand(self, vector):
        session = make_session()
        session.ingest(vector)
        assert session.query(11) == session.query(kind="point", index=11)

    def test_heavy_hitters(self, vector):
        session = make_session()
        session.ingest(vector)
        hitters = session.query(kind="heavy_hitters", threshold=70.0, top_k=5)
        assert len(hitters) <= 5
        assert all(isinstance(h, HeavyHitter) for h in hitters)

    def test_range(self, vector):
        session = make_session()
        session.ingest(vector)
        direct = reference_sketch().fit(vector)
        expected = float(sum(direct.query(i) for i in range(10, 20)))
        assert session.query(kind="range", low=10, high=20) == pytest.approx(expected)

    def test_inner_product(self, vector):
        session = make_session()
        session.ingest(vector)
        estimate = session.query(kind="inner_product", vector=vector)
        truth = float(np.dot(vector, vector))
        assert estimate == pytest.approx(truth, rel=0.2)

    def test_unknown_kind_lists_known_kinds(self):
        with pytest.raises(ValueError, match="known kinds"):
            make_session().query(kind="quantile")


class TestCapabilityGating:
    @pytest.fixture
    def point_only_session(self):
        class PointOnly(LinearSketch):
            name = "point_only_test"

            def __init__(self, dimension, width, depth, seed=None):
                super().__init__(dimension, width, depth, seed=seed)
                self._values = np.zeros(dimension)

            def update(self, index, delta=1.0):
                self._values[self._check_index(index)] += delta
                self._items_processed += 1

            def query(self, index):
                return float(self._values[self._check_index(index)])

            def size_in_words(self):
                return self.dimension

            def merge(self, other):
                self._values += other._values
                return self

            def scale(self, factor):
                self._values *= factor
                return self

        register_sketch(
            "point_only_test",
            "point-only (test double)",
            lambda n, s, d, seed, **kw: PointOnly(n, s, d, seed=seed),
            linear=True,
            queries=frozenset({"point"}),
            overwrite=True,
        )
        yield SketchSession.from_config(
            "point_only_test", dimension=50, width=4, depth=2, seed=1
        )
        unregister_sketch("point_only_test")

    def test_supported_kind_answers(self, point_only_session):
        point_only_session.ingest(3, 2.0)
        assert point_only_session.query(kind="point", index=3) == 2.0
        assert point_only_session.supports("point")

    @pytest.mark.parametrize("kind,params", [
        ("heavy_hitters", {"threshold": 1.0}),
        ("range", {"low": 0, "high": 5}),
        ("inner_product", {"vector": np.ones(50)}),
    ])
    def test_unsupported_kinds_raise_capability_error(
        self, point_only_session, kind, params
    ):
        assert not point_only_session.supports(kind)
        with pytest.raises(CapabilityError, match=kind):
            point_only_session.query(kind=kind, **params)

    def test_merge_of_non_linear_sketch_raises(self):
        one = make_session("count_min_cu", seed=1)
        two = make_session("count_min_cu", seed=1)
        with pytest.raises(CapabilityError, match="merge"):
            one.merge(two)

    def test_estimate_bias_gated(self, vector):
        aware = make_session("l2_sr")
        aware.ingest(vector)
        assert aware.estimate_bias() == pytest.approx(50.0, abs=5.0)
        with pytest.raises(CapabilityError, match="bias"):
            make_session("count_sketch").estimate_bias()


class TestMerge:
    def test_merge_sessions_sketches_and_payloads(self, rng):
        partials = [make_session(seed=3) for _ in range(3)]
        chunks = [rng.integers(0, DIMENSION, size=500) for _ in range(3)]
        for session, chunk in zip(partials, chunks):
            session.ingest(chunk)
        combined = make_session(seed=3)
        combined.ingest(chunks[0])
        combined.merge(partials[1])                  # a session
        combined.merge(partials[2].to_bytes())       # a wire payload
        whole = make_session(seed=3)
        whole.ingest(np.concatenate(chunks))
        np.testing.assert_array_equal(combined.recover(), whole.recover())

    def test_merge_accepts_a_list_of_payloads(self, rng):
        partials = [make_session(seed=3) for _ in range(3)]
        chunks = [rng.integers(0, DIMENSION, size=400) for _ in range(3)]
        for session, chunk in zip(partials, chunks):
            session.ingest(chunk)
        combined = make_session(seed=3)
        combined.merge([p.to_bytes() for p in partials])
        whole = make_session(seed=3)
        whole.ingest(np.concatenate(chunks))
        np.testing.assert_array_equal(combined.recover(), whole.recover())

    def test_merge_accepts_a_mixed_tuple(self, rng):
        one, two = make_session(seed=3), make_session(seed=3)
        one.ingest(rng.integers(0, DIMENSION, size=200))
        two.ingest(rng.integers(0, DIMENSION, size=200))
        combined = make_session(seed=3)
        combined.merge((one, two.to_bytes()))
        assert combined.items_processed == 400


class TestMergeRejectionPaths:
    """Every rejected ``merge`` input gets an error naming the accepted ones."""

    ACCEPTED_NEEDLES = ("SketchSession", "Sketch", "bytes", "list/tuple")

    def assert_names_accepted_inputs(self, excinfo):
        message = str(excinfo.value)
        for needle in self.ACCEPTED_NEEDLES:
            assert needle in message, (needle, message)

    @pytest.mark.parametrize("junk", [
        3.14,
        "a-path-not-a-payload",
        {"payload": b"..."},
        None,
        object(),
    ])
    def test_scalar_junk_is_rejected_with_accepted_inputs(self, junk):
        with pytest.raises(TypeError) as excinfo:
            make_session().merge(junk)
        self.assert_names_accepted_inputs(excinfo)
        assert type(junk).__name__ in str(excinfo.value)

    def test_list_with_a_junk_element_names_its_position(self, rng):
        good = make_session(seed=7)
        good.ingest(rng.integers(0, DIMENSION, size=50))
        target = make_session(seed=7)
        with pytest.raises(TypeError) as excinfo:
            target.merge([good.to_bytes(), 3.14])
        self.assert_names_accepted_inputs(excinfo)
        assert "element 1" in str(excinfo.value)
        assert "float" in str(excinfo.value)
        # the junk element was detected before any merging happened
        assert target.items_processed == 0

    def test_failed_list_merge_leaves_the_session_untouched(self, rng):
        """Decode and compatibility failures mid-list must also be atomic —
        retrying the fixed list must not double-count earlier elements."""
        from repro.serialization import SerializationError

        good = make_session(seed=7)
        good.ingest(rng.integers(0, DIMENSION, size=50))
        target = make_session(seed=7)
        with pytest.raises(SerializationError):
            target.merge([good.to_bytes(), b"corrupt payload"])
        assert target.items_processed == 0
        mismatched = make_session(seed=8)       # different seed: unmergeable
        mismatched.ingest(rng.integers(0, DIMENSION, size=50))
        with pytest.raises(ValueError, match="seed"):
            target.merge([good.to_bytes(), mismatched])
        assert target.items_processed == 0
        target.merge([good.to_bytes()])          # the fixed list applies once
        assert target.items_processed == 50

    def test_corrupt_payload_still_raises_serialization_error(self):
        from repro.serialization import SerializationError

        with pytest.raises(SerializationError):
            make_session().merge(b"this is not a sketch payload")

    def test_windowed_session_cannot_be_merged(self, rng):
        from repro.streaming import WindowSpec

        windowed = SketchSession.from_config(
            SketchConfig("count_sketch", dimension=DIMENSION, width=128,
                         depth=5, seed=7,
                         window=WindowSpec(mode="sliding", panes=2,
                                           pane_size=100))
        )
        windowed.ingest(rng.integers(0, DIMENSION, size=50))
        with pytest.raises(CapabilityError, match="windowed session"):
            windowed.merge(make_session())

    def test_timestamps_require_a_windowed_session(self):
        with pytest.raises(ConfigError, match="windowed"):
            make_session().ingest(np.arange(10), timestamps=np.arange(10.0))


class TestPersistence:
    def test_full_round_trip(self, tmp_path, vector):
        session = make_session("l2_sr")
        session.ingest(vector)
        path = session.save(tmp_path / "state.sketch")
        reopened = SketchSession.open(path)
        # the reopened config pins every algorithm option explicitly (the
        # state records defaults the original left implicit)
        for field in ("name", "dimension", "width", "depth", "seed"):
            assert getattr(reopened.config, field) == getattr(session.config, field)
        assert reopened.items_processed == session.items_processed
        np.testing.assert_array_equal(reopened.recover(), session.recover())
        # the reopened session keeps evolving identically
        session.ingest(5, 2.0)
        reopened.ingest(5, 2.0)
        assert reopened.query(5) == session.query(5)

    def test_state_dict_round_trip(self, vector):
        session = make_session()
        session.ingest(vector)
        clone = SketchSession.from_bytes(session.to_bytes())
        assert clone.state_dict()["kind"] == session.state_dict()["kind"]

    def test_unseeded_session_cannot_serialize(self, vector):
        session = make_session(seed=None)
        session.ingest(vector)
        with pytest.raises(ValueError, match="seed"):
            session.to_bytes()


class TestConservativeAutoBatching:
    """Above the auto threshold, CU ingests chunk through the exact batch
    path (the non-linear analogue of auto-sharding) — the result must be
    byte-identical to one monolithic update_batch call."""

    @pytest.mark.parametrize("name", ["count_min_cu", "count_min_log_cu"])
    def test_large_cu_ingest_auto_chunks_identically(self, name):
        rng = np.random.default_rng(8)
        indices = rng.integers(0, 300, size=20_000)
        cfg = SketchConfig(name, dimension=300, width=32, depth=3, seed=5)
        auto = SketchSession.from_config(cfg, auto_shard_threshold=1_000)
        whole = SketchSession.from_config(cfg, auto_shard_threshold=None)
        auto.ingest(indices)
        whole.ingest(indices)
        assert auto.to_bytes() == whole.to_bytes()
        # chunked, not sharded: CU kinds never reach the worker pool
        assert auto.last_shard_report is None
        assert auto.shard_pool is None

    def test_linear_kinds_do_not_auto_chunk(self):
        cfg = SketchConfig("count_min", dimension=300, width=32, depth=3,
                           seed=5)
        session = SketchSession.from_config(cfg, auto_shard_threshold=1_000)
        assert session._auto_batch_size(50_000) is None
