"""Corrupt and truncated wire payloads raise clean typed errors.

One test class per decode entry point — ``SketchSession.from_bytes``,
``SketchSession.open``, and store ``get`` — plus the CLI's one-line exit-2
contract.  The invariant under test: no matter where a payload is cut or
which byte is flipped, the caller sees :class:`SerializationError` (or
another ``ValueError`` with a user-facing message), never a raw
``struct.error`` / ``KeyError`` / ``IndexError`` from the decoding
internals.
"""

import io
import json
import struct

import numpy as np
import pytest

from repro.api import SketchConfig, SketchSession
from repro.cli import main
from repro.serialization import SerializationError, _PREAMBLE, WIRE_MAGIC, WIRE_VERSION
from repro.store import SketchStore

DIMENSION = 500
CLEAN_ERRORS = (SerializationError, ValueError)


@pytest.fixture(scope="module")
def sketch_payload():
    session = SketchSession.from_config(
        SketchConfig("count_min", dimension=DIMENSION, width=64, depth=3,
                     seed=1)
    )
    session.ingest([1, 2, 3, 2])
    return session.to_bytes()


@pytest.fixture(scope="module")
def window_payload():
    session = SketchSession.from_config(
        SketchConfig(
            "count_min", dimension=DIMENSION, width=64, depth=3, seed=1,
            window={"mode": "sliding", "panes": 3, "pane_size": 10,
                    "by": "count"},
        )
    )
    session.ingest(np.arange(25) % DIMENSION)
    return session.to_bytes()


def _header_span(payload):
    """The ``[start, end)`` byte range of the payload's JSON header."""
    _, _, header_len = _PREAMBLE.unpack_from(payload, 0)
    return _PREAMBLE.size, _PREAMBLE.size + header_len


def _corrupt_header_field(payload, mutate):
    """Re-encode the payload with its parsed JSON header altered."""
    start, end = _header_span(payload)
    header = json.loads(payload[start:end].decode("utf-8"))
    mutate(header)
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return (
        _PREAMBLE.pack(WIRE_MAGIC, WIRE_VERSION, len(header_bytes))
        + header_bytes
        + payload[end:]
    )


class TestFromBytes:
    """Entry point 1: ``SketchSession.from_bytes`` (both payload families)."""

    @pytest.mark.parametrize("family", ["sketch", "window"])
    def test_truncation_at_every_offset_is_a_clean_error(
        self, family, sketch_payload, window_payload
    ):
        payload = sketch_payload if family == "sketch" else window_payload
        for cut in range(len(payload)):
            with pytest.raises(CLEAN_ERRORS):
                SketchSession.from_bytes(payload[:cut])

    @pytest.mark.parametrize("family", ["sketch", "window"])
    def test_single_byte_corruption_never_leaks_a_raw_error(
        self, family, sketch_payload, window_payload
    ):
        payload = sketch_payload if family == "sketch" else window_payload
        for position in range(len(payload)):
            mutated = bytearray(payload)
            mutated[position] ^= 0xFF
            mutated = bytes(mutated)
            if mutated == payload:  # pragma: no cover - xor never no-ops
                continue
            try:
                SketchSession.from_bytes(mutated)
            except CLEAN_ERRORS:
                pass
            # a flipped byte inside counter data can still decode — that is
            # fine; the contract is only about *how* decoding fails

    def test_missing_required_state_field_is_serialization_error(
        self, sketch_payload
    ):
        # drop the arrays manifest: reconstruction would KeyError on the
        # missing counter table without the entry-point guard
        mutated = _corrupt_header_field(
            sketch_payload, lambda header: header.pop("arrays")
        )
        with pytest.raises(SerializationError, match="corrupt"):
            SketchSession.from_bytes(mutated)

    def test_manifest_entry_with_bad_dtype_is_serialization_error(
        self, sketch_payload
    ):
        def mutate(header):
            header["arrays"][0]["dtype"] = ["not", "a", "dtype"]

        with pytest.raises(SerializationError, match="dtype"):
            SketchSession.from_bytes(_corrupt_header_field(sketch_payload, mutate))

    def test_missing_kind_is_serialization_error(self, sketch_payload):
        mutated = _corrupt_header_field(
            sketch_payload, lambda header: header.pop("kind")
        )
        with pytest.raises(SerializationError, match="kind"):
            SketchSession.from_bytes(mutated)

    def test_not_struct_error(self, sketch_payload):
        # the headline regression: a short payload must not surface the
        # struct module's own exception type
        for cut in (0, 3, 7, 9):
            with pytest.raises(SerializationError):
                try:
                    SketchSession.from_bytes(sketch_payload[:cut])
                except struct.error:  # pragma: no cover - the old behavior
                    pytest.fail("struct.error leaked from from_bytes")


class TestSessionOpen:
    """Entry point 2: ``SketchSession.open`` (path / file object forms)."""

    def test_truncated_file_is_a_clean_error(self, sketch_payload, tmp_path):
        target = tmp_path / "cut.rpsk"
        target.write_bytes(sketch_payload[: len(sketch_payload) // 2])
        with pytest.raises(CLEAN_ERRORS):
            SketchSession.open(str(target))

    def test_corrupt_header_file_object_is_a_clean_error(self, sketch_payload):
        mutated = _corrupt_header_field(
            sketch_payload, lambda header: header.pop("arrays")
        )
        with pytest.raises(SerializationError):
            SketchSession.open(io.BytesIO(mutated))

    def test_garbage_file_is_a_clean_error(self, tmp_path):
        target = tmp_path / "garbage.bin"
        target.write_bytes(b"\x00" * 64)
        with pytest.raises(SerializationError):
            SketchSession.open(str(target))


class TestStoreGet:
    """Entry point 3: store ``get`` over a tampered catalog row."""

    @staticmethod
    def _store_with_tampered_payload(tmp_path, payload, mutated):
        path = tmp_path / "catalog.db"
        with SketchStore(path) as store:
            store.put("victim", payload)
            # tamper behind the catalog's back, like on-disk corruption would
            store._connection.execute(
                "UPDATE snapshots SET payload = ? WHERE sketch_id = "
                "(SELECT sketch_id FROM sketches WHERE name = 'victim')",
                (mutated,),
            )
            store._connection.commit()
        return path

    def test_truncated_stored_payload_is_a_clean_error(
        self, sketch_payload, tmp_path
    ):
        path = self._store_with_tampered_payload(
            tmp_path, sketch_payload, sketch_payload[:20]
        )
        with SketchStore(path) as store:
            with pytest.raises(CLEAN_ERRORS):
                store.get("victim")

    def test_corrupt_stored_payload_is_a_clean_error(
        self, sketch_payload, tmp_path
    ):
        mutated = _corrupt_header_field(
            sketch_payload, lambda header: header.pop("arrays")
        )
        path = self._store_with_tampered_payload(
            tmp_path, sketch_payload, mutated
        )
        with SketchStore(path) as store:
            with pytest.raises(SerializationError):
                store.get("victim")


class TestCliContract:
    """The CLI reports corrupt payloads as one ``error:`` line, exit 2."""

    def _run(self, *argv):
        buffer = io.StringIO()
        exit_code = main(list(argv), out=buffer)
        return exit_code, buffer.getvalue()

    def test_sketch_load_of_truncated_file_exits_two(
        self, sketch_payload, tmp_path
    ):
        target = tmp_path / "cut.rpsk"
        target.write_bytes(sketch_payload[:25])
        exit_code, output = self._run("sketch", "load", str(target))
        assert exit_code == 2
        assert output.startswith("error: ")
        assert len(output.strip().splitlines()) == 1

    def test_store_get_of_corrupt_snapshot_exits_two(
        self, sketch_payload, tmp_path
    ):
        mutated = _corrupt_header_field(
            sketch_payload, lambda header: header.pop("arrays")
        )
        path = TestStoreGet._store_with_tampered_payload(
            tmp_path, sketch_payload, mutated
        )
        exit_code, output = self._run("store", "get", str(path), "victim")
        assert exit_code == 2
        assert output.startswith("error: ")
        assert len(output.strip().splitlines()) == 1
