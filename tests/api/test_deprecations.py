"""Every pre-``repro.api`` entry point still works and warns exactly once.

Each deprecated shim must (a) produce the same result as before, and
(b) emit exactly one :class:`DeprecationWarning` per call whose message names
its ``repro.api`` replacement.
"""

import warnings

import numpy as np
import pytest

from repro.api import SketchConfig, SketchSession
from repro.distributed.site import Site
from repro.queries.heavy_hitters import heavy_hitters
from repro.queries.inner_product import inner_product_estimate
from repro.queries.point import batch_point_query, point_query
from repro.queries.range_query import range_sum
from repro.sketches.registry import make_sketch
from repro.streaming.sharded import ingest_stream_sharded

DIMENSION = 500


@pytest.fixture
def fitted_sketch(rng):
    vector = rng.normal(20.0, 3.0, size=DIMENSION)
    sketch = SketchConfig(
        "count_sketch", dimension=DIMENSION, width=64, depth=4, seed=7
    ).build()
    sketch.fit(vector)
    return sketch, vector


def call_and_capture(func, *args, **kwargs):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = func(*args, **kwargs)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    return result, deprecations


class TestDeprecatedEntryPoints:
    def assert_single_warning(self, deprecations, *needles):
        assert len(deprecations) == 1, (
            f"expected exactly one DeprecationWarning, got "
            f"{[str(w.message) for w in deprecations]}"
        )
        message = str(deprecations[0].message)
        assert "repro.api" in message
        for needle in needles:
            assert needle in message

    def test_make_sketch(self):
        sketch, deprecations = call_and_capture(
            make_sketch, "count_sketch", DIMENSION, 64, 4, seed=7
        )
        self.assert_single_warning(deprecations, "SketchConfig")
        direct = SketchConfig(
            "count_sketch", dimension=DIMENSION, width=64, depth=4, seed=7
        ).build()
        assert type(sketch) is type(direct)

    def test_point_query(self, fitted_sketch):
        sketch, vector = fitted_sketch
        result, deprecations = call_and_capture(point_query, sketch, 3, vector)
        self.assert_single_warning(deprecations, "SketchSession.query", "point")
        assert result.estimate == sketch.query(3)
        assert result.truth == vector[3]

    def test_batch_point_query(self, fitted_sketch):
        sketch, vector = fitted_sketch
        results, deprecations = call_and_capture(
            batch_point_query, sketch, [1, 2], vector
        )
        self.assert_single_warning(deprecations, "SketchSession.query", "point")
        assert [r.estimate for r in results] == [sketch.query(1), sketch.query(2)]

    def test_heavy_hitters(self, fitted_sketch):
        sketch, _ = fitted_sketch
        hitters, deprecations = call_and_capture(
            heavy_hitters, sketch, threshold=25.0
        )
        self.assert_single_warning(
            deprecations, "SketchSession.query", "heavy_hitters"
        )
        assert all(h.estimate > 0 for h in hitters)

    def test_range_sum(self, fitted_sketch):
        sketch, _ = fitted_sketch
        result, deprecations = call_and_capture(range_sum, sketch, 0, 10)
        self.assert_single_warning(deprecations, "SketchSession.query", "range")
        assert result == pytest.approx(sum(sketch.query(i) for i in range(10)))

    def test_inner_product_estimate(self, fitted_sketch):
        sketch, vector = fitted_sketch
        result, deprecations = call_and_capture(
            inner_product_estimate, sketch, vector
        )
        self.assert_single_warning(
            deprecations, "SketchSession.query", "inner_product"
        )
        assert result == pytest.approx(float(np.dot(sketch.recover(), vector)))

    def test_ingest_stream_sharded(self, rng):
        indices = rng.integers(0, DIMENSION, size=2_000)
        report, deprecations = call_and_capture(
            ingest_stream_sharded,
            (indices, None),
            "count_sketch",
            64,
            4,
            seed=7,
            shards=2,
            dimension=DIMENSION,
        )
        self.assert_single_warning(deprecations, "SketchSession.ingest", "shards")
        session = SketchSession.from_config(
            "count_sketch", dimension=DIMENSION, width=64, depth=4, seed=7
        )
        session.ingest(indices, shards=2)
        np.testing.assert_array_equal(report.sketch.recover(), session.recover())

    def test_site_factory_callable(self):
        config = SketchConfig(
            "count_sketch", dimension=DIMENSION, width=64, depth=4, seed=7
        )
        site, deprecations = call_and_capture(Site, "old-style", config.build)
        self.assert_single_warning(deprecations, "SketchConfig")
        # the deprecated form still works end to end
        site.observe_update(3, 2.0)
        assert site.sketch.query(3) != 0.0

    def test_new_style_site_does_not_warn(self):
        config = SketchConfig(
            "count_sketch", dimension=DIMENSION, width=64, depth=4, seed=7
        )
        _, deprecations = call_and_capture(Site, "new-style", config)
        assert deprecations == []


class TestFacadeDoesNotWarn:
    """The new front door must not route through its own deprecated shims."""

    def test_session_lifecycle_is_warning_free(self, rng, tmp_path):
        vector = rng.normal(20.0, 3.0, size=DIMENSION)

        def lifecycle():
            session = SketchSession.from_config(
                "l2_sr", dimension=DIMENSION, width=64, depth=4, seed=7
            )
            session.ingest(vector)
            session.ingest(rng.integers(0, DIMENSION, size=1_000), shards=2)
            session.query(kind="point", index=3)
            session.query(kind="heavy_hitters", threshold=25.0)
            session.query(kind="range", low=0, high=10)
            session.query(kind="inner_product", vector=vector)
            path = session.save(tmp_path / "s.sketch")
            return SketchSession.open(path).query(3)

        _, deprecations = call_and_capture(lifecycle)
        assert deprecations == []

    def test_harness_and_cli_paths_are_warning_free(self, rng):
        from repro.cli import main as cli_main
        from repro.eval.harness import evaluate_algorithms

        vector = rng.normal(20.0, 3.0, size=DIMENSION)

        def run_both():
            evaluate_algorithms(vector, algorithms=["l2_sr", "count_sketch"],
                                width=32, depth=3, seed=1)
            import io
            cli_main(["sketch", "fit", "--dataset", "gaussian",
                      "--dimension", "500", "--width", "32", "--depth", "3"],
                     out=io.StringIO())

        _, deprecations = call_and_capture(run_both)
        assert deprecations == []
