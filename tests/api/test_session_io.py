"""The polymorphic I/O rule: save/open over paths, file objects and URIs.

Every I/O entry point of the session facade accepts all three
source/destination forms — a filesystem path (``str``/``Path``), an open
binary file object, and a ``store://PATH#NAME[@VERSION]`` catalog URI —
with :func:`repro.api.read_payload` as the shared reader side.
"""

import io
from pathlib import Path

import numpy as np
import pytest

import repro.api
from repro.api import SketchConfig, SketchSession, read_payload
from repro.store import SketchStore, StoreError


@pytest.fixture
def session(rng):
    config = SketchConfig("l2_sr", dimension=1_000, width=64, depth=5, seed=11)
    opened = SketchSession.from_config(config)
    opened.ingest(rng.normal(100.0, 15.0, 1_000))
    return opened


class TestPathDestinations:
    def test_save_to_string_path_and_reopen(self, session, tmp_path):
        destination = session.save(str(tmp_path / "x.sketch"))
        assert destination == Path(tmp_path / "x.sketch")
        restored = SketchSession.open(str(tmp_path / "x.sketch"))
        assert restored.to_bytes() == session.to_bytes()

    def test_save_to_pathlib_path_and_reopen(self, session, tmp_path):
        destination = session.save(tmp_path / "x.sketch")
        assert destination == tmp_path / "x.sketch"
        assert (SketchSession.open(tmp_path / "x.sketch").to_bytes()
                == session.to_bytes())

    def test_open_missing_path_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SketchSession.open(tmp_path / "missing.sketch")


class TestFileObjectDestinations:
    def test_save_to_file_object_returns_none(self, session):
        buffer = io.BytesIO()
        assert session.save(buffer) is None
        buffer.seek(0)
        assert SketchSession.open(buffer).to_bytes() == session.to_bytes()

    def test_open_from_real_file_handle(self, session, tmp_path):
        path = tmp_path / "x.sketch"
        with open(path, "wb") as handle:
            session.save(handle)
        with open(path, "rb") as handle:
            restored = SketchSession.open(handle)
        assert restored.to_bytes() == session.to_bytes()


class TestStoreURIDestinations:
    def test_save_returns_the_versioned_uri(self, session, tmp_path):
        uri = f"store://{tmp_path}/cat.db#traffic"
        assert session.save(uri) == f"{uri}@1"
        assert session.save(uri) == f"{uri}@2"

    def test_open_latest_and_pinned_versions(self, session, rng, tmp_path):
        uri = f"store://{tmp_path}/cat.db#traffic"
        session.save(uri)
        second = SketchSession.from_config(session.config)
        second.ingest(rng.normal(50.0, 5.0, 1_000))
        second.save(uri)
        assert SketchSession.open(uri).to_bytes() == second.to_bytes()
        assert (SketchSession.open(f"{uri}@1").to_bytes()
                == session.to_bytes())
        assert (SketchSession.open(f"{uri}@2").to_bytes()
                == second.to_bytes())

    def test_save_to_versioned_uri_is_rejected(self, session, tmp_path):
        with pytest.raises(StoreError, match="append-only"):
            session.save(f"store://{tmp_path}/cat.db#traffic@3")

    def test_open_unknown_name_raises_store_error(self, session, tmp_path):
        session.save(f"store://{tmp_path}/cat.db#traffic")
        with pytest.raises(StoreError, match="ghost"):
            SketchSession.open(f"store://{tmp_path}/cat.db#ghost")

    def test_store_and_file_payloads_are_identical(self, session, tmp_path):
        session.save(tmp_path / "x.sketch")
        session.save(f"store://{tmp_path}/cat.db#traffic")
        with SketchStore(tmp_path / "cat.db") as store:
            payload = store.get_payload("traffic")
        assert payload == (tmp_path / "x.sketch").read_bytes()


class TestReadPayload:
    def test_reads_all_three_forms(self, session, tmp_path):
        payload = session.to_bytes()
        session.save(tmp_path / "x.sketch")
        session.save(f"store://{tmp_path}/cat.db#traffic")
        assert read_payload(tmp_path / "x.sketch") == payload
        assert read_payload(str(tmp_path / "x.sketch")) == payload
        assert read_payload(io.BytesIO(payload)) == payload
        assert read_payload(f"store://{tmp_path}/cat.db#traffic") == payload

    def test_windowed_payloads_roundtrip_through_the_store(self, tmp_path):
        from repro.streaming.windows import WindowSpec

        spec = WindowSpec(mode="sliding", panes=3, pane_size=50, by="count")
        config = SketchConfig("count_min", dimension=500, width=32, depth=4,
                              seed=5, window=spec)
        session = SketchSession.from_config(config)
        session.ingest(np.random.default_rng(5).poisson(20.0, 500)
                       .astype(float))
        uri = f"store://{tmp_path}/cat.db#win"
        session.save(uri)
        restored = SketchSession.open(uri)
        assert restored.to_bytes() == session.to_bytes()
        assert restored.items_in_window == session.items_in_window

    def test_rule_is_documented(self):
        assert "polymorphic I/O rule" in repro.api.__doc__
        assert "store URI" in SketchSession.open.__doc__
        assert "store" in SketchSession.save.__doc__
