"""Integration-style tests of the site/coordinator protocol."""

import numpy as np
import pytest

from repro.core import L1BiasAwareSketch, L2BiasAwareSketch
from repro.distributed import Coordinator, Site, partition_vector
from repro.sketches import CountMinCU, CountSketch
from repro.streaming.generators import stream_from_vector


@pytest.fixture
def global_vector(rng):
    return rng.poisson(40.0, size=6_000).astype(float)


class TestPartitionVector:
    def test_coordinate_partition_sums_to_global(self, global_vector):
        locals_ = partition_vector(global_vector, 5, seed=1, by="coordinates")
        assert len(locals_) == 5
        np.testing.assert_allclose(sum(locals_), global_vector)

    def test_item_partition_sums_to_global(self, global_vector):
        locals_ = partition_vector(global_vector, 3, seed=2, by="items")
        np.testing.assert_allclose(sum(locals_), global_vector)
        # item partitioning spreads each coordinate's mass across sites
        assert all(np.all(local >= 0) for local in locals_)

    def test_item_partition_rejects_real_valued_vectors(self):
        with pytest.raises(ValueError, match="integer"):
            partition_vector(np.array([1.5, 2.0]), 2, by="items")

    def test_unknown_scheme_rejected(self, global_vector):
        with pytest.raises(ValueError):
            partition_vector(global_vector, 2, by="bogus")


class TestDistributedProtocol:
    def _factory(self, dimension, sketch_class=L2BiasAwareSketch):
        return lambda: sketch_class(dimension, 256, 5, seed=77)

    def test_merged_sketch_equals_centralised_sketch(self, global_vector):
        n = global_vector.size
        locals_ = partition_vector(global_vector, 4, seed=3, by="coordinates")
        sites = [
            Site(f"site-{i}", self._factory(n)).observe_vector(local)
            for i, local in enumerate(locals_)
        ]
        coordinator = Coordinator().collect_all(sites)
        centralised = L2BiasAwareSketch(n, 256, 5, seed=77).fit(global_vector)
        np.testing.assert_allclose(coordinator.recover(), centralised.recover())

    def test_streaming_sites_match_vector_sites(self, global_vector):
        n = global_vector.size
        locals_ = partition_vector(global_vector, 2, seed=4, by="coordinates")
        vector_site = Site("v", self._factory(n)).observe_vector(locals_[0])
        stream_site = Site("s", self._factory(n)).observe_stream(
            stream_from_vector(locals_[0])
        )
        np.testing.assert_allclose(
            vector_site.sketch.recover(), stream_site.sketch.recover()
        )

    def test_batched_site_ingestion_matches_scalar(self, global_vector):
        n = global_vector.size
        locals_ = partition_vector(global_vector, 2, seed=4, by="coordinates")
        stream = stream_from_vector(locals_[0])
        scalar_site = Site("s", self._factory(n)).observe_stream(stream)
        batched_site = Site("b", self._factory(n)).observe_stream(
            stream, batch_size=512
        )
        np.testing.assert_allclose(
            scalar_site.sketch.recover(), batched_site.sketch.recover()
        )

    def test_observe_batch_matches_observe_updates(self, global_vector):
        n = global_vector.size
        indices = np.array([5, 17, 5, 99], dtype=np.int64)
        deltas = np.array([2.0, 1.0, 3.0, 4.0])
        scalar_site = Site("s", self._factory(n))
        for index, delta in zip(indices, deltas):
            scalar_site.observe_update(int(index), float(delta))
        batched_site = Site("b", self._factory(n)).observe_batch(indices, deltas)
        np.testing.assert_array_equal(
            scalar_site.sketch.table, batched_site.sketch.table
        )

    def test_communication_is_sites_times_sketch_size(self, global_vector):
        n = global_vector.size
        locals_ = partition_vector(global_vector, 6, seed=5, by="coordinates")
        sites = [
            Site(f"site-{i}", self._factory(n)).observe_vector(local)
            for i, local in enumerate(locals_)
        ]
        coordinator = Coordinator().collect_all(sites)
        per_site_words = sites[0].sketch.size_in_words()
        assert coordinator.total_communication_words == 6 * per_site_words
        # far below shipping the raw vectors
        assert coordinator.total_communication_words < 6 * n

    def test_point_query_on_global_vector(self, global_vector):
        n = global_vector.size
        locals_ = partition_vector(global_vector, 3, seed=6, by="coordinates")
        sites = [
            Site(f"site-{i}", self._factory(n, L1BiasAwareSketch)).observe_vector(local)
            for i, local in enumerate(locals_)
        ]
        coordinator = Coordinator().collect_all(sites)
        index = 7
        assert coordinator.query(index) == pytest.approx(
            global_vector[index], abs=40.0
        )

    def test_non_linear_sketch_rejected_at_site(self, global_vector):
        n = global_vector.size
        site = Site("bad", lambda: CountMinCU(n, 64, 5, seed=1))
        with pytest.raises(TypeError, match="non-linear"):
            site.observe_vector(global_vector)

    def test_coordinator_requires_at_least_one_site(self):
        with pytest.raises(RuntimeError):
            Coordinator().recover()

    def test_sites_collected_order(self, global_vector):
        n = global_vector.size
        locals_ = partition_vector(global_vector, 2, seed=8, by="coordinates")
        sites = [
            Site(f"site-{i}", self._factory(n)).observe_vector(local)
            for i, local in enumerate(locals_)
        ]
        coordinator = Coordinator().collect_all(sites)
        assert coordinator.sites_collected == ["site-0", "site-1"]

    def test_mixing_incompatible_sketch_seeds_fails(self, global_vector):
        n = global_vector.size
        a = Site("a", lambda: CountSketch(n, 64, 5, seed=1)).observe_vector(global_vector)
        b = Site("b", lambda: CountSketch(n, 64, 5, seed=2)).observe_vector(global_vector)
        coordinator = Coordinator().collect(a)
        with pytest.raises(ValueError):
            coordinator.collect(b)

    def test_empty_site_name_rejected(self):
        with pytest.raises(ValueError):
            Site("", lambda: None)
