"""Unit tests for communication accounting."""

import pytest

from repro.distributed.network import ChannelMessage, CommunicationLog


class TestChannelMessage:
    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            ChannelMessage(sender="s1", payload_words=-1)


class TestCommunicationLog:
    def test_totals_and_counts(self):
        log = CommunicationLog()
        log.record("s1", 100)
        log.record("s2", 250)
        log.record("s1", 50)
        assert log.total_words == 400
        assert log.message_count == 3

    def test_words_by_sender(self):
        log = CommunicationLog()
        log.record("a", 10)
        log.record("b", 20)
        log.record("a", 30)
        assert log.words_by_sender() == {"a": 40, "b": 20}

    def test_empty_log(self):
        log = CommunicationLog()
        assert log.total_words == 0
        assert log.words_by_sender() == {}
