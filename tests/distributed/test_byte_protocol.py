"""Tests for the byte-accurate distributed protocol.

The coordinator must reconstruct every site sketch from its serialized
payload alone (no shared Python objects), account both declared words and
true bytes, and flag sketches whose ``size_in_words()`` disagrees with their
encoded state.
"""

import numpy as np
import pytest

from repro.core import L1BiasAwareSketch
from repro.distributed import CommunicationLog, Coordinator, Site, partition_vector
from repro.serialization import register_serializable
from repro.sketches import CountMin, CountSketch

DIMENSION = 2_000
WIDTH = 128
DEPTH = 5
SEED = 31


def make_sites(global_vector, count, sketch_factory):
    locals_ = partition_vector(global_vector, count, seed=8, by="coordinates")
    return [
        Site(f"site-{i}", sketch_factory).observe_vector(local)
        for i, local in enumerate(locals_)
    ]


@pytest.fixture
def global_vector(rng):
    return np.round(rng.normal(60.0, 9.0, size=DIMENSION))


class TestBytesOnTheWire:
    def test_ship_state_returns_wire_payload(self, global_vector):
        site = Site("a", lambda: CountSketch(DIMENSION, WIDTH, DEPTH, seed=SEED))
        site.observe_vector(global_vector)
        payload = site.ship_state()
        assert isinstance(payload, bytes)
        assert payload == site.local_sketch().to_bytes()

    def test_coordinator_state_is_independent_of_sites(self, global_vector):
        sites = make_sites(
            global_vector, 2,
            lambda: CountSketch(DIMENSION, WIDTH, DEPTH, seed=SEED),
        )
        coordinator = Coordinator().collect_all(sites)
        before = coordinator.recover().copy()
        # mutating a site after collection must not affect the coordinator
        sites[0].sketch.update(0, 1_000_000.0)
        np.testing.assert_array_equal(coordinator.recover(), before)

    def test_receive_accepts_a_raw_payload(self, global_vector):
        sketch = CountMin(DIMENSION, WIDTH, DEPTH, seed=SEED)
        sketch.fit(np.abs(global_vector))
        coordinator = Coordinator().receive("remote", sketch.to_bytes())
        np.testing.assert_array_equal(
            coordinator.recover(), sketch.recover()
        )
        assert coordinator.sites_collected == ["remote"]

    def test_merged_protocol_equals_centralised(self, global_vector):
        factory = lambda: L1BiasAwareSketch(DIMENSION, WIDTH, DEPTH, seed=SEED)  # noqa: E731
        sites = make_sites(global_vector, 4, factory)
        coordinator = Coordinator().collect_all(sites)
        centralised = factory().fit(global_vector)
        np.testing.assert_allclose(
            coordinator.recover(), centralised.recover()
        )

    def test_non_linear_payload_rejected(self, global_vector):
        from repro.sketches import CountMinCU

        sketch = CountMinCU(DIMENSION, WIDTH, DEPTH, seed=SEED)
        sketch.fit(np.abs(global_vector))
        with pytest.raises(TypeError, match="non-linear"):
            Coordinator().receive("bad", sketch.to_bytes())

    def test_unseeded_site_cannot_ship(self, global_vector):
        site = Site("u", lambda: CountSketch(DIMENSION, WIDTH, DEPTH, seed=None))
        site.observe_vector(global_vector)
        with pytest.raises(ValueError, match="seed"):
            site.ship_state()


class TestDualAccounting:
    def test_words_and_bytes_recorded_per_message(self, global_vector):
        sites = make_sites(
            global_vector, 3,
            lambda: CountSketch(DIMENSION, WIDTH, DEPTH, seed=SEED),
        )
        coordinator = Coordinator().collect_all(sites)
        per_site_words = WIDTH * DEPTH
        assert coordinator.total_communication_words == 3 * per_site_words
        assert coordinator.total_communication_bytes == sum(
            len(site.ship_state()) for site in sites
        )
        for message in coordinator.log.messages:
            assert message.payload_bytes > 8 * message.payload_words
            assert message.measured_words == message.payload_words
            assert message.words_consistent is True

    def test_bytes_by_sender(self, global_vector):
        sites = make_sites(
            global_vector, 2,
            lambda: CountMin(DIMENSION, WIDTH, DEPTH, seed=SEED),
        )
        coordinator = Coordinator().collect_all(sites)
        totals = coordinator.log.bytes_by_sender()
        assert set(totals) == {"site-0", "site-1"}
        assert all(total > 0 for total in totals.values())

    def test_honest_sketches_are_not_flagged(self, global_vector):
        sites = make_sites(
            global_vector, 3,
            lambda: L1BiasAwareSketch(DIMENSION, WIDTH, DEPTH, seed=SEED),
        )
        coordinator = Coordinator().collect_all(sites)
        assert coordinator.log.inconsistent_messages() == []


class _UnderreportingCountMin(CountMin):
    """A sketch that lies about its word footprint (for the flagging test)."""

    name = "underreporting_count_min"

    def size_in_words(self):
        return super().size_in_words() - 7


register_serializable(_UnderreportingCountMin)


class TestMismatchFlagging:
    def test_disagreeing_sketch_is_flagged(self, global_vector):
        sketch = _UnderreportingCountMin(DIMENSION, WIDTH, DEPTH, seed=SEED)
        sketch.fit(np.abs(global_vector))
        coordinator = Coordinator().receive("liar", sketch.to_bytes())
        flagged = coordinator.log.inconsistent_messages()
        assert len(flagged) == 1
        assert flagged[0].sender == "liar"
        assert flagged[0].payload_words == WIDTH * DEPTH - 7
        assert flagged[0].measured_words == WIDTH * DEPTH
        assert flagged[0].words_consistent is False

    def test_log_level_flag_semantics(self):
        log = CommunicationLog()
        log.record("a", 100, payload_bytes=900, measured_words=100)
        log.record("b", 90, payload_bytes=900, measured_words=100)
        log.record("c", 50)  # no payload inspected
        assert [m.sender for m in log.inconsistent_messages()] == ["b"]
        assert log.messages[2].words_consistent is None
        assert log.total_bytes == 1_800
